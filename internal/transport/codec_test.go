package transport

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/enforcer"
	"repro/internal/event"
	"repro/internal/schema"
)

func TestControlFrameRoundTrips(t *testing.T) {
	f := &Fault{Code: CodeAccessDenied, Message: "no policy for you"}
	var back Fault
	if err := decodeFaultFrame(encodeFaultFrame(f), &back); err != nil {
		t.Fatal(err)
	}
	if back.Code != f.Code || back.Message != f.Message {
		t.Fatalf("fault round trip: %+v != %+v", back, f)
	}

	gid, err := decodePublishResponseFrame(encodePublishResponseFrame("evt-42"))
	if err != nil || gid != "evt-42" {
		t.Fatalf("publishResponse round trip: %q, %v", gid, err)
	}

	req := &subscribeRequest{Actor: "family-doctor", Class: "hospital.blood-test",
		Callback: "http://consumer:9/cb", Codec: "binary"}
	dec, err := decodeSubscribeRequestFrame(encodeSubscribeRequestFrame(req))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Actor != req.Actor || dec.Class != req.Class ||
		dec.Callback != req.Callback || dec.Codec != req.Codec {
		t.Fatalf("subscribeRequest round trip: %+v != %+v", dec, req)
	}

	id, err := decodeSubscribeResponseFrame(encodeSubscribeResponseFrame("sub-000007"))
	if err != nil || id != "sub-000007" {
		t.Fatalf("subscribeResponse round trip: %q, %v", id, err)
	}
}

// A binary-codec client must run the full publish → subscribe → details
// loop against an unmodified server, and its faults must keep their
// error identity across the wire.
func TestBinaryCodecEndToEnd(t *testing.T) {
	r := newRig(t)
	r.doctorPolicy(t)
	bin := NewClient(r.ctrlServer.URL, nil, WithCodec(event.Binary))

	var mu sync.Mutex
	var got []*event.Notification
	receiver := httptest.NewServer(NewNotificationReceiver(func(n *event.Notification) {
		mu.Lock()
		got = append(got, n)
		mu.Unlock()
	}))
	defer receiver.Close()
	if _, err := bin.Subscribe(context.Background(), "family-doctor", schema.ClassBloodTest, receiver.URL); err != nil {
		t.Fatalf("binary Subscribe: %v", err)
	}

	d0 := event.NewDetail(schema.ClassBloodTest, "src-bin", "hospital").
		Set("patient-id", "PRS-9").
		Set("exam-date", "2010-05-30").
		Set("hemoglobin", "14.2").
		Set("aids-test", "negative")
	if err := r.gw.Persist(d0); err != nil {
		t.Fatal(err)
	}
	gid, err := bin.Publish(context.Background(), &event.Notification{
		SourceID: "src-bin", Class: schema.ClassBloodTest, PersonID: "PRS-9",
		Summary: "blood test", OccurredAt: time.Date(2010, 5, 30, 9, 0, 0, 0, time.UTC),
		Producer: "hospital",
	})
	if err != nil {
		t.Fatalf("binary Publish: %v", err)
	}
	if gid == "" {
		t.Fatal("binary Publish returned empty id")
	}
	if !r.ctrl.Flush(5 * time.Second) {
		t.Fatal("bus did not drain")
	}
	mu.Lock()
	delivered := len(got)
	var cb *event.Notification
	if delivered > 0 {
		cb = got[0]
	}
	mu.Unlock()
	if delivered != 1 {
		t.Fatalf("binary callback deliveries = %d, want 1", delivered)
	}
	if cb.ID != gid || cb.PersonID != "PRS-9" || cb.SourceID != "" {
		t.Fatalf("binary callback notification: %+v", cb)
	}

	// Detail request/response in binary framing.
	d, err := bin.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	})
	if err != nil {
		t.Fatalf("binary RequestDetails: %v", err)
	}
	if v, _ := d.Get("patient-id"); v != "PRS-9" {
		t.Errorf("patient-id = %q", v)
	}
	if _, leaked := d.Get("aids-test"); leaked {
		t.Error("aids-test leaked over the binary wire")
	}

	// Faults answered in binary keep their sentinel identity.
	_, err = bin.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: "evt-ghost", Purpose: event.PurposeHealthcareTreatment,
	})
	if !errors.Is(err, enforcer.ErrUnknownEvent) {
		t.Errorf("binary fault identity = %v, want enforcer.ErrUnknownEvent", err)
	}
}

// XML and binary subscribers on the same class must both receive the
// publication, each in its own negotiated callback format.
func TestMixedCodecSubscribers(t *testing.T) {
	r := newRig(t)
	r.doctorPolicy(t)

	type capture struct {
		mu  sync.Mutex
		got []*event.Notification
	}
	newReceiver := func(c *capture) *httptest.Server {
		return httptest.NewServer(NewNotificationReceiver(func(n *event.Notification) {
			c.mu.Lock()
			c.got = append(c.got, n)
			c.mu.Unlock()
		}))
	}
	var xmlGot, binGot capture
	xmlRecv := newReceiver(&xmlGot)
	defer xmlRecv.Close()
	binRecv := newReceiver(&binGot)
	defer binRecv.Close()

	if _, err := r.client.Subscribe(context.Background(), "family-doctor", schema.ClassBloodTest, xmlRecv.URL); err != nil {
		t.Fatal(err)
	}
	bin := NewClient(r.ctrlServer.URL, nil, WithCodec(event.Binary))
	if _, err := bin.Subscribe(context.Background(), "family-doctor", schema.ClassBloodTest, binRecv.URL); err != nil {
		t.Fatal(err)
	}

	gid := r.produce(t, "src-mixed", "PRS-7")
	if !r.ctrl.Flush(5 * time.Second) {
		t.Fatal("bus did not drain")
	}

	take := func(c *capture) *event.Notification {
		c.mu.Lock()
		defer c.mu.Unlock()
		if len(c.got) != 1 {
			t.Fatalf("deliveries = %d, want 1", len(c.got))
		}
		return c.got[0]
	}
	nx, nb := take(&xmlGot), take(&binGot)
	if nx.ID != gid || nb.ID != gid {
		t.Fatalf("ids: xml %s binary %s, want %s", nx.ID, nb.ID, gid)
	}
	// Identical content through both codecs.
	if nx.Class != nb.Class || nx.PersonID != nb.PersonID || nx.Summary != nb.Summary ||
		nx.Producer != nb.Producer || nx.Trace != nb.Trace ||
		!nx.OccurredAt.Equal(nb.OccurredAt) || !nx.PublishedAt.Equal(nb.PublishedAt) {
		t.Fatalf("mixed-codec divergence:\nxml    %+v\nbinary %+v", nx, nb)
	}
	if nx.SourceID != "" || nb.SourceID != "" {
		t.Fatal("source id leaked to a subscriber")
	}
}

// PublishBatch pipelines publishes over the keep-alive pool and keeps
// results positional.
func TestPublishBatch(t *testing.T) {
	r := newRig(t)
	bin := NewClient(r.ctrlServer.URL, nil, WithCodec(event.Binary))
	ns := make([]*event.Notification, 20)
	for i := range ns {
		ns[i] = &event.Notification{
			SourceID: event.SourceID("src-batch-" + string(rune('a'+i))), Class: schema.ClassBloodTest,
			PersonID: "PRS-1", Summary: "s",
			OccurredAt: time.Date(2010, 5, 30, 9, 0, 0, 0, time.UTC), Producer: "hospital",
		}
	}
	ids, err := bin.PublishBatch(context.Background(), ns, 4)
	if err != nil {
		t.Fatalf("PublishBatch: %v", err)
	}
	seen := make(map[event.GlobalID]bool)
	for i, id := range ids {
		if id == "" {
			t.Fatalf("ids[%d] empty", i)
		}
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
	// Idempotency survives the batch path: republishing returns the same ids.
	again, err := bin.PublishBatch(context.Background(), ns, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if ids[i] != again[i] {
			t.Fatalf("retry minted new id at %d: %s != %s", i, ids[i], again[i])
		}
	}
}
