package transport

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/event"
	"repro/internal/identity"
)

// Authentication is opt-in (the paper runs with trusted parties and
// defers identity management to the national layer; internal/identity is
// our implementation of that declared extension). When an Authority is
// attached to a Server, every request must carry a bearer token, and the
// token's actor must cover the identity the request claims (the
// requesting consumer, or the publishing/policy-defining producer).

// CodeUnauthorized is the fault code of authentication failures.
const CodeUnauthorized = "unauthorized"

// ErrUnauthorized reports a missing, invalid or insufficient token.
var ErrUnauthorized = errors.New("transport: unauthorized")

// RequireAuth attaches an identity authority: from now on the server
// authenticates every call. It returns the server for chaining.
func (s *Server) RequireAuth(a *identity.Authority) *Server {
	s.auth = a
	return s
}

// authenticate verifies the bearer token of a request and returns its
// claims. With no authority configured it returns zero claims and nil.
func (s *Server) authenticate(r *http.Request) (identity.Claims, error) {
	if s.auth == nil {
		return identity.Claims{}, nil
	}
	header := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(header, prefix) {
		return identity.Claims{}, fmt.Errorf("%w: missing bearer token", ErrUnauthorized)
	}
	claims, err := s.auth.Verify(strings.TrimPrefix(header, prefix), s.ctrl.Now())
	if err != nil {
		return identity.Claims{}, fmt.Errorf("%w: %v", ErrUnauthorized, err)
	}
	return claims, nil
}

// authorizeActor additionally checks that the token covers the claimed
// actor. With no authority configured it always succeeds.
func (s *Server) authorizeActor(r *http.Request, actor event.Actor) error {
	if s.auth == nil {
		return nil
	}
	claims, err := s.authenticate(r)
	if err != nil {
		return err
	}
	if !claims.Covers(actor) {
		return fmt.Errorf("%w: token for %s cannot act as %s", ErrUnauthorized, claims.Actor, actor)
	}
	return nil
}

// writeAuthFault renders an authentication failure.
func writeAuthFault(w http.ResponseWriter, err error) {
	writeXML(w, http.StatusUnauthorized, &Fault{Code: CodeUnauthorized, Message: err.Error()})
}

// WithToken returns a copy of the client that sends the bearer token on
// every request.
func (c *Client) WithToken(token string) *Client {
	cp := *c
	cp.token = token
	return &cp
}
