package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/enforcer"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/index"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/schema"
	"repro/internal/store"
)

// chaosBlackout returns the scripted controller outage duration: short
// by default so `go test ./...` stays fast, stretched to a real outage
// by `make chaos` (CHAOS_BLACKOUT=5s).
func chaosBlackout() time.Duration {
	if v := os.Getenv("CHAOS_BLACKOUT"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			return d
		}
	}
	return 400 * time.Millisecond
}

// chaosRig is a distributed deployment with fault injectors on both
// remote hops: producer/consumer → controller (ctrlFaults) and
// controller → producer gateway (gwFaults).
type chaosRig struct {
	ctrl       *core.Controller
	gw         *gateway.Gateway
	client     *Client
	qp         *QueuedPublisher
	ctrlFaults *resilience.FaultInjector
	gwFaults   *resilience.FaultInjector
}

func newChaosRig(t *testing.T, seed int64) *chaosRig {
	t.Helper()
	ctrl, err := core.New(core.Config{
		MasterKey:      bytes.Repeat([]byte{7}, crypto.KeySize),
		DefaultConsent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctrl.Close() })
	if err := ctrl.RegisterProducer("hospital", "Hospital"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RegisterConsumer("family-doctor", "Doctors"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.DefinePolicy(&policy.Policy{
		Producer: "hospital",
		Actor:    "family-doctor",
		Class:    schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "exam-date", "hemoglobin"},
	}); err != nil {
		t.Fatal(err)
	}

	gw, err := gateway.New("hospital", store.OpenMemory(), ctrl.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	gwServer := httptest.NewServer(NewGatewayServer(gw))
	t.Cleanup(gwServer.Close)

	// Controller → gateway: a lighter fault rate (the detail path already
	// has the consumer-side faults in front of it) plus retries and a
	// breaker, exactly as a production controller would attach a remote
	// producer.
	gwFaults := resilience.NewFaultInjector(nil, resilience.FaultConfig{
		Seed:           seed + 1000,
		ConnectFailure: 0.10,
	})
	rg := NewRemoteGateway(gwServer.URL, &http.Client{Transport: gwFaults, Timeout: 5 * time.Second},
		WithRetrier(resilience.NewRetrier(resilience.RetryPolicy{
			MaxAttempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: seed,
		})),
		WithBreakerGroup(resilience.NewGroup(resilience.BreakerConfig{OpenFor: 150 * time.Millisecond})))
	if err := ctrl.AttachGateway("hospital", rg); err != nil {
		t.Fatal(err)
	}

	ctrlServer := httptest.NewServer(NewServer(ctrl))
	t.Cleanup(ctrlServer.Close)

	// Client → controller: the acceptance scenario's 20% connection
	// failures, plus response-side faults (synthesized 503s and truncated
	// bodies) that force the at-least-once replay path: the controller
	// indexed the event but the producer never saw the answer.
	ctrlFaults := resilience.NewFaultInjector(nil, resilience.FaultConfig{
		Seed:           seed,
		ConnectFailure: 0.20,
		ServerError:    0.05,
		TruncateBody:   0.05,
	})
	client := NewClient(ctrlServer.URL, &http.Client{Transport: ctrlFaults, Timeout: 5 * time.Second},
		WithRetrier(resilience.NewRetrier(resilience.RetryPolicy{
			MaxAttempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: seed,
		})),
		WithBreakerGroup(resilience.NewGroup(resilience.BreakerConfig{OpenFor: 150 * time.Millisecond})))

	qp, err := NewQueuedPublisher(client, store.OpenMemory(), nil, 40*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(qp.Close)

	return &chaosRig{
		ctrl: ctrl, gw: gw, client: client, qp: qp,
		ctrlFaults: ctrlFaults, gwFaults: gwFaults,
	}
}

// TestChaosExactlyOnceUnderFaults is the acceptance scenario of the
// fault-injection harness: a producer publishes through the durable
// outbox while 20% of connections to the controller fail and the
// controller suffers one scripted blackout. Every publish must end up
// indexed exactly once, every permitted detail request must eventually
// succeed, and no detail request may be audited as a policy deny when
// the real cause was unavailability.
func TestChaosExactlyOnceUnderFaults(t *testing.T) {
	blackout := chaosBlackout()
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := newChaosRig(t, seed)
			t.Logf("chaos seeds: controller-hop=%d gateway-hop=%d blackout=%s",
				r.ctrlFaults.Seed(), r.gwFaults.Seed(), blackout)

			const n = 24
			const person = "PRS-CHAOS"
			queued := 0
			for i := 0; i < n; i++ {
				src := event.SourceID(fmt.Sprintf("src-%02d", i))
				d := event.NewDetail(schema.ClassBloodTest, src, "hospital").
					Set("patient-id", person).
					Set("exam-date", "2010-05-30").
					Set("hemoglobin", "14.2").
					Set("aids-test", "negative")
				if err := r.gw.Persist(d); err != nil {
					t.Fatal(err)
				}
				if i == n/3 {
					// The controller disappears mid-storm.
					r.ctrlFaults.BlackoutFor(blackout)
				}
				_, q, err := r.qp.Publish(context.Background(), &event.Notification{
					SourceID: src, Class: schema.ClassBloodTest, PersonID: person,
					Summary: "blood test", Producer: "hospital",
					OccurredAt: time.Date(2010, 5, 30, 9, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
				})
				if err != nil {
					t.Fatalf("publish %d rejected permanently: %v", i, err)
				}
				if q {
					queued++
				}
			}
			t.Logf("%d/%d publishes parked in the outbox", queued, n)

			// The outbox must drain once the blackout lifts.
			deadline := time.Now().Add(blackout + 30*time.Second)
			for r.qp.Depth() > 0 && time.Now().Before(deadline) {
				time.Sleep(20 * time.Millisecond)
			}
			if d := r.qp.Depth(); d != 0 {
				t.Fatalf("outbox still holds %d entries after the blackout", d)
			}
			if dead := r.qp.Dead(); dead != 0 {
				t.Fatalf("%d publishes dead-lettered; none should be permanent rejections", dead)
			}

			// Exactly once at the index: n notifications, each global id
			// once. Replayed publishes must collapse onto the same id via
			// the controller's (producer, source) idempotency. (Source ids
			// are redacted from inquiry results, so the global id is the
			// observable identity.)
			notes, err := r.ctrl.InquireOwn(person, index.Inquiry{Limit: 10 * n})
			if err != nil {
				t.Fatal(err)
			}
			byID := map[event.GlobalID]int{}
			for _, note := range notes {
				byID[note.ID]++
			}
			if len(notes) != n || len(byID) != n {
				t.Fatalf("indexed %d notifications over %d distinct ids, want %d exactly once",
					len(notes), len(byID), n)
			}
			for id, count := range byID {
				if count != 1 {
					t.Errorf("event %s indexed %d times", id, count)
				}
			}

			// Every permitted detail request eventually succeeds despite the
			// injected faults on both hops.
			for _, note := range notes {
				var detail *event.Detail
				var lastErr error
				reqDeadline := time.Now().Add(30 * time.Second)
				for time.Now().Before(reqDeadline) {
					detail, lastErr = r.client.RequestDetails(context.Background(), &event.DetailRequest{
						Requester: "family-doctor", Class: schema.ClassBloodTest,
						EventID: note.ID, Purpose: event.PurposeHealthcareTreatment,
					})
					if lastErr == nil {
						break
					}
					if errors.Is(lastErr, enforcer.ErrDenied) {
						t.Fatalf("event %s: unavailability surfaced as a policy deny: %v", note.ID, lastErr)
					}
					time.Sleep(25 * time.Millisecond)
				}
				if lastErr != nil {
					t.Fatalf("event %s: details never succeeded: %v", note.ID, lastErr)
				}
				if v, _ := detail.Get("hemoglobin"); v != "14.2" {
					t.Fatalf("event %s: hemoglobin = %q", note.ID, v)
				}
				if _, leaked := detail.Get("aids-test"); leaked {
					t.Fatalf("event %s: chaos must not weaken filtering", note.ID)
				}
			}

			// The audit trail may record "unavailable" outcomes, never a
			// deny caused by a down gateway (the policy permits everything
			// this test requested).
			denies, err := r.ctrl.Audit().Search(audit.Query{
				Kind: audit.KindDetailRequest, Outcome: "deny",
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(denies) != 0 {
				t.Fatalf("audit logged %d denies; first: %+v", len(denies), denies[0])
			}
			t.Logf("controller-hop faults injected: %v", r.ctrlFaults.Injected())
		})
	}
}

// TestChaosSourceUnavailableAuditedDistinctly pins the controller-side
// degraded mode: when the producer's gateway is entirely dark, a
// permitted detail request fails with ErrSourceUnavailable across the
// wire — and the audit log says "unavailable", never "deny". Once the
// gateway returns, the same request succeeds.
func TestChaosSourceUnavailableAuditedDistinctly(t *testing.T) {
	r := newChaosRig(t, 42)
	src := event.SourceID("src-blackout")
	d := event.NewDetail(schema.ClassBloodTest, src, "hospital").
		Set("patient-id", "PRS-1").
		Set("exam-date", "2010-05-30").
		Set("hemoglobin", "13.9")
	if err := r.gw.Persist(d); err != nil {
		t.Fatal(err)
	}
	gid, _, err := r.qp.Publish(context.Background(), &event.Notification{
		SourceID: src, Class: schema.ClassBloodTest, PersonID: "PRS-1",
		Summary: "blood test", Producer: "hospital",
		OccurredAt: time.Date(2010, 5, 30, 9, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	if gid == "" {
		// The publish was parked; wait for the drainer and look it up.
		deadline := time.Now().Add(10 * time.Second)
		for r.qp.Depth() > 0 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		notes, err := r.ctrl.InquireOwn("PRS-1", index.Inquiry{Limit: 10})
		if err != nil || len(notes) != 1 {
			t.Fatalf("indexed %d notes (%v)", len(notes), err)
		}
		gid = notes[0].ID
	}

	// Take the gateway fully dark, beyond what the retrier can absorb.
	r.gwFaults.BlackoutFor(5 * time.Second)
	req := &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	}
	var unavailableErr error
	for attempt := 0; attempt < 20; attempt++ {
		if _, unavailableErr = r.client.RequestDetails(context.Background(), req); unavailableErr != nil &&
			errors.Is(unavailableErr, enforcer.ErrSourceUnavailable) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !errors.Is(unavailableErr, enforcer.ErrSourceUnavailable) {
		t.Fatalf("blackout error = %v, want ErrSourceUnavailable across the wire", unavailableErr)
	}
	if errors.Is(unavailableErr, enforcer.ErrDenied) {
		t.Fatalf("unavailability must not satisfy ErrDenied: %v", unavailableErr)
	}

	unavailable, err := r.ctrl.Audit().Search(audit.Query{
		Kind: audit.KindDetailRequest, Outcome: "unavailable", EventID: gid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(unavailable) == 0 {
		t.Fatal("no 'unavailable' audit record for the blacked-out fetch")
	}
	denies, err := r.ctrl.Audit().Search(audit.Query{
		Kind: audit.KindDetailRequest, Outcome: "deny", EventID: gid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(denies) != 0 {
		t.Fatalf("blacked-out fetch audited as deny: %+v", denies[0])
	}

	// Recovery: lift the blackout (a fresh zero-duration window) and the
	// same permitted request must succeed.
	r.gwFaults.BlackoutFor(0)
	var detail *event.Detail
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if detail, err = r.client.RequestDetails(context.Background(), req); err == nil {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("details after recovery: %v", err)
	}
	if v, _ := detail.Get("hemoglobin"); v != "13.9" {
		t.Fatalf("hemoglobin after recovery = %q", v)
	}
}
