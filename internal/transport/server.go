package transport

import (
	"bytes"
	"context"
	"encoding/xml"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/consent"
	"repro/internal/core"
	"repro/internal/election"
	"repro/internal/event"
	"repro/internal/identity"
	"repro/internal/index"
	"repro/internal/overload"
	"repro/internal/policy"
	"repro/internal/replication"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

// Server exposes a data controller as web services:
//
//	POST /ws/publish     — notification XML → publishResponse
//	POST /ws/subscribe   — subscribeRequest (with callback URL) → subscribeResponse
//	GET  /ws/subscription — ?id= liveness probe: held → subscribeResponse,
//	                        forgotten → unknown-subscription fault (404)
//	POST /ws/details     — detail request XML → privacy-aware detail XML
//	POST /ws/inquire     — inquiryRequest → inquiryResponse
//	POST /ws/policy      — compact policy XML → stored policy XML
//	POST /ws/consent     — consent directive XML → stored directive XML
//	GET  /ws/catalog     — event class schemas (XML sequence)
//	GET  /ws/pending     — ?producer=ID → pending access requests
//	GET  /ws/policies    — ?producer=ID → the producer's policy corpus
//	GET  /ws/stats       — operational counters
//	GET  /ws/audit       — ?actor=&kind=&outcome=&event=&class=&trace=&limit= →
//	                       audit records (guarantor role when auth is on)
//	GET  /ws/shardmap    — the cluster's shard map as a binary frame
//	                       (not-found fault when the controller is unsharded)
//	GET  /ws/replstatus  — replication role, fencing epoch, follower lag
//	POST /ws/promote     — flip a read replica into the primary role at a
//	                       named epoch (the failover runbook's lease claim)
//	GET  /metrics        — telemetry registry, Prometheus text format
//	GET  /healthz        — liveness probe (200 ok / 503 when closed)
//
// Every request passes the telemetry middleware: per-route latency and
// status metrics, and an X-Trace-Id correlation header (minted when the
// caller sent none) that flows into the controller's audit records.
// /metrics and /healthz are served without authentication — they carry
// operational counters only, never personal data.
//
// Notifications are delivered to subscribers by POSTing the notification
// XML to the callback URL supplied at subscription time; a non-2xx
// response triggers the bus's redelivery.
type Server struct {
	ctrl    *core.Controller
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the telemetry middleware
	// httpClient performs the callback deliveries.
	httpClient *http.Client
	// auth, when set via RequireAuth, authenticates every call.
	auth *identity.Authority
	// gate, when set via SetAdmission, admission-controls every /ws call.
	gate *overload.Gate
	// deliveriesFailed counts callback deliveries that did not reach the
	// subscriber (css_deliveries_failed_total{reason}).
	deliveriesFailed *telemetry.Counter
	// healthMu guards healthDetails (registered at setup, read per probe).
	healthMu sync.Mutex
	// healthDetails contribute key/value lines to /healthz (breaker
	// states of attached remote gateways, outbox depths, …).
	healthDetails []func() map[string]string
	// repl, when set via SetReplication, enriches /ws/replstatus with
	// the WAL shipper's per-follower state.
	repl atomic.Pointer[replication.Primary]
	// follower, when set via SetFollower, supplies the fencing epoch a
	// replica reports on /ws/replstatus (the controller's own epoch is
	// only assigned at promotion).
	follower atomic.Pointer[replication.Follower]
	// onPromote, when set via SetPromoteHook, replaces the default
	// controller Promote for POST /ws/promote — daemons use it to also
	// start shipping their own WALs after assuming the primary role.
	onPromote atomic.Pointer[func(epoch uint64) error]
	// election, when set via SetElection, enriches /ws/replstatus with
	// the self-healing election manager's state.
	election atomic.Pointer[func() election.Status]
}

// AddHealthDetail registers a detail contributor for /healthz: its
// key/value pairs are appended to every probe response. Daemons use it
// to surface circuit-breaker states and outbox depth next to liveness.
func (s *Server) AddHealthDetail(fn func() map[string]string) *Server {
	s.healthMu.Lock()
	s.healthDetails = append(s.healthDetails, fn)
	s.healthMu.Unlock()
	return s
}

// healthDetail merges the registered contributors.
func (s *Server) healthDetail() map[string]string {
	s.healthMu.Lock()
	fns := make([]func() map[string]string, len(s.healthDetails))
	copy(fns, s.healthDetails)
	s.healthMu.Unlock()
	out := make(map[string]string)
	for _, fn := range fns {
		for k, v := range fn() {
			out[k] = v
		}
	}
	return out
}

// NewServer wraps a controller.
func NewServer(ctrl *core.Controller) *Server {
	s := &Server{
		ctrl: ctrl,
		mux:  http.NewServeMux(),
		// Callback deliveries reuse one warm keep-alive pool: the same
		// few subscriber hosts receive every notification, so connection
		// churn here would dominate fan-out latency.
		httpClient: &http.Client{Timeout: 10 * time.Second, Transport: NewTunedTransport()},
		deliveriesFailed: ctrl.Metrics().Counter("css_deliveries_failed_total",
			"Callback deliveries that failed to reach the subscriber, by reason.",
			"reason"),
	}
	s.mux.HandleFunc("POST /ws/publish", s.handlePublish)
	s.mux.HandleFunc("POST /ws/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("POST /ws/details", s.handleDetails)
	s.mux.HandleFunc("POST /ws/inquire", s.handleInquire)
	s.mux.HandleFunc("POST /ws/policy", s.handlePolicy)
	s.mux.HandleFunc("POST /ws/consent", s.handleConsent)
	s.mux.HandleFunc("GET /ws/catalog", s.handleCatalog)
	s.mux.HandleFunc("GET /ws/pending", s.handlePending)
	s.mux.HandleFunc("GET /ws/stats", s.handleStats)
	s.mux.HandleFunc("GET /ws/audit", s.handleAudit)
	s.mux.HandleFunc("GET /ws/policies", s.handlePolicies)
	s.mux.HandleFunc("GET /ws/subscription", s.handleSubscriptionProbe)
	s.mux.HandleFunc("GET /ws/shardmap", s.handleShardMap)
	s.mux.HandleFunc("GET /ws/replstatus", s.handleReplStatus)
	s.mux.HandleFunc("POST /ws/promote", s.handlePromote)
	s.mux.Handle("GET /metrics", telemetry.MetricsHandler(ctrl.Metrics()))
	s.mux.Handle("GET /healthz", telemetry.HealthzDetailHandler(ctrl.Healthy, s.healthDetail))
	s.mux.Handle("GET /debug/spans", telemetry.SpansHandler(ctrl.Tracer().Spans(), "controller"))
	// Admission sits inside the telemetry middleware so shed requests
	// (429) show up in the per-route HTTP metrics; it is a no-op until
	// SetAdmission installs a gate.
	s.handler = telemetry.TracingMiddleware(telemetry.NewHTTPMetrics(ctrl.Metrics(), "css"),
		ctrl.Tracer(), s.withAdmission(s.mux))
	return s
}

// SetSLO mounts the latency-objective report at GET /slo and adds a
// one-line burn-rate summary to /healthz. Call before serving.
func (s *Server) SetSLO(slo *telemetry.SLO) *Server {
	s.mux.Handle("GET /slo", telemetry.SLOHandler(slo))
	s.AddHealthDetail(func() map[string]string {
		return map[string]string{"slo": slo.HealthDetail()}
	})
	return s
}

// GuarantorRole is the token role required to query the audit trail
// remotely when authentication is enabled (the privacy guarantor's
// inquiry, §1/§4).
const GuarantorRole = "privacy-guarantor"

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	body, err := readRaw(r)
	if err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	codec := requestCodec(r, body)
	resp := responseCodec(r, codec)
	n, err := codec.DecodeNotification(body)
	if err != nil {
		writeFaultStatusAs(w, resp, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	if err := s.authorizeActor(r, event.Actor(n.Producer)); err != nil {
		writeAuthFault(w, err)
		return
	}
	if n.Trace == "" {
		// Adopt the HTTP request's correlation ID (minted by the
		// middleware when the producer sent none) as the flow trace.
		n.Trace = telemetry.TraceFrom(r.Context())
	}
	gid, err := s.ctrl.PublishContext(r.Context(), n)
	if err != nil {
		writeFaultAs(w, resp, err)
		return
	}
	writePublishResponseAs(w, resp, http.StatusOK, gid)
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	body, err := readRaw(r)
	if err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	codec := requestCodec(r, body)
	resp := responseCodec(r, codec)
	var req subscribeRequest
	if codec == event.Binary {
		dec, derr := decodeSubscribeRequestFrame(body)
		if derr != nil {
			writeFaultStatusAs(w, resp, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: derr.Error()})
			return
		}
		req = *dec
	} else if err := xml.Unmarshal(body, &req); err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	if req.Callback == "" {
		writeFaultStatusAs(w, resp, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: "missing callback URL"})
		return
	}
	// The callback codec is negotiated once here; every delivery to this
	// subscriber reuses it without per-message negotiation.
	cbCodec, err := event.CodecByName(req.Codec)
	if err != nil {
		writeFaultStatusAs(w, resp, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	if err := s.authorizeActor(r, req.Actor); err != nil {
		writeAuthFault(w, err)
		return
	}
	callback := req.Callback
	subscriber := string(req.Actor)
	sub, err := s.ctrl.SubscribeCtx(req.Actor, req.Class, func(ctx context.Context, n *event.Notification) {
		s.deliverCallback(ctx, callback, subscriber, cbCodec, n)
	})
	if err != nil {
		writeFaultAs(w, resp, err)
		return
	}
	writeSubscribeResponseAs(w, resp, sub.ID())
}

// deliverCallback POSTs the notification to the subscriber's endpoint,
// forwarding the flow's trace ID in the X-Trace-Id header and the
// delivery span in the W3C traceparent header, so spans the consumer
// opens while handling the callback parent under this flow's
// bus.deliver span. The controller-side handler signature is
// fire-and-forget — the paper's temporal decoupling is provided by the
// events index, which the consumer can inquire to catch up — but a
// failed delivery is never silent: it is logged with the trace ID and
// counted in css_deliveries_failed_total so operators see subscriber
// outages.
func (s *Server) deliverCallback(ctx context.Context, url, subscriber string, codec event.Codec, n *event.Notification) {
	fail := func(reason string, err error) {
		s.deliveriesFailed.Inc(reason)
		telemetry.Logger().Error("callback delivery failed",
			"trace", n.Trace, "event", string(n.ID), "class", string(n.Class),
			"subscriber", subscriber, "callback", url, "reason", reason, "err", err)
	}
	body, err := codec.EncodeNotification(n)
	if err != nil {
		fail("encode", err)
		return
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		fail("request", err)
		return
	}
	req.Header.Set("Content-Type", codec.ContentType())
	req.Header.Set(telemetry.TraceHeader, n.Trace)
	if trace := telemetry.TraceFrom(ctx); trace != "" {
		req.Header.Set(telemetry.TraceparentHeader,
			telemetry.FormatTraceparent(trace, telemetry.SpanIDFrom(ctx)))
	}
	resp, err := s.httpClient.Do(req)
	if err != nil {
		fail("connect", err)
		return
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		fail("status", fmt.Errorf("subscriber returned %s", resp.Status))
	}
}

// handleSubscriptionProbe answers a consumer's liveness check for its
// subscription (?id=). Subscriptions are controller memory; after a
// restart this returns the unknown-subscription fault and the consumer
// re-subscribes. Any authenticated member may probe — the response
// carries no data beyond the id's existence.
func (s *Server) handleSubscriptionProbe(w http.ResponseWriter, r *http.Request) {
	if _, err := s.authenticate(r); err != nil {
		writeAuthFault(w, err)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: "missing id parameter"})
		return
	}
	if !s.ctrl.HasSubscription(id) {
		writeFault(w, fmt.Errorf("%w: %s", ErrUnknownSubscription, id))
		return
	}
	writeXML(w, http.StatusOK, &subscribeResponse{ID: id})
}

// handleShardMap serves the controller's current shard map as a binary
// frame — the shard-aware client's refresh path after a wrong-shard
// redirect names a newer map version. The map carries shard ids and
// addresses only, never personal data; any authenticated member may
// fetch it.
func (s *Server) handleShardMap(w http.ResponseWriter, r *http.Request) {
	if _, err := s.authenticate(r); err != nil {
		writeAuthFault(w, err)
		return
	}
	m := s.ctrl.ShardMap()
	if m == nil {
		writeXML(w, http.StatusNotFound, &Fault{Code: CodeNotFound, Message: "controller is not sharded"})
		return
	}
	writeBody(w, http.StatusOK, event.ContentTypeBinary, m.EncodeFrame())
}

// SetReplication attaches the WAL shipper whose follower state the
// replication-status endpoint reports. Call when (re)wiring a primary;
// a replica leaves it unset until promotion.
func (s *Server) SetReplication(p *replication.Primary) *Server {
	s.repl.Store(p)
	return s
}

// SetFollower attaches the WAL-stream follower whose fencing epoch the
// replication-status endpoint reports while the node is a replica.
func (s *Server) SetFollower(f *replication.Follower) *Server {
	s.follower.Store(f)
	return s
}

// SetElection attaches the election manager's status snapshot, merged
// into /ws/replstatus so operators (and the probe channel of peer
// detectors) can see each node's detection and campaign state.
func (s *Server) SetElection(fn func() election.Status) *Server {
	s.election.Store(&fn)
	return s
}

// SetPromoteHook replaces the default promote action (the wrapped
// controller's Promote) for POST /ws/promote. The css-controller daemon
// installs a hook that also brings up its own replication primary so the
// promoted node starts shipping to the surviving replicas.
func (s *Server) SetPromoteHook(fn func(epoch uint64) error) *Server {
	s.onPromote.Store(&fn)
	return s
}

// handleReplStatus reports the node's replication role, fencing epoch,
// and (on a primary with an attached shipper) per-follower lag. The
// payload carries operational state only, never personal data, but it
// still sits behind authentication like every other /ws route.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	if _, err := s.authenticate(r); err != nil {
		writeAuthFault(w, err)
		return
	}
	resp := &ReplStatus{Role: "primary", Epoch: s.ctrl.ReplicationEpoch()}
	if s.ctrl.IsReplica() {
		resp.Role = "replica"
		if f := s.follower.Load(); f != nil {
			resp.Epoch = f.Epoch()
		}
	}
	if p := s.repl.Load(); p != nil {
		st := p.Status()
		resp.Epoch = st.Epoch
		resp.Quorum = st.Quorum
		resp.Fenced = p.Fenced()
		for _, f := range st.Followers {
			resp.Followers = append(resp.Followers, ReplFollower{
				Addr: f.Addr, Connected: f.Connected, Fenced: f.Fenced, LagBytes: f.LagBytes,
			})
		}
	}
	if fn := s.election.Load(); fn != nil {
		st := (*fn)()
		resp.Election = st.State
		resp.Promised = st.Promised
		resp.Phi = st.Phi
	}
	writeXML(w, http.StatusOK, resp)
}

// handlePromote flips a read replica into the primary role at the
// epoch named in the request (the failover runbook's lease claim).
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if _, err := s.authenticate(r); err != nil {
		writeAuthFault(w, err)
		return
	}
	var req promoteRequest
	if err := readBody(r, &req); err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	if req.Epoch == 0 {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: "promote needs a nonzero epoch"})
		return
	}
	promote := s.ctrl.Promote
	if fn := s.onPromote.Load(); fn != nil {
		promote = *fn
	}
	if err := promote(req.Epoch); err != nil {
		writeFault(w, err)
		return
	}
	writeXML(w, http.StatusOK, &ReplStatus{Role: "primary", Epoch: s.ctrl.ReplicationEpoch()})
}

func (s *Server) handleDetails(w http.ResponseWriter, r *http.Request) {
	body, err := readRaw(r)
	if err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	codec := requestCodec(r, body)
	resp := responseCodec(r, codec)
	req, err := codec.DecodeDetailRequest(body)
	if err != nil {
		writeFaultStatusAs(w, resp, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	if err := s.authorizeActor(r, req.Requester); err != nil {
		writeAuthFault(w, err)
		return
	}
	if req.Trace == "" {
		req.Trace = telemetry.TraceFrom(r.Context())
	}
	d, err := s.ctrl.RequestDetailsContext(r.Context(), req)
	if err != nil {
		writeFaultAs(w, resp, err)
		return
	}
	out, err := resp.EncodeDetail(d)
	if err != nil {
		writeFaultAs(w, resp, err)
		return
	}
	writeBody(w, http.StatusOK, respContentType(resp), out)
}

// respContentType appends the charset hint to XML responses, keeping
// the pre-negotiation header byte-for-byte.
func respContentType(c event.Codec) string {
	if c == event.Binary {
		return event.ContentTypeBinary
	}
	return "application/xml; charset=utf-8"
}

func (s *Server) handleInquire(w http.ResponseWriter, r *http.Request) {
	var req inquiryRequest
	if err := readBody(r, &req); err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	if err := s.authorizeActor(r, req.Actor); err != nil {
		writeAuthFault(w, err)
		return
	}
	q := index.Inquiry{
		PersonID: req.PersonID,
		Class:    req.Class,
		Producer: req.Producer,
		Limit:    req.Limit,
	}
	var err error
	if q.From, err = parseOptTime(req.From); err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	if q.To, err = parseOptTime(req.To); err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	res, err := s.ctrl.InquireIndexContext(r.Context(), req.Actor, q)
	if err != nil {
		writeFault(w, err)
		return
	}
	out := inquiryResponse{}
	for _, n := range res {
		data, err := event.EncodeNotification(n)
		if err != nil {
			writeFault(w, err)
			return
		}
		out.Notifications = append(out.Notifications, string(data))
	}
	writeXML(w, http.StatusOK, &out)
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBodyBytes)); err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	p, err := policy.Decode(buf.Bytes())
	if err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	if err := s.authorizeActor(r, event.Actor(p.Producer)); err != nil {
		writeAuthFault(w, err)
		return
	}
	stored, err := s.ctrl.DefinePolicy(p)
	if err != nil {
		writeFault(w, err)
		return
	}
	data, err := policy.Encode(stored)
	if err != nil {
		writeFault(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handleConsent(w http.ResponseWriter, r *http.Request) {
	var d consentDirectiveXML
	if err := readBody(r, &d); err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	// Consent is collected at the data sources (or by the citizen portal);
	// any authenticated member may record a directive.
	if _, err := s.authenticate(r); err != nil {
		writeAuthFault(w, err)
		return
	}
	stored, err := s.ctrl.RecordConsent(consent.Directive{
		PersonID: d.PersonID,
		Allow:    d.Allow,
		Scope: consent.Scope{
			Class:    d.Class,
			Consumer: d.Consumer,
			Purpose:  d.Purpose,
		},
	})
	if err != nil {
		writeFault(w, err)
		return
	}
	writeXML(w, http.StatusOK, &consentDirectiveXML{
		PersonID: stored.PersonID, Allow: stored.Allow,
		Class: stored.Scope.Class, Consumer: stored.Scope.Consumer, Purpose: stored.Scope.Purpose,
		Seq: stored.Seq,
	})
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	if _, err := s.authenticate(r); err != nil {
		writeAuthFault(w, err)
		return
	}
	decls := s.ctrl.Catalog().Classes()
	var buf bytes.Buffer
	buf.WriteString("<catalog>\n")
	for _, d := range decls {
		data, err := schema.Encode(d.Schema)
		if err != nil {
			writeFault(w, err)
			return
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	buf.WriteString("</catalog>\n")
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// handlePending lets a data producer poll its pending access requests
// (?producer=ID). With authentication enabled, the token must cover the
// producer.
func (s *Server) handlePending(w http.ResponseWriter, r *http.Request) {
	producer := event.ProducerID(r.URL.Query().Get("producer"))
	if producer == "" {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: "missing producer parameter"})
		return
	}
	if err := s.authorizeActor(r, event.Actor(producer)); err != nil {
		writeAuthFault(w, err)
		return
	}
	pending := s.ctrl.PendingRequests(producer)
	out := pendingResponse{}
	for _, p := range pending {
		out.Requests = append(out.Requests, pendingRequestXML{
			Actor:   p.Actor,
			Class:   p.Class,
			Purpose: p.Purpose,
			Count:   p.Count,
			FirstAt: p.FirstAt.UTC().Format(time.RFC3339Nano),
			LastAt:  p.LastAt.UTC().Format(time.RFC3339Nano),
		})
	}
	writeXML(w, http.StatusOK, &out)
}

type pendingResponse struct {
	XMLName  xml.Name            `xml:"pendingRequests"`
	Requests []pendingRequestXML `xml:"request"`
}

type pendingRequestXML struct {
	Actor   event.Actor   `xml:"actor"`
	Class   event.ClassID `xml:"class"`
	Purpose event.Purpose `xml:"purpose,omitempty"`
	Count   int           `xml:"count"`
	FirstAt string        `xml:"firstAt"`
	LastAt  string        `xml:"lastAt"`
}

// handleAudit answers the privacy guarantor's remote inquiry over the
// access log. With authentication enabled the bearer token must carry
// the GuarantorRole; without it the endpoint trusts the perimeter like
// the rest of the unauthenticated deployment.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if s.auth != nil {
		claims, err := s.authenticate(r)
		if err != nil {
			writeAuthFault(w, err)
			return
		}
		if !claims.HasRole(GuarantorRole) {
			writeAuthFault(w, fmt.Errorf("%w: audit inquiry requires the %s role", ErrUnauthorized, GuarantorRole))
			return
		}
	}
	q := r.URL.Query()
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: "bad limit"})
			return
		}
		limit = n
	}
	recs, err := s.ctrl.Audit().Search(audit.Query{
		Kind:    audit.Kind(q.Get("kind")),
		Actor:   q.Get("actor"),
		EventID: event.GlobalID(q.Get("event")),
		Class:   event.ClassID(q.Get("class")),
		Outcome: q.Get("outcome"),
		Trace:   q.Get("trace"),
		Limit:   limit,
	})
	if err != nil {
		writeFault(w, err)
		return
	}
	out := auditResponse{}
	for _, rec := range recs {
		out.Records = append(out.Records, auditRecordXML{
			Seq: rec.Seq, At: rec.At.UTC().Format(time.RFC3339Nano),
			Kind: string(rec.Kind), Actor: rec.Actor,
			EventID: rec.EventID, Class: rec.Class, Purpose: rec.Purpose,
			Outcome: rec.Outcome, PolicyID: rec.PolicyID, Note: rec.Note,
			Trace: rec.Trace,
		})
	}
	writeXML(w, http.StatusOK, &out)
}

type auditResponse struct {
	XMLName xml.Name         `xml:"auditRecords"`
	Records []auditRecordXML `xml:"record"`
}

type auditRecordXML struct {
	Seq      uint64         `xml:"seq,attr"`
	At       string         `xml:"at"`
	Kind     string         `xml:"kind"`
	Actor    string         `xml:"actor"`
	EventID  event.GlobalID `xml:"eventId,omitempty"`
	Class    event.ClassID  `xml:"class,omitempty"`
	Purpose  event.Purpose  `xml:"purpose,omitempty"`
	Outcome  string         `xml:"outcome"`
	PolicyID string         `xml:"policyId,omitempty"`
	Note     string         `xml:"note,omitempty"`
	Trace    string         `xml:"trace,omitempty"`
}

// handlePolicies lists a producer's stored policies (?producer=ID), in
// the compact XML form. With authentication enabled the token must cover
// the producer — a producer may export only its own corpus.
func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	producer := event.ProducerID(r.URL.Query().Get("producer"))
	if producer == "" {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: "missing producer parameter"})
		return
	}
	if err := s.authorizeActor(r, event.Actor(producer)); err != nil {
		writeAuthFault(w, err)
		return
	}
	var buf bytes.Buffer
	buf.WriteString("<policies>\n")
	for _, p := range s.ctrl.Policies(producer) {
		data, err := policy.Encode(p)
		if err != nil {
			writeFault(w, err)
			return
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	buf.WriteString("</policies>\n")
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// handleStats reports the controller's operational counters (any
// authenticated member may read them; they carry no personal data).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if _, err := s.authenticate(r); err != nil {
		writeAuthFault(w, err)
		return
	}
	st := s.ctrl.Stats()
	writeXML(w, http.StatusOK, &statsXML{
		Published:           st.Published,
		Delivered:           st.Delivered,
		ConsentDrops:        st.ConsentDrops,
		SubscriptionDenials: st.SubscriptionDenials,
		DetailPermits:       st.DetailPermits,
		DetailDenials:       st.DetailDenials,
		Inquiries:           st.Inquiries,
	})
}

type statsXML struct {
	XMLName             xml.Name `xml:"stats"`
	Published           uint64   `xml:"published"`
	Delivered           uint64   `xml:"delivered"`
	ConsentDrops        uint64   `xml:"consentDrops"`
	SubscriptionDenials uint64   `xml:"subscriptionDenials"`
	DetailPermits       uint64   `xml:"detailPermits"`
	DetailDenials       uint64   `xml:"detailDenials"`
	Inquiries           uint64   `xml:"inquiries"`
}

type consentDirectiveXML struct {
	XMLName  xml.Name      `xml:"consentDirective"`
	PersonID string        `xml:"personId"`
	Allow    bool          `xml:"allow"`
	Class    event.ClassID `xml:"class,omitempty"`
	Consumer event.Actor   `xml:"consumer,omitempty"`
	Purpose  event.Purpose `xml:"purpose,omitempty"`
	Seq      uint64        `xml:"seq,omitempty"`
}

func parseOptTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("transport: bad time %q: %w", s, err)
	}
	return t, nil
}
