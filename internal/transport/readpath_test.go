package transport

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/store"
)

// coalescingRig fronts a real gateway server with a gate that counts
// upstream get-response round-trips and holds them until released.
type coalescingRig struct {
	srv      *httptest.Server
	client   *RemoteGateway
	upstream atomic.Int32
	entered  chan struct{}
	release  chan struct{}
}

func newCoalescingRig(t *testing.T) *coalescingRig {
	t.Helper()
	gw, err := gateway.New("hospital", store.OpenMemory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	d := event.NewDetail("c.x", "src-1", "hospital").
		Set("alpha", "1").
		Set("beta", "2")
	if err := gw.Persist(d); err != nil {
		t.Fatal(err)
	}
	gs := NewGatewayServer(gw)
	r := &coalescingRig{
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
	r.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/gw/get-response" {
			r.upstream.Add(1)
			r.entered <- struct{}{}
			<-r.release
		}
		gs.ServeHTTP(w, req)
	}))
	t.Cleanup(r.srv.Close)
	r.client = NewRemoteGateway(r.srv.URL, r.srv.Client())
	return r
}

func TestRemoteGatewayCoalescesIdenticalFetches(t *testing.T) {
	r := newCoalescingRig(t)
	const n = 8
	fields := []event.FieldName{"alpha", "beta"}
	results := make([]*event.Detail, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := r.client.GetResponse("src-1", fields)
			if err != nil {
				t.Errorf("fetch %d: %v", i, err)
				return
			}
			results[i] = d
		}(i)
	}
	<-r.entered // leader reached the wire
	time.Sleep(20 * time.Millisecond)
	close(r.release)
	wg.Wait()

	if got := r.upstream.Load(); got != 1 {
		t.Fatalf("%d identical concurrent fetches made %d round-trips, want 1", n, got)
	}
	seen := map[*event.Detail]bool{}
	for i, d := range results {
		if d == nil {
			t.Fatalf("results[%d] missing", i)
		}
		if v, _ := d.Get("alpha"); v != "1" {
			t.Errorf("results[%d]: alpha = %q", i, v)
		}
		if seen[d] {
			t.Fatal("two callers share one *event.Detail instance")
		}
		seen[d] = true
	}
}

func TestRemoteGatewayNeverCoalescesDistinctFieldsets(t *testing.T) {
	r := newCoalescingRig(t)
	var wg sync.WaitGroup
	for _, f := range []event.FieldName{"alpha", "beta"} {
		wg.Add(1)
		go func(f event.FieldName) {
			defer wg.Done()
			d, err := r.client.GetResponse("src-1", []event.FieldName{f})
			if err != nil {
				t.Errorf("fetch %s: %v", f, err)
				return
			}
			// Each caller must receive exactly its own authorized view.
			if _, ok := d.Get(f); !ok || len(d.Fields) != 1 {
				t.Errorf("fetch %s got fields %v", f, d.Fields)
			}
		}(f)
	}
	<-r.entered
	<-r.entered // both requests must reach the wire before release
	close(r.release)
	wg.Wait()
	if got := r.upstream.Load(); got != 2 {
		t.Fatalf("distinct fieldsets made %d round-trips, want 2 (no cross-talk)", got)
	}
}

func TestFetchKeyIsOrderInsensitiveAndCollisionFree(t *testing.T) {
	a := fetchKey("src-1", []event.FieldName{"alpha", "beta"})
	b := fetchKey("src-1", []event.FieldName{"beta", "alpha"})
	if a != b {
		t.Errorf("field order changed the key: %q vs %q", a, b)
	}
	distinct := []string{
		a,
		fetchKey("src-2", []event.FieldName{"alpha", "beta"}),
		fetchKey("src-1", []event.FieldName{"alpha"}),
		fetchKey("src-1", nil),
	}
	seen := map[string]bool{}
	for _, k := range distinct {
		if seen[k] {
			t.Errorf("key collision on %q", k)
		}
		seen[k] = true
	}
}

func TestWithTokenGetsItsOwnFlightGroup(t *testing.T) {
	g := NewRemoteGateway("http://unused", nil)
	tok := g.WithToken("secret")
	if tok.flights == g.flights {
		t.Error("WithToken shares the coalescing group across identities")
	}
	if tok.token != "secret" || g.token != "" {
		t.Errorf("token isolation broken: %q / %q", tok.token, g.token)
	}
}
