package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// DefaultDrainInterval is how often a QueuedPublisher retries its
// parked notifications when no publish kicks the drainer earlier.
const DefaultDrainInterval = 500 * time.Millisecond

// QueuedPublisher publishes notifications to a remote controller with a
// durable fallback: when the controller is unreachable (connection
// failure, 5xx, open breaker), the notification is parked in a
// store-backed outbox — one crash-atomic WAL batch per entry — and
// drained by a background loop with at-least-once semantics once the
// controller answers again. Replays are deduplicated by the
// controller's (producer, source id) idempotency, so the effect at the
// events index is exactly-once.
//
// This is the producer half of the paper's availability claim: a source
// system keeps emitting events during a controller outage, and the
// platform catches up instead of losing them.
type QueuedPublisher struct {
	client   EventPublisher
	outbox   *resilience.Outbox
	interval time.Duration

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	stopped bool
}

// EventPublisher is the publish surface the outbox drains into — a
// single-controller *Client or a cluster-routing *ShardedClient.
type EventPublisher interface {
	Publish(ctx context.Context, n *event.Notification) (event.GlobalID, error)
}

// NewQueuedPublisher wraps client with the outbox persisted in st.
// Entries surviving from a previous run begin draining immediately.
// drainInterval ≤ 0 means DefaultDrainInterval. metrics may be nil.
func NewQueuedPublisher(client EventPublisher, st *store.Store, metrics *resilience.Metrics, drainInterval time.Duration) (*QueuedPublisher, error) {
	ob, err := resilience.OpenOutbox(st, metrics)
	if err != nil {
		return nil, err
	}
	if drainInterval <= 0 {
		drainInterval = DefaultDrainInterval
	}
	q := &QueuedPublisher{
		client:   client,
		outbox:   ob,
		interval: drainInterval,
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go q.drainLoop()
	return q, nil
}

// Publish attempts a direct publish; on transport-level failure the
// notification is parked durably and queued=true is returned with an
// empty global id (the controller assigns it at drain time). Permanent
// rejections (unknown producer, bad class, auth) are returned as-is —
// queueing cannot fix them.
func (q *QueuedPublisher) Publish(ctx context.Context, n *event.Notification) (gid event.GlobalID, queued bool, err error) {
	gid, err = q.client.Publish(ctx, n)
	if err == nil {
		return gid, false, nil
	}
	if !resilience.Retryable(err) && !errors.Is(err, context.DeadlineExceeded) {
		return "", false, err
	}
	if _, qerr := q.outbox.Enqueue(n); qerr != nil {
		// The fallback itself failed; surface the original cause too.
		return "", false, errors.Join(qerr, err)
	}
	q.kick()
	return "", true, nil
}

// kick nudges the drain loop without waiting for the ticker.
func (q *QueuedPublisher) kick() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// Depth reports the pending outbox entries.
func (q *QueuedPublisher) Depth() int { return q.outbox.Depth() }

// Dead reports the dead-lettered outbox entries.
func (q *QueuedPublisher) Dead() int { return q.outbox.Dead() }

// DrainContext blocks until the outbox is empty or ctx expires, kicking
// the drain loop so parked notifications are pushed out immediately
// rather than on the next tick. It is the graceful-shutdown hook: a
// SIGTERM'd gateway gets one bounded chance to hand its backlog to the
// controller. On timeout the remaining entries are NOT lost — they stay
// durable in the WAL and resume draining on the next run; the returned
// error just reports how many were left behind.
func (q *QueuedPublisher) DrainContext(ctx context.Context) error {
	pause := 5 * time.Millisecond
	for {
		d := q.outbox.Depth()
		if d == 0 {
			return nil
		}
		q.kick()
		select {
		case <-ctx.Done():
			return fmt.Errorf("transport: outbox drain: %d entries still parked (durable, resume next run): %w", d, ctx.Err())
		case <-q.stop:
			return fmt.Errorf("transport: outbox drain: publisher closed with %d entries parked", d)
		case <-time.After(pause):
		}
		if pause < 80*time.Millisecond {
			pause *= 2
		}
	}
}

// Close stops the drain loop (pending entries stay durable for the next
// run).
func (q *QueuedPublisher) Close() {
	q.mu.Lock()
	if q.stopped {
		q.mu.Unlock()
		return
	}
	q.stopped = true
	close(q.stop)
	q.mu.Unlock()
	<-q.done
}

// drainLoop retries parked notifications until the outbox is empty,
// waking on every failed publish and on a steady tick.
func (q *QueuedPublisher) drainLoop() {
	defer close(q.done)
	ticker := time.NewTicker(q.interval)
	defer ticker.Stop()
	for {
		select {
		case <-q.stop:
			return
		case <-q.wake:
		case <-ticker.C:
		}
		q.drainOnce()
	}
}

// drainOnce publishes queued entries oldest-first until the queue is
// empty or the controller stops answering. A replayed entry the
// controller already indexed just returns the original global id —
// exactly-once at the index. Permanently rejected entries are
// dead-lettered so one poisoned notification cannot wedge the queue.
func (q *QueuedPublisher) drainOnce() {
	for {
		select {
		case <-q.stop:
			return
		default:
		}
		n, seq, ok, err := q.outbox.Next()
		if err != nil || !ok {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), q.interval*4)
		_, err = q.client.Publish(ctx, n)
		cancel()
		switch {
		case err == nil:
			if err := q.outbox.Ack(seq, n); err != nil {
				telemetry.Logger().Error("outbox ack failed",
					"producer", string(n.Producer), "source", string(n.SourceID), "err", err)
				return
			}
		case resilience.Retryable(err) || errors.Is(err, context.DeadlineExceeded):
			// Controller still unreachable; try again next round.
			return
		default:
			telemetry.Logger().Error("outbox entry rejected permanently, dead-lettering",
				"producer", string(n.Producer), "source", string(n.SourceID), "err", err)
			if err := q.outbox.Reject(seq, n); err != nil {
				return
			}
		}
	}
}
