package transport

import (
	"net/http"

	"repro/internal/event"
)

// NotificationReceiver is the consumer-side callback endpoint: an
// http.Handler that accepts the notification POSTs the controller sends
// for a subscription and hands each decoded notification to the handler.
// Returning a non-2xx (on decode failure) lets the bus redeliver.
type NotificationReceiver struct {
	handle func(n *event.Notification)
}

// NewNotificationReceiver creates a receiver invoking handle per
// notification.
func NewNotificationReceiver(handle func(n *event.Notification)) *NotificationReceiver {
	return &NotificationReceiver{handle: handle}
}

// ServeHTTP implements http.Handler. The body format is sniffed, so
// one receiver serves XML and binary-codec subscriptions alike.
func (rc *NotificationReceiver) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := readRaw(r)
	if err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	n, err := requestCodec(r, body).DecodeNotification(body)
	if err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	rc.handle(n)
	w.WriteHeader(http.StatusNoContent)
}
