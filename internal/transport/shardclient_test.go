package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/enforcer"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/index"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/store"
)

// shardRig is an in-process cluster: n controller shards sharing one
// master key (so every shard computes identical pseudonyms), each
// behind its own httptest server, with one hospital gateway attached
// to all of them.
type shardRig struct {
	ctrls   []*core.Controller
	servers []*httptest.Server
	gw      *gateway.Gateway
	m       *cluster.Map
	shards  []cluster.ShardInfo // every shard incl. cold ones outside m
	sc      *ShardedClient
}

func newShardRig(t *testing.T, n int, opts ...ShardedOption) *shardRig {
	return newShardRigCold(t, n, 0, opts...)
}

// newShardRigCold brings up active+cold controllers: the shard map
// covers the first active ids only, and the trailing cold shards boot
// outside it — the donor-side precondition of a live split, which
// flips in a successor map naming them.
func newShardRigCold(t *testing.T, active, cold int, opts ...ShardedOption) *shardRig {
	t.Helper()
	n := active + cold
	key := bytes.Repeat([]byte{7}, crypto.KeySize)

	// The map must exist before the controllers (each shard is born
	// knowing its assignment), but shard addresses are only known once
	// the listeners are bound — so bind first, serve later.
	lns := make([]net.Listener, n)
	shards := make([]cluster.ShardInfo, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		shards[i] = cluster.ShardInfo{ID: cluster.ShardID(i), Addr: "http://" + ln.Addr().String()}
	}
	m, err := cluster.NewMap(1, 0, shards[:active])
	if err != nil {
		t.Fatal(err)
	}

	r := &shardRig{m: m, shards: shards}
	gw, err := gateway.New("hospital", store.OpenMemory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r.gw = gw
	gwServer := httptest.NewServer(NewGatewayServer(gw))
	t.Cleanup(gwServer.Close)

	for i := 0; i < n; i++ {
		ctrl, err := core.New(core.Config{
			MasterKey:      key,
			DefaultConsent: true,
			ShardID:        cluster.ShardID(i),
			ShardMap:       m,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ctrl.Close() })
		if err := ctrl.RegisterProducer("hospital", "Hospital"); err != nil {
			t.Fatal(err)
		}
		if err := ctrl.RegisterConsumer("family-doctor", "Doctors"); err != nil {
			t.Fatal(err)
		}
		if err := ctrl.DeclareClass("hospital", schema.BloodTest()); err != nil {
			t.Fatal(err)
		}
		if err := ctrl.AttachGateway("hospital", NewRemoteGateway(gwServer.URL, nil)); err != nil {
			t.Fatal(err)
		}
		// The canonical disclosure policy on every shard: inquiries and
		// subscriptions must be authorized wherever they land.
		if _, err := ctrl.DefinePolicy(doctorBloodPolicy()); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewUnstartedServer(NewServer(ctrl))
		srv.Listener.Close()
		srv.Listener = lns[i]
		srv.Start()
		t.Cleanup(srv.Close)
		r.ctrls = append(r.ctrls, ctrl)
		r.servers = append(r.servers, srv)
	}

	sc, err := NewShardedClient(m, func(info cluster.ShardInfo) *Client {
		return NewClient(info.Addr, nil)
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	r.sc = sc
	return r
}

func (r *shardRig) note(person string, i int) *event.Notification {
	return &event.Notification{
		SourceID: event.SourceID(fmt.Sprintf("src-%s-%d", person, i)),
		Class:    schema.ClassBloodTest, PersonID: person,
		Summary:    "blood test",
		OccurredAt: time.Date(2010, 5, 30, 9, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
		Producer:   "hospital",
	}
}

// metricValue reads one unlabeled counter out of a controller's
// telemetry registry via its Prometheus rendering.
func metricValue(t *testing.T, c *core.Controller, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	return 0
}

// indexTotal sums the events held across every shard's index.
func (r *shardRig) indexTotal(t *testing.T) int {
	t.Helper()
	total := 0
	for _, c := range r.ctrls {
		n, err := c.IndexLen()
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	return total
}

// TestShardedPublishByRedirect routes with no pseudonym function: the
// first publish per person guesses, the wrong-shard fault names the
// owner, and the learned route makes the second round direct. Every
// event must land exactly once, on its owning shard.
func TestShardedPublishByRedirect(t *testing.T) {
	r := newShardRig(t, 3)
	ctx := context.Background()
	const persons = 20
	for p := 0; p < persons; p++ {
		person := fmt.Sprintf("PRS-%03d", p)
		if _, err := r.sc.Publish(ctx, r.note(person, 0)); err != nil {
			t.Fatalf("publish %s: %v", person, err)
		}
	}
	// Second round: the cached routes must hold (and stay correct).
	for p := 0; p < persons; p++ {
		person := fmt.Sprintf("PRS-%03d", p)
		if _, err := r.sc.Publish(ctx, r.note(person, 1)); err != nil {
			t.Fatalf("re-publish %s: %v", person, err)
		}
	}
	if got := r.indexTotal(t); got != 2*persons {
		t.Fatalf("cluster index holds %d events, want %d", got, 2*persons)
	}
	// Exactly-once placement: each shard holds only pseudonyms it owns.
	for _, c := range r.ctrls {
		self, _ := c.ShardID()
		for p := 0; p < persons; p++ {
			person := fmt.Sprintf("PRS-%03d", p)
			notes, err := c.InquireIndex("family-doctor", index.Inquiry{PersonID: person})
			if err != nil {
				t.Fatal(err)
			}
			owner := r.m.Owner(c.Pseudonym(person))
			if len(notes) > 0 && owner != self {
				t.Fatalf("shard %s holds %d events for %s owned by %s", self, len(notes), person, owner)
			}
			if owner == self && len(notes) != 2 {
				t.Fatalf("owner %s holds %d events for %s, want 2", self, len(notes), person)
			}
		}
	}
	// The balance sanity: three shards, twenty persons — no shard
	// should be empty (probability of an empty shard is negligible).
	for _, c := range r.ctrls {
		n, err := c.IndexLen()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			id, _ := c.ShardID()
			t.Fatalf("shard %s is empty: ring routing is degenerate", id)
		}
	}
}

// TestShardedPublishWithPseudonym computes owners locally: no
// discovery redirect is ever needed, and the wrong-shard counter stays
// untouched on every shard.
func TestShardedPublishWithPseudonym(t *testing.T) {
	r := newShardRig(t, 3)
	sc, err := NewShardedClient(r.m, func(info cluster.ShardInfo) *Client {
		return NewClient(info.Addr, nil)
	}, WithPseudonym(r.ctrls[0].Pseudonym))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const persons = 12
	for p := 0; p < persons; p++ {
		if _, err := sc.Publish(ctx, r.note(fmt.Sprintf("PRX-%03d", p), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.indexTotal(t); got != persons {
		t.Fatalf("cluster index holds %d events, want %d", got, persons)
	}
	for _, c := range r.ctrls {
		if n := metricValue(t, c, "css_cluster_wrong_shard_total"); n != 0 {
			id, _ := c.ShardID()
			t.Fatalf("shard %s saw %v wrong-shard publishes with local routing", id, n)
		}
	}
}

// TestShardedInquireScatter publishes across all shards and inquires
// by class: the replies must scatter, merge in stable (OccurredAt, id)
// order, and honor the limit.
func TestShardedInquireScatter(t *testing.T) {
	r := newShardRig(t, 3, WithShardBudget(2*time.Second))
	ctx := context.Background()
	const persons, each = 9, 3
	for p := 0; p < persons; p++ {
		person := fmt.Sprintf("PRQ-%03d", p)
		for i := 0; i < each; i++ {
			if _, err := r.sc.Publish(ctx, r.note(person, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	notes, err := r.sc.InquireIndex(ctx, "family-doctor", index.Inquiry{Class: schema.ClassBloodTest})
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != persons*each {
		t.Fatalf("scatter inquiry returned %d notifications, want %d", len(notes), persons*each)
	}
	for i := 1; i < len(notes); i++ {
		a, b := notes[i-1], notes[i]
		if a.OccurredAt.After(b.OccurredAt) ||
			(a.OccurredAt.Equal(b.OccurredAt) && a.ID > b.ID) {
			t.Fatalf("merge order violated at %d: (%s,%s) before (%s,%s)",
				i, a.OccurredAt, a.ID, b.OccurredAt, b.ID)
		}
	}
	limited, err := r.sc.InquireIndex(ctx, "family-doctor", index.Inquiry{Class: schema.ClassBloodTest, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 5 {
		t.Fatalf("limited scatter returned %d, want 5", len(limited))
	}
	if limited[0].ID != notes[0].ID {
		t.Fatal("limited scatter does not start at the merged head")
	}
}

// TestShardedInquirePartialResult kills one shard: the inquiry must
// return the surviving shards' merged events together with a
// *cluster.PartialError naming the dead one.
func TestShardedInquirePartialResult(t *testing.T) {
	r := newShardRig(t, 3, WithShardBudget(2*time.Second))
	ctx := context.Background()
	const persons = 9
	for p := 0; p < persons; p++ {
		if _, err := r.sc.Publish(ctx, r.note(fmt.Sprintf("PRP-%03d", p), 0)); err != nil {
			t.Fatal(err)
		}
	}
	alive := 0
	for i, c := range r.ctrls {
		n, err := c.IndexLen()
		if err != nil {
			t.Fatal(err)
		}
		if i != 1 {
			alive += n
		}
		_ = n
	}
	r.servers[1].Close()

	notes, err := r.sc.InquireIndex(ctx, "family-doctor", index.Inquiry{Class: schema.ClassBloodTest})
	if err == nil {
		t.Fatal("inquiry with a dead shard returned no error")
	}
	if !errors.Is(err, cluster.ErrPartialResult) {
		t.Fatalf("error %v does not wrap ErrPartialResult", err)
	}
	var pe *cluster.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not *cluster.PartialError", err)
	}
	if _, ok := pe.Failed[1]; !ok || len(pe.Failed) != 1 {
		t.Fatalf("PartialError.Failed = %v, want exactly shard-1", pe.Failed)
	}
	if len(notes) != alive {
		t.Fatalf("partial inquiry returned %d notifications, want %d from live shards", len(notes), alive)
	}
}

// TestShardedDetails resolves a detail request without knowing the
// owner: the learned route from the publish ack answers directly, and
// an unknown event is disclaimed by every shard with the usual
// sentinel.
func TestShardedDetails(t *testing.T) {
	r := newShardRig(t, 3)
	ctx := context.Background()
	person := "PRD-001"
	d := event.NewDetail(schema.ClassBloodTest, "src-d1", "hospital").
		Set("patient-id", person).
		Set("exam-date", "2010-05-30").
		Set("hemoglobin", "14.2").
		Set("aids-test", "negative")
	if err := r.gw.Persist(d); err != nil {
		t.Fatal(err)
	}
	n := r.note(person, 0)
	n.SourceID = "src-d1"
	gid, err := r.sc.Publish(ctx, n)
	if err != nil {
		t.Fatal(err)
	}
	// Policy on every shard so whichever owner answers may disclose.
	if _, err := r.sc.DefinePolicy(ctx, doctorBloodPolicy()); err != nil {
		t.Fatal(err)
	}
	det, err := r.sc.RequestDetails(ctx, &event.DetailRequest{
		EventID: gid, Class: schema.ClassBloodTest, Requester: "family-doctor",
		Purpose: event.PurposeHealthcareTreatment,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := det.Get("hemoglobin"); !ok || got != "14.2" {
		t.Fatalf("detail hemoglobin = %q (ok=%v)", got, ok)
	}

	// A cold cache must still find the event by sweeping the shards.
	r.sc.events.reset()
	if _, err := r.sc.RequestDetails(ctx, &event.DetailRequest{
		EventID: gid, Class: schema.ClassBloodTest, Requester: "family-doctor",
		Purpose: event.PurposeHealthcareTreatment,
	}); err != nil {
		t.Fatalf("cold-cache details: %v", err)
	}

	if _, err := r.sc.RequestDetails(ctx, &event.DetailRequest{
		EventID: "evt-ffffffffffffffffffffffffffffffff", Class: schema.ClassBloodTest,
		Requester: "family-doctor",
		Purpose:   event.PurposeHealthcareTreatment,
	}); !errors.Is(err, enforcer.ErrUnknownEvent) {
		t.Fatalf("unknown event error = %v", err)
	}
}

// TestShardedSubscribeBroadcast fans a subscription across every shard
// and checks cluster-wide delivery: events published to different
// shards all reach the one consumer endpoint.
func TestShardedSubscribeBroadcast(t *testing.T) {
	r := newShardRig(t, 3)
	ctx := context.Background()

	got := make(chan event.GlobalID, 32)
	recv := httptest.NewServer(NewNotificationReceiver(func(n *event.Notification) {
		got <- n.ID
	}))
	t.Cleanup(recv.Close)

	ids, err := r.sc.Subscribe(ctx, "family-doctor", schema.ClassBloodTest, recv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("broadcast subscribe returned %d ids, want 3", len(ids))
	}
	const persons = 9
	want := make(map[event.GlobalID]bool, persons)
	for p := 0; p < persons; p++ {
		gid, err := r.sc.Publish(ctx, r.note(fmt.Sprintf("PRS-%03d", p), 0))
		if err != nil {
			t.Fatal(err)
		}
		want[gid] = true
	}
	deadline := time.After(5 * time.Second)
	for len(want) > 0 {
		select {
		case gid := <-got:
			delete(want, gid)
		case <-deadline:
			t.Fatalf("%d notifications never delivered", len(want))
		}
	}
}

// doctorBloodPolicy is the canonical disclosure policy of the suite.
func doctorBloodPolicy() *policy.Policy {
	return &policy.Policy{
		Producer: "hospital", Actor: "family-doctor", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "hemoglobin"},
	}
}
