// Package transport provides the web-service binding of the CSS platform
// (the paper's SOA layer: "involved entities exchange the data through
// Web Service invocation", §3). All operations of the data controller and
// of the local cooperation gateways are exposed as HTTP endpoints with
// XML message bodies; notifications reach subscribers through callback
// POSTs, preserving the asynchronous event-driven interaction over the
// synchronous substrate.
//
// Faults carry a machine-readable code so the client can reconstruct the
// platform's sentinel errors across the wire (errors.Is keeps working
// remotely).
package transport

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/enforcer"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/replication"
	"repro/internal/resilience"
)

// Fault codes carried by error responses.
const (
	CodeBadRequest          = "bad-request"
	CodeNotProducer         = "not-producer"
	CodeNotConsumer         = "not-consumer"
	CodeUnknownClass        = "unknown-class"
	CodeNotClassOwner       = "not-class-owner"
	CodeSubscriptionDeny    = "subscription-denied"
	CodeConsentDeny         = "consent-denied"
	CodeAccessDenied        = "access-denied"
	CodeUnknownEvent        = "unknown-event"
	CodeNotFound            = "not-found"
	CodeSourceUnavailable   = "source-unavailable"
	CodeUnknownSubscription = "unknown-subscription"
	CodeOverloaded          = "overloaded"
	CodeTimeout             = "timeout"
	CodeCancelled           = "cancelled"
	CodeInternal            = "internal"
	// CodeWrongShard (HTTP 421): the request hit a shard that does not
	// own the person key; the fault names the owner and map version so
	// the client refreshes its shard map and retries there. Permanent
	// for the generic retrier — only the shard-aware client follows it.
	CodeWrongShard = "wrong-shard"
	// CodeResharding (HTTP 503 + Retry-After): the key range is frozen
	// mid-handoff; transient by construction.
	CodeResharding = "resharding"
	// CodeNotPrimary (HTTP 421): a write reached a read replica (or a
	// deposed primary refusing writes after failover). The fault names
	// the shard and the answering node's map version so the client
	// refreshes its shard map and retries at the current primary.
	// Permanent for the generic retrier — only the shard-aware client
	// follows it.
	CodeNotPrimary = "not-primary"
)

// StatusClientClosedRequest is the de-facto standard status (nginx's
// 499) for a request abandoned by its client: no standard 4xx fits, and
// a 5xx would page operators for the client's own hang-up.
const StatusClientClosedRequest = 499

// ErrUnknownSubscription reports a liveness probe for a subscription id
// the controller does not hold (it restarted, or the id was never
// assigned). Consumers react by re-subscribing.
var ErrUnknownSubscription = errors.New("transport: unknown subscription")

// ErrOverloaded reports a request shed by the server's admission
// controller (HTTP 429). It is transient by construction — the fault
// carries a Retry-After hint the client retriers honor.
var ErrOverloaded = errors.New("transport: server overloaded")

// Fault is the XML error payload. Wrong-shard faults additionally
// carry the owning shard and the map version that assigned it, so a
// routing client learns the redirect without a second round-trip.
type Fault struct {
	XMLName xml.Name `xml:"fault"`
	Code    string   `xml:"code,attr"`
	// Shard is the decimal id of the shard that owns the key (only on
	// wrong-shard faults; empty otherwise).
	Shard string `xml:"shard,attr,omitempty"`
	// MapVersion is the shard-map version the redirect was computed
	// under (only on wrong-shard faults).
	MapVersion uint64 `xml:"mapVersion,attr,omitempty"`
	Message    string `xml:",chardata"`
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("transport: fault %s: %s", f.Code, f.Message)
}

// faultFor maps platform errors to (code, http status).
func faultFor(err error) (string, int) {
	switch {
	case errors.Is(err, core.ErrNotProducer):
		return CodeNotProducer, http.StatusForbidden
	case errors.Is(err, core.ErrNotConsumer):
		return CodeNotConsumer, http.StatusForbidden
	case errors.Is(err, core.ErrUnknownClass):
		return CodeUnknownClass, http.StatusNotFound
	case errors.Is(err, core.ErrNotClassOwner):
		return CodeNotClassOwner, http.StatusForbidden
	case errors.Is(err, core.ErrSubscriptionDeny):
		return CodeSubscriptionDeny, http.StatusForbidden
	case errors.Is(err, core.ErrConsentDeny):
		return CodeConsentDeny, http.StatusForbidden
	case errors.Is(err, enforcer.ErrDenied):
		return CodeAccessDenied, http.StatusForbidden
	case errors.Is(err, enforcer.ErrUnknownEvent):
		return CodeUnknownEvent, http.StatusNotFound
	case errors.Is(err, gateway.ErrNotFound):
		return CodeNotFound, http.StatusNotFound
	case errors.Is(err, enforcer.ErrSourceUnavailable):
		return CodeSourceUnavailable, http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownSubscription):
		return CodeUnknownSubscription, http.StatusNotFound
	case errors.Is(err, cluster.ErrWrongShard):
		// 421 Misdirected Request: the canonical "this server is not
		// able to produce a response for this request" status.
		return CodeWrongShard, http.StatusMisdirectedRequest
	case errors.Is(err, cluster.ErrResharding):
		return CodeResharding, http.StatusServiceUnavailable
	case errors.Is(err, cluster.ErrNotPrimary):
		// Same 421 as wrong-shard: this server cannot produce the
		// response, but another member of the cluster can.
		return CodeNotPrimary, http.StatusMisdirectedRequest
	case errors.Is(err, replication.ErrFenced):
		// A deposed primary whose followers deny its epoch: it is no
		// longer the primary, whatever it believes — steer the client to
		// refresh its map and find the promoted node.
		return CodeNotPrimary, http.StatusMisdirectedRequest
	case errors.Is(err, core.ErrNotReplica):
		// Promote on a node already primary: the transition already
		// happened, a conflict rather than a server failure.
		return CodeBadRequest, http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		// The per-endpoint deadline expired mid-flow: a gateway timeout,
		// retryable (504 is transient for the client's retrier).
		return CodeTimeout, http.StatusGatewayTimeout
	case errors.Is(err, core.ErrCancelled), errors.Is(err, context.Canceled):
		return CodeCancelled, StatusClientClosedRequest
	default:
		return CodeInternal, http.StatusInternalServerError
	}
}

// errorFor reconstructs the sentinel error for a fault code, so remote
// callers observe the same error identities as local ones.
func errorFor(f *Fault) error {
	var base error
	switch f.Code {
	case CodeUnauthorized:
		base = ErrUnauthorized
	case CodeNotProducer:
		base = core.ErrNotProducer
	case CodeNotConsumer:
		base = core.ErrNotConsumer
	case CodeUnknownClass:
		base = core.ErrUnknownClass
	case CodeNotClassOwner:
		base = core.ErrNotClassOwner
	case CodeSubscriptionDeny:
		base = core.ErrSubscriptionDeny
	case CodeConsentDeny:
		base = core.ErrConsentDeny
	case CodeAccessDenied:
		base = enforcer.ErrDenied
	case CodeUnknownEvent:
		base = enforcer.ErrUnknownEvent
	case CodeNotFound:
		base = gateway.ErrNotFound
	case CodeSourceUnavailable:
		base = enforcer.ErrSourceUnavailable
	case CodeUnknownSubscription:
		base = ErrUnknownSubscription
	case CodeOverloaded:
		base = ErrOverloaded
	case CodeTimeout:
		base = context.DeadlineExceeded
	case CodeCancelled:
		base = core.ErrCancelled
	case CodeResharding:
		base = cluster.ErrResharding
	case CodeWrongShard:
		// Rebuild the typed redirect so errors.As recovers the owner
		// hint client-side exactly as a local caller would.
		owner, err := strconv.Atoi(f.Shard)
		if err != nil {
			owner = -1 // malformed hint: still ErrWrongShard, no owner
		}
		base = &cluster.WrongShardError{Owner: cluster.ShardID(owner), Version: f.MapVersion}
	case CodeNotPrimary:
		// Rebuild the typed redirect; a missing shard attribute (an
		// unsharded replica answered) leaves the zero-valued hint.
		shard, _ := strconv.Atoi(f.Shard)
		base = &cluster.NotPrimaryError{Shard: cluster.ShardID(shard), Version: f.MapVersion}
	default:
		return f
	}
	return fmt.Errorf("%w (remote: %s)", base, f.Message)
}

// faultOf renders err as a wire fault with its HTTP status, populating
// the shard redirect attributes when the error carries them.
func faultOf(err error) (*Fault, int) {
	code, status := faultFor(err)
	f := &Fault{Code: code, Message: err.Error()}
	var wse *cluster.WrongShardError
	if errors.As(err, &wse) {
		f.Shard = strconv.Itoa(int(wse.Owner))
		f.MapVersion = wse.Version
	}
	var npe *cluster.NotPrimaryError
	if errors.As(err, &npe) {
		f.Shard = strconv.Itoa(int(npe.Shard))
		f.MapVersion = npe.Version
	}
	return f, status
}

// writeFault sends an error response. Unavailability faults (503) carry
// a Retry-After hint so well-behaved clients pace their retries.
func writeFault(w http.ResponseWriter, err error) {
	f, status := faultOf(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeXML(w, status, f)
}

// writeXML serializes v as the response body.
func writeXML(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	w.WriteHeader(status)
	enc := xml.NewEncoder(w)
	enc.Encode(v) // nothing sensible to do with a write error here
}

// readBody decodes an XML request body into v, bounding its size.
func readBody(r *http.Request, v any) error {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("transport: read body: %w", err)
	}
	if err := xml.Unmarshal(data, v); err != nil {
		return fmt.Errorf("transport: decode body: %w", err)
	}
	return nil
}

const maxBodyBytes = 4 << 20

// drainClose drains any unread remainder of an HTTP response body and
// closes it. Draining (rather than just closing) lets net/http return
// the connection to the keep-alive pool instead of tearing it down —
// error paths must not leak or churn connections.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, maxBodyBytes))
	body.Close()
}

// transientStatus reports whether an HTTP status indicates a condition
// worth retrying (server-side failures and throttling).
func transientStatus(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// retryAfterHeader parses a Retry-After seconds value, zero if absent.
func retryAfterHeader(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// readResult consumes an HTTP response and returns the raw body on 2xx.
// On other statuses it reconstructs the platform error from the fault
// payload, and classifies it for the retrier: 5xx and 429 are marked
// transient (with the server's Retry-After hint), as are read failures
// mid-body — a truncated response says nothing about the next attempt.
// 4xx faults stay permanent.
func readResult(resp *http.Response) ([]byte, error) {
	defer drainClose(resp.Body)
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, resilience.MarkRetryable(fmt.Errorf("transport: read response: %w", err))
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return data, nil
	}
	var rerr error
	var f Fault
	var decErr error
	if event.IsBinaryFrame(data) {
		decErr = decodeFaultFrame(data, &f)
	} else {
		decErr = xml.Unmarshal(data, &f)
	}
	if decErr == nil && f.Code != "" {
		rerr = errorFor(&f)
	} else {
		rerr = fmt.Errorf("transport: http %d: %s", resp.StatusCode, data)
	}
	if transientStatus(resp.StatusCode) {
		return nil, resilience.MarkRetryableAfter(rerr, retryAfterHeader(resp))
	}
	return nil, rerr
}

// decodeResponse reads an HTTP response: on 2xx it decodes into v (when v
// is non-nil); otherwise it parses the fault and reconstructs the error.
// Decode failures of a 2xx body are marked transient — the dominant
// cause is a truncated or garbled transfer, not a protocol mismatch.
func decodeResponse(resp *http.Response, v any) error {
	data, err := readResult(resp)
	if err != nil {
		return err
	}
	if v == nil {
		return nil
	}
	// Detail payloads may arrive in the negotiated binary framing (the
	// remote gateway asks for it via Accept); everything else stays XML.
	if d, ok := v.(*event.Detail); ok && event.IsBinaryFrame(data) {
		dec, derr := event.Binary.DecodeDetail(data)
		if derr != nil {
			return resilience.MarkRetryable(fmt.Errorf("transport: decode response: %w", derr))
		}
		*d = *dec
		return nil
	}
	if err := xml.Unmarshal(data, v); err != nil {
		return resilience.MarkRetryable(fmt.Errorf("transport: decode response: %w", err))
	}
	return nil
}

// Wire messages shared by client and server.

type publishResponse struct {
	XMLName xml.Name       `xml:"publishResponse"`
	EventID event.GlobalID `xml:"eventId"`
}

type subscribeRequest struct {
	XMLName  xml.Name      `xml:"subscribeRequest"`
	Actor    event.Actor   `xml:"actor"`
	Class    event.ClassID `xml:"class"`
	Callback string        `xml:"callback"`
	// Codec names the format the subscriber wants its callback POSTs
	// encoded in ("" or "xml" for the default, "binary" for the compact
	// framing). Negotiated once at subscription time, so every delivery
	// skips per-message negotiation.
	Codec string `xml:"codec,omitempty"`
}

type subscribeResponse struct {
	XMLName xml.Name `xml:"subscribeResponse"`
	ID      string   `xml:"id"`
}

type inquiryRequest struct {
	XMLName  xml.Name         `xml:"inquiryRequest"`
	Actor    event.Actor      `xml:"actor"`
	PersonID string           `xml:"personId,omitempty"`
	Class    event.ClassID    `xml:"class,omitempty"`
	Producer event.ProducerID `xml:"producer,omitempty"`
	From     string           `xml:"from,omitempty"`
	To       string           `xml:"to,omitempty"`
	Limit    int              `xml:"limit,omitempty"`
}

type inquiryResponse struct {
	XMLName       xml.Name `xml:"inquiryResponse"`
	Notifications []string `xml:"notification"` // nested XML documents
}

type getResponseRequest struct {
	XMLName xml.Name          `xml:"getResponseRequest"`
	Source  event.SourceID    `xml:"sourceId"`
	Fields  []event.FieldName `xml:"fields>field"`
}

// ReplStatus is the replication snapshot served at GET /ws/replstatus:
// the node's role, its fencing epoch, and — on a primary with an
// attached shipper — per-follower connectivity and lag. Operators and
// the failover runbook read it to pick the most caught-up replica.
type ReplStatus struct {
	XMLName xml.Name `xml:"replication"`
	// Role is "primary" or "replica".
	Role string `xml:"role,attr"`
	// Epoch is the fencing epoch this node last adopted or was
	// promoted at (zero until either happens).
	Epoch uint64 `xml:"epoch,attr"`
	// Quorum reports whether publishes wait for follower fsyncs.
	Quorum bool `xml:"quorum,attr,omitempty"`
	// Fenced reports a primary that has been denied by a follower at a
	// higher epoch — it must stop accepting writes.
	Fenced bool `xml:"fenced,attr,omitempty"`
	// Election is the self-healing manager's state ("watching",
	// "campaigning", "leader") when one runs on this node; empty under
	// manual-failover-only deployments.
	Election string `xml:"election,attr,omitempty"`
	// Promised is the highest epoch this node has durably promised — by
	// granting a vote or claiming an epoch for its own campaign.
	Promised uint64 `xml:"promised,attr,omitempty"`
	// Phi is the failure detector's current suspicion level for the
	// primary (0 while this node is itself the primary).
	Phi       float64        `xml:"phi,attr,omitempty"`
	Followers []ReplFollower `xml:"follower"`
}

// ReplFollower is one follower's shipping state within a ReplStatus.
type ReplFollower struct {
	Addr      string `xml:"addr,attr"`
	Connected bool   `xml:"connected,attr"`
	Fenced    bool   `xml:"fenced,attr,omitempty"`
	LagBytes  int64  `xml:"lagBytes,attr"`
}

// promoteRequest asks a replica to assume the primary role at the
// given fencing epoch (POST /ws/promote).
type promoteRequest struct {
	XMLName xml.Name `xml:"promote"`
	Epoch   uint64   `xml:"epoch,attr"`
}
