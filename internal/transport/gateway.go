package transport

import (
	"bytes"
	"context"
	"encoding/xml"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/enforcer"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/identity"
	"repro/internal/overload"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// GatewayServer exposes a local cooperation gateway as a web service so
// the data controller can reach it for Algorithm 2:
//
//	POST /gw/get-response — getResponseRequest → privacy-aware detail XML
//	GET  /metrics         — telemetry registry, Prometheus text format
//	GET  /healthz         — liveness probe
//
// Requests pass the telemetry middleware (per-route latency/status
// metrics, X-Trace-Id propagation), so a controller-side detail request
// and the gateway-side filtering it triggered share one trace ID.
//
// Only the filtering endpoint is remote; detail persistence stays a local
// concern of the producer's source system.
type GatewayServer struct {
	gw      *gateway.Gateway
	mux     *http.ServeMux
	handler http.Handler
	reg     *telemetry.Registry
	tracer  *telemetry.Tracer
	// auth, when set, restricts the endpoints: get-response to bearers
	// covering controllerActor (the data controller), persist to bearers
	// covering the owning producer.
	auth            *identity.Authority
	controllerActor event.Actor
	// publisher, when set via EnablePublishRelay, backs POST /gw/publish:
	// the producer-side durable outbox toward the data controller.
	publisher *QueuedPublisher
	// gate, when set via SetAdmission, sheds /gw requests beyond
	// capacity and refuses new work while draining.
	gate *overload.Gate
	// healthMu guards healthDetails (registered at setup, read per probe).
	healthMu sync.Mutex
	// healthDetails contribute key/value lines to /healthz.
	healthDetails []func() map[string]string
}

// AddHealthDetail registers a /healthz detail contributor (outbox depth,
// breaker states).
func (s *GatewayServer) AddHealthDetail(fn func() map[string]string) *GatewayServer {
	s.healthMu.Lock()
	s.healthDetails = append(s.healthDetails, fn)
	s.healthMu.Unlock()
	return s
}

// healthDetail merges the registered contributors.
func (s *GatewayServer) healthDetail() map[string]string {
	s.healthMu.Lock()
	fns := make([]func() map[string]string, len(s.healthDetails))
	copy(fns, s.healthDetails)
	s.healthMu.Unlock()
	out := make(map[string]string)
	for _, fn := range fns {
		for k, v := range fn() {
			out[k] = v
		}
	}
	return out
}

// EnablePublishRelay mounts POST /gw/publish backed by qp: the source
// system hands its notification to the *local* gateway, which forwards
// it to the data controller — or parks it durably when the controller
// is down (202 Accepted, empty event id). Call during setup, before
// serving. The outbox depth joins /healthz automatically.
func (s *GatewayServer) EnablePublishRelay(qp *QueuedPublisher) *GatewayServer {
	s.publisher = qp
	s.AddHealthDetail(func() map[string]string {
		return map[string]string{
			"outbox_depth": strconv.Itoa(qp.Depth()),
			"outbox_dead":  strconv.Itoa(qp.Dead()),
		}
	})
	return s
}

// RequireAuth restricts the gateway's endpoints: only tokens covering
// controllerActor may retrieve filtered details (the data controller is
// the single authorized caller of Algorithm 2), and only tokens covering
// the owning producer may persist. Without it the gateway trusts its
// network perimeter, which is only acceptable in single-process
// deployments.
func (s *GatewayServer) RequireAuth(a *identity.Authority, controllerActor event.Actor) *GatewayServer {
	s.auth = a
	s.controllerActor = controllerActor
	return s
}

// authorize verifies the bearer token covers the required actor.
func (s *GatewayServer) authorize(r *http.Request, required event.Actor) error {
	if s.auth == nil {
		return nil
	}
	header := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(header, prefix) {
		return fmt.Errorf("%w: missing bearer token", ErrUnauthorized)
	}
	claims, err := s.auth.Verify(strings.TrimPrefix(header, prefix), time.Now())
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnauthorized, err)
	}
	if !claims.Covers(required) {
		return fmt.Errorf("%w: token for %s cannot act as %s", ErrUnauthorized, claims.Actor, required)
	}
	return nil
}

// NewGatewayServer wraps a gateway, recording telemetry into a private
// registry (Metrics exposes it; the daemon shares telemetry.Default()
// by constructing with NewGatewayServerWithRegistry).
func NewGatewayServer(gw *gateway.Gateway) *GatewayServer {
	return NewGatewayServerWithRegistry(gw, telemetry.NewRegistry())
}

// NewGatewayServerWithRegistry wraps a gateway recording into reg. The
// gateway's decoded-detail cache reports into the registry as
// css_cache_events_total{cache,result} (last wiring wins if the gateway
// is also attached to an in-process controller).
func NewGatewayServerWithRegistry(gw *gateway.Gateway, reg *telemetry.Registry) *GatewayServer {
	cacheEvents := reg.Counter("css_cache_events_total",
		"Read-path cache lookups, by cache and result.", "cache", "result")
	gw.SetCacheObserver(func(cache string, hit bool) {
		if hit {
			cacheEvents.Inc(cache, "hit")
		} else {
			cacheEvents.Inc(cache, "miss")
		}
	})
	s := &GatewayServer{gw: gw, mux: http.NewServeMux(), reg: reg,
		tracer: telemetry.NewTracer(0)}
	s.mux.HandleFunc("POST /gw/get-response", s.handleGetResponse)
	s.mux.HandleFunc("POST /gw/persist", s.handlePersist)
	s.mux.HandleFunc("POST /gw/publish", s.handlePublishRelay)
	s.mux.Handle("GET /metrics", telemetry.MetricsHandler(reg))
	s.mux.Handle("GET /healthz", telemetry.HealthzDetailHandler(nil, s.healthDetail))
	s.mux.Handle("GET /debug/spans", telemetry.SpansHandler(s.tracer.Spans(), "gateway"))
	s.handler = telemetry.TracingMiddleware(telemetry.NewHTTPMetrics(reg, "css_gateway"), s.tracer,
		withGate(func() *overload.Gate { return s.gate }, gwRouteClassFor, s.mux))
	return s
}

// Tracer exposes the gateway server's tracer so daemons can attach a
// span exporter.
func (s *GatewayServer) Tracer() *telemetry.Tracer { return s.tracer }

// SetSLO mounts the latency-objective report at GET /slo and adds a
// one-line burn-rate summary to /healthz. Call before serving.
func (s *GatewayServer) SetSLO(slo *telemetry.SLO) *GatewayServer {
	s.mux.Handle("GET /slo", telemetry.SLOHandler(slo))
	s.AddHealthDetail(func() map[string]string {
		return map[string]string{"slo": slo.HealthDetail()}
	})
	return s
}

// SetAdmission installs an overload gate in front of the /gw routes
// (shed requests answer 429 + Retry-After; /metrics and /healthz stay
// exempt). Call during setup, before serving. A nil gate disables
// admission control.
func (s *GatewayServer) SetAdmission(g *overload.Gate) *GatewayServer {
	s.gate = g
	return s
}

// Metrics exposes the server's telemetry registry.
func (s *GatewayServer) Metrics() *telemetry.Registry { return s.reg }

// handlePersist lets the producer's source system hand a full detail
// message to the gateway over HTTP. In a deployment this endpoint faces
// the source system only, never the platform.
func (s *GatewayServer) handlePersist(w http.ResponseWriter, r *http.Request) {
	if err := s.authorize(r, event.Actor(s.gw.Producer())); err != nil {
		writeAuthFault(w, err)
		return
	}
	var d event.Detail
	if err := readBody(r, &d); err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	if err := s.gw.Persist(&d); err != nil {
		writeFault(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePublishRelay accepts a notification from the source system and
// forwards it to the data controller through the durable outbox: 200
// with the assigned event id when the controller answered directly, 202
// with an empty id when the notification was parked for later delivery.
// Only the owning producer's bearer may publish through its gateway.
func (s *GatewayServer) handlePublishRelay(w http.ResponseWriter, r *http.Request) {
	if s.publisher == nil {
		writeXML(w, http.StatusNotFound, &Fault{Code: CodeNotFound, Message: "publish relay not enabled"})
		return
	}
	if err := s.authorize(r, event.Actor(s.gw.Producer())); err != nil {
		writeAuthFault(w, err)
		return
	}
	var n event.Notification
	if err := readBody(r, &n); err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	if n.Trace == "" {
		// Stamp the relay request's trace onto the notification before the
		// outbox may park it: the parked redelivery runs under a background
		// context, so the trace must travel on the notification itself for
		// the flow to stay stitched end to end.
		n.Trace = telemetry.TraceFrom(r.Context())
	}
	gid, queued, err := s.publisher.Publish(r.Context(), &n)
	if err != nil {
		writeFault(w, err)
		return
	}
	status := http.StatusOK
	if queued {
		status = http.StatusAccepted
	}
	writeXML(w, status, &publishResponse{EventID: gid})
}

// ServeHTTP implements http.Handler.
func (s *GatewayServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func (s *GatewayServer) handleGetResponse(w http.ResponseWriter, r *http.Request) {
	if err := s.authorize(r, s.controllerActor); err != nil {
		writeAuthFault(w, err)
		return
	}
	var req getResponseRequest
	if err := readBody(r, &req); err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	d, err := s.gw.GetResponse(req.Source, req.Fields)
	if err != nil {
		writeFault(w, err)
		return
	}
	// Detail payloads honor the controller's Accept preference: the
	// request stays XML (it is tiny), the response — the bulky part of
	// Algorithm 2 — travels in the negotiated codec.
	resp := responseCodec(r, event.XML)
	out, err := resp.EncodeDetail(d)
	if err != nil {
		writeFault(w, err)
		return
	}
	writeBody(w, http.StatusOK, respContentType(resp), out)
}

// RemoteGateway is the controller-side client of a GatewayServer. It
// implements enforcer.DetailSource, so a remote producer plugs into the
// enforcement pipeline exactly like an in-process gateway.
//
// Concurrent GetResponse calls for the same (source, fieldset) coalesce
// into one HTTP round-trip: followers wait on the in-flight leader and
// receive a clone of its response. Nothing is retained once the flight
// completes — the client never caches details (controller-side storage
// of event details is prohibited; see the E13 ablation).
//
// With WithRetrier / WithBreakerGroup, fetches retry transient failures
// and the gateway is guarded by a circuit breaker named after its base
// URL. When the gateway stays unreachable, errors satisfy
// errors.Is(err, enforcer.ErrSourceUnavailable), so the controller
// audits the outcome as "unavailable" — never as a policy denial.
type RemoteGateway struct {
	base     string
	http     *http.Client
	token    string
	codec    event.Codec
	timeout  time.Duration
	retrier  *resilience.Retrier
	breakers *resilience.Group
	flights  *cache.Group[string, *event.Detail]
}

// WithToken returns a copy of the remote gateway client that presents
// the bearer token (the controller's identity) on every call. The copy
// gets its own coalescing group, so calls never share a flight (and
// hence a response) across identities. Retry policy and breakers stay
// shared — the endpoint's health is identity-independent.
func (g *RemoteGateway) WithToken(token string) *RemoteGateway {
	cp := *g
	cp.token = token
	cp.flights = &cache.Group[string, *event.Detail]{}
	return &cp
}

// postXML sends an XML body with the optional bearer token and trace ID.
// Connection-level failures are marked transient for the retrier.
func (g *RemoteGateway) postXML(ctx context.Context, path, trace string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("transport: gateway request: %w", err)
	}
	req.Header.Set("Content-Type", "application/xml")
	// The Accept preference asks the gateway for detail payloads in the
	// negotiated codec; responses are sniffed, so either format decodes.
	req.Header.Set("Accept", g.codec.ContentType())
	if g.token != "" {
		req.Header.Set("Authorization", "Bearer "+g.token)
	}
	if trace == "" {
		trace = telemetry.TraceFrom(ctx)
	}
	if trace != "" {
		req.Header.Set(telemetry.TraceHeader, trace)
		// Carry the caller's span (the enforcer's gateway.fetch, or the
		// retrier's attempt span) so the gateway-side server span parents
		// under it and the cross-process tree stays connected.
		req.Header.Set(telemetry.TraceparentHeader,
			telemetry.FormatTraceparent(trace, telemetry.SpanIDFrom(ctx)))
	}
	resp, err := g.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("transport: gateway post: %w", err)
		}
		return nil, resilience.MarkRetryable(fmt.Errorf("transport: gateway post: %w", err))
	}
	return resp, nil
}

// NewRemoteGateway creates a client for the gateway at base. Pass
// WithRetrier / WithBreakerGroup to make the controller→gateway hop
// fault-tolerant, WithTimeout to bound each attempt.
func NewRemoteGateway(base string, httpClient *http.Client, opts ...Option) *RemoteGateway {
	o := applyOptions(opts)
	if httpClient == nil {
		httpClient = &http.Client{Timeout: o.timeout, Transport: NewTunedTransport()}
	}
	return &RemoteGateway{
		base:     base,
		http:     httpClient,
		codec:    o.codec,
		timeout:  o.timeout,
		retrier:  o.retrier,
		breakers: o.breakers,
		flights:  &cache.Group[string, *event.Detail]{},
	}
}

// callGateway runs one gateway operation under the breaker and retry
// policy. The breaker is named after the gateway base URL: one circuit
// per producer gateway, surfaced on /healthz.
func (g *RemoteGateway) callGateway(ctx context.Context, path, trace string, body []byte, out any) error {
	return g.retrier.Do(ctx, g.base, func(ctx context.Context) error {
		release, err := acquire(g.breakers, g.base)
		if err != nil {
			return err
		}
		err = func() error {
			resp, err := g.postXML(ctx, path, trace, body)
			if err != nil {
				return err
			}
			return decodeResponse(resp, out)
		}()
		release(breakerFailure(err))
		return err
	})
}

// Persist ships a full detail message to the gateway's persist endpoint
// (source-system side).
func (g *RemoteGateway) Persist(ctx context.Context, d *event.Detail) error {
	body, err := event.EncodeDetail(d)
	if err != nil {
		return err
	}
	return g.callGateway(ctx, "/gw/persist", "", body, nil)
}

// GetResponse implements enforcer.DetailSource over HTTP.
func (g *RemoteGateway) GetResponse(src event.SourceID, fields []event.FieldName) (*event.Detail, error) {
	return g.GetResponseTraced("", src, fields)
}

// GetResponseTraced implements enforcer.TracedDetailSource: the flow's
// trace ID crosses the process boundary as the X-Trace-Id header, so the
// gateway-side metrics and logs of the fetch correlate with the
// controller-side detail request. Identical concurrent calls share one
// round-trip (and the leader's trace); followers get their own clone.
//
// The DetailSource interface carries no context, so each fetch runs
// under its own deadline (the configured per-attempt timeout times the
// retry allowance). A gateway that stays unreachable yields an error
// satisfying errors.Is(err, enforcer.ErrSourceUnavailable).
func (g *RemoteGateway) GetResponseTraced(trace string, src event.SourceID, fields []event.FieldName) (*event.Detail, error) {
	return g.GetResponseContext(context.Background(), trace, src, fields)
}

// GetResponseContext implements enforcer.ContextDetailSource: the
// consumer's deadline rides the fetch end to end — it cancels the HTTP
// round-trip (and any retry sleeps) the moment the caller gives up.
// Identical concurrent calls still share one round-trip under the
// leader's context; followers get their own clone.
func (g *RemoteGateway) GetResponseContext(ctx context.Context, trace string, src event.SourceID, fields []event.FieldName) (*event.Detail, error) {
	d, shared, err := g.flights.Do(fetchKey(src, fields), func() (*event.Detail, error) {
		return g.getResponse(ctx, trace, src, fields)
	})
	if err != nil {
		return nil, err
	}
	if shared {
		d = d.Clone()
	}
	return d, nil
}

// getResponse performs the actual HTTP round-trip of Algorithm 2.
func (g *RemoteGateway) getResponse(ctx context.Context, trace string, src event.SourceID, fields []event.FieldName) (*event.Detail, error) {
	body, err := encodeXML(&getResponseRequest{Source: src, Fields: fields})
	if err != nil {
		return nil, err
	}
	var d event.Detail
	if err := g.callGateway(ctx, "/gw/get-response", trace, body, &d); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			// The caller's deadline (or hang-up) cut the fetch short: that
			// is the caller's condition, not the producer's unavailability.
			return nil, cerr
		}
		if resilience.Retryable(err) {
			// The producer side never answered (or answered 5xx): report
			// unavailability, keeping the cause in the chain.
			return nil, fmt.Errorf("%w: %w", enforcer.ErrSourceUnavailable, err)
		}
		return nil, err
	}
	return &d, nil
}

// fetchKey canonicalizes a fetch for coalescing: source id plus the
// sorted field set, separated by characters field names cannot contain.
// Exact string keys (not hashes) — two different fetches must never
// collide into one shared response.
func fetchKey(src event.SourceID, fields []event.FieldName) string {
	names := make([]string, len(fields))
	for i, f := range fields {
		names[i] = string(f)
	}
	sort.Strings(names)
	return string(src) + "\x1f" + strings.Join(names, "\x1e")
}

// encodeXML marshals v, reporting marshalling problems with context.
func encodeXML(v any) ([]byte, error) {
	data, err := xml.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	return data, nil
}

// decodeFault tries to parse a fault body.
func decodeFault(data []byte, f *Fault) error {
	return xml.Unmarshal(data, f)
}
