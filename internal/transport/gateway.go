package transport

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/identity"
	"repro/internal/telemetry"
)

// GatewayServer exposes a local cooperation gateway as a web service so
// the data controller can reach it for Algorithm 2:
//
//	POST /gw/get-response — getResponseRequest → privacy-aware detail XML
//	GET  /metrics         — telemetry registry, Prometheus text format
//	GET  /healthz         — liveness probe
//
// Requests pass the telemetry middleware (per-route latency/status
// metrics, X-Trace-Id propagation), so a controller-side detail request
// and the gateway-side filtering it triggered share one trace ID.
//
// Only the filtering endpoint is remote; detail persistence stays a local
// concern of the producer's source system.
type GatewayServer struct {
	gw      *gateway.Gateway
	mux     *http.ServeMux
	handler http.Handler
	reg     *telemetry.Registry
	// auth, when set, restricts the endpoints: get-response to bearers
	// covering controllerActor (the data controller), persist to bearers
	// covering the owning producer.
	auth            *identity.Authority
	controllerActor event.Actor
}

// RequireAuth restricts the gateway's endpoints: only tokens covering
// controllerActor may retrieve filtered details (the data controller is
// the single authorized caller of Algorithm 2), and only tokens covering
// the owning producer may persist. Without it the gateway trusts its
// network perimeter, which is only acceptable in single-process
// deployments.
func (s *GatewayServer) RequireAuth(a *identity.Authority, controllerActor event.Actor) *GatewayServer {
	s.auth = a
	s.controllerActor = controllerActor
	return s
}

// authorize verifies the bearer token covers the required actor.
func (s *GatewayServer) authorize(r *http.Request, required event.Actor) error {
	if s.auth == nil {
		return nil
	}
	header := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(header, prefix) {
		return fmt.Errorf("%w: missing bearer token", ErrUnauthorized)
	}
	claims, err := s.auth.Verify(strings.TrimPrefix(header, prefix), time.Now())
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnauthorized, err)
	}
	if !claims.Covers(required) {
		return fmt.Errorf("%w: token for %s cannot act as %s", ErrUnauthorized, claims.Actor, required)
	}
	return nil
}

// NewGatewayServer wraps a gateway, recording telemetry into a private
// registry (Metrics exposes it; the daemon shares telemetry.Default()
// by constructing with NewGatewayServerWithRegistry).
func NewGatewayServer(gw *gateway.Gateway) *GatewayServer {
	return NewGatewayServerWithRegistry(gw, telemetry.NewRegistry())
}

// NewGatewayServerWithRegistry wraps a gateway recording into reg. The
// gateway's decoded-detail cache reports into the registry as
// css_cache_events_total{cache,result} (last wiring wins if the gateway
// is also attached to an in-process controller).
func NewGatewayServerWithRegistry(gw *gateway.Gateway, reg *telemetry.Registry) *GatewayServer {
	cacheEvents := reg.Counter("css_cache_events_total",
		"Read-path cache lookups, by cache and result.", "cache", "result")
	gw.SetCacheObserver(func(cache string, hit bool) {
		if hit {
			cacheEvents.Inc(cache, "hit")
		} else {
			cacheEvents.Inc(cache, "miss")
		}
	})
	s := &GatewayServer{gw: gw, mux: http.NewServeMux(), reg: reg}
	s.mux.HandleFunc("POST /gw/get-response", s.handleGetResponse)
	s.mux.HandleFunc("POST /gw/persist", s.handlePersist)
	s.mux.Handle("GET /metrics", telemetry.MetricsHandler(reg))
	s.mux.Handle("GET /healthz", telemetry.HealthzHandler(nil))
	s.handler = telemetry.Middleware(telemetry.NewHTTPMetrics(reg, "css_gateway"), s.mux)
	return s
}

// Metrics exposes the server's telemetry registry.
func (s *GatewayServer) Metrics() *telemetry.Registry { return s.reg }

// handlePersist lets the producer's source system hand a full detail
// message to the gateway over HTTP. In a deployment this endpoint faces
// the source system only, never the platform.
func (s *GatewayServer) handlePersist(w http.ResponseWriter, r *http.Request) {
	if err := s.authorize(r, event.Actor(s.gw.Producer())); err != nil {
		writeAuthFault(w, err)
		return
	}
	var d event.Detail
	if err := readBody(r, &d); err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	if err := s.gw.Persist(&d); err != nil {
		writeFault(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ServeHTTP implements http.Handler.
func (s *GatewayServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func (s *GatewayServer) handleGetResponse(w http.ResponseWriter, r *http.Request) {
	if err := s.authorize(r, s.controllerActor); err != nil {
		writeAuthFault(w, err)
		return
	}
	var req getResponseRequest
	if err := readBody(r, &req); err != nil {
		writeXML(w, http.StatusBadRequest, &Fault{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	d, err := s.gw.GetResponse(req.Source, req.Fields)
	if err != nil {
		writeFault(w, err)
		return
	}
	writeXML(w, http.StatusOK, d)
}

// RemoteGateway is the controller-side client of a GatewayServer. It
// implements enforcer.DetailSource, so a remote producer plugs into the
// enforcement pipeline exactly like an in-process gateway.
//
// Concurrent GetResponse calls for the same (source, fieldset) coalesce
// into one HTTP round-trip: followers wait on the in-flight leader and
// receive a clone of its response. Nothing is retained once the flight
// completes — the client never caches details (controller-side storage
// of event details is prohibited; see the E13 ablation).
type RemoteGateway struct {
	base    string
	http    *http.Client
	token   string
	flights *cache.Group[string, *event.Detail]
}

// WithToken returns a copy of the remote gateway client that presents
// the bearer token (the controller's identity) on every call. The copy
// gets its own coalescing group, so calls never share a flight (and
// hence a response) across identities.
func (g *RemoteGateway) WithToken(token string) *RemoteGateway {
	cp := *g
	cp.token = token
	cp.flights = &cache.Group[string, *event.Detail]{}
	return &cp
}

// postXML sends an XML body with the optional bearer token and trace ID.
func (g *RemoteGateway) postXML(path, trace string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, g.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("transport: gateway request: %w", err)
	}
	req.Header.Set("Content-Type", "application/xml")
	if g.token != "" {
		req.Header.Set("Authorization", "Bearer "+g.token)
	}
	if trace != "" {
		req.Header.Set(telemetry.TraceHeader, trace)
	}
	resp, err := g.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("transport: gateway post: %w", err)
	}
	return resp, nil
}

// NewRemoteGateway creates a client for the gateway at base.
func NewRemoteGateway(base string, httpClient *http.Client) *RemoteGateway {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &RemoteGateway{base: base, http: httpClient, flights: &cache.Group[string, *event.Detail]{}}
}

// Persist ships a full detail message to the gateway's persist endpoint
// (source-system side).
func (g *RemoteGateway) Persist(d *event.Detail) error {
	body, err := event.EncodeDetail(d)
	if err != nil {
		return err
	}
	resp, err := g.postXML("/gw/persist", "", body)
	if err != nil {
		return err
	}
	return decodeResponse(resp, nil)
}

// GetResponse implements enforcer.DetailSource over HTTP.
func (g *RemoteGateway) GetResponse(src event.SourceID, fields []event.FieldName) (*event.Detail, error) {
	return g.GetResponseTraced("", src, fields)
}

// GetResponseTraced implements enforcer.TracedDetailSource: the flow's
// trace ID crosses the process boundary as the X-Trace-Id header, so the
// gateway-side metrics and logs of the fetch correlate with the
// controller-side detail request. Identical concurrent calls share one
// round-trip (and the leader's trace); followers get their own clone.
func (g *RemoteGateway) GetResponseTraced(trace string, src event.SourceID, fields []event.FieldName) (*event.Detail, error) {
	d, shared, err := g.flights.Do(fetchKey(src, fields), func() (*event.Detail, error) {
		return g.getResponse(trace, src, fields)
	})
	if err != nil {
		return nil, err
	}
	if shared {
		d = d.Clone()
	}
	return d, nil
}

// getResponse performs the actual HTTP round-trip of Algorithm 2.
func (g *RemoteGateway) getResponse(trace string, src event.SourceID, fields []event.FieldName) (*event.Detail, error) {
	body, err := encodeXML(&getResponseRequest{Source: src, Fields: fields})
	if err != nil {
		return nil, err
	}
	resp, err := g.postXML("/gw/get-response", trace, body)
	if err != nil {
		return nil, err
	}
	var d event.Detail
	if err := decodeResponse(resp, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// fetchKey canonicalizes a fetch for coalescing: source id plus the
// sorted field set, separated by characters field names cannot contain.
// Exact string keys (not hashes) — two different fetches must never
// collide into one shared response.
func fetchKey(src event.SourceID, fields []event.FieldName) string {
	names := make([]string, len(fields))
	for i, f := range fields {
		names[i] = string(f)
	}
	sort.Strings(names)
	return string(src) + "\x1f" + strings.Join(names, "\x1e")
}

// encodeXML marshals v, reporting marshalling problems with context.
func encodeXML(v any) ([]byte, error) {
	data, err := xml.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	return data, nil
}

// decodeFault tries to parse a fault body.
func decodeFault(data []byte, f *Fault) error {
	return xml.Unmarshal(data, f)
}
