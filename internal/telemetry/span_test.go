package telemetry

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartSpanBuildsParentLinkedTree(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.StartSpan(context.Background(), "publish")
	trace := root.Trace()
	if len(trace) != 16 {
		t.Fatalf("root minted trace %q, want 16 hex chars", trace)
	}
	childCtx, child := tr.StartSpan(ctx, "index.put")
	_, grandchild := tr.StartSpan(childCtx, "store.append")
	grandchild.End()
	child.End()
	root.End()

	spans := tr.Spans().ByTrace(trace)
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	byStage := map[string]Span{}
	for _, s := range spans {
		byStage[s.Stage] = s
	}
	if byStage["publish"].Parent != "" {
		t.Fatalf("root has parent %q", byStage["publish"].Parent)
	}
	if byStage["index.put"].Parent != byStage["publish"].ID {
		t.Fatalf("child parent = %q, want root %q", byStage["index.put"].Parent, byStage["publish"].ID)
	}
	if byStage["store.append"].Parent != byStage["index.put"].ID {
		t.Fatalf("grandchild parent = %q, want child %q", byStage["store.append"].Parent, byStage["index.put"].ID)
	}
	for stage, s := range byStage {
		if s.Trace != trace {
			t.Fatalf("stage %s trace = %q, want %q", stage, s.Trace, trace)
		}
	}
}

func TestStartSpanWithoutTracerIsNoop(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "anything")
	if span != nil {
		t.Fatalf("package StartSpan without tracer returned %+v, want nil", span)
	}
	// All ActiveSpan methods must be nil-safe.
	span.SetAttr("k", "v")
	span.AddEvent("e")
	span.SetError(errors.New("boom"))
	span.End()
	if got := TraceFrom(ctx); got != "" {
		t.Fatalf("no-op StartSpan attached trace %q", got)
	}
}

func TestSpanAttrsEventsAndError(t *testing.T) {
	tr := NewTracer(4)
	_, span := tr.StartSpan(context.Background(), "gateway.fetch")
	trace := span.Trace()
	span.SetAttr("producer", "hospital")
	span.AddEvent("breaker.open")
	span.SetError(errors.New("connection refused"))
	span.End()
	span.End() // idempotent

	spans := tr.Spans().ByTrace(trace)
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	s := spans[0]
	if len(s.Attrs) != 1 || s.Attrs[0].Key != "producer" || s.Attrs[0].Value != "hospital" {
		t.Fatalf("attrs = %+v", s.Attrs)
	}
	if len(s.Events) != 1 || s.Events[0].Name != "breaker.open" {
		t.Fatalf("events = %+v", s.Events)
	}
	if s.Error != "connection refused" {
		t.Fatalf("error = %q", s.Error)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	trace, span := "4bf92f3577b34da6", "00f067aa0ba902b7"
	v := FormatTraceparent(trace, span)
	want := "00-00000000000000004bf92f3577b34da6-00f067aa0ba902b7-01"
	if v != want {
		t.Fatalf("FormatTraceparent = %q, want %q", v, want)
	}
	gotTrace, gotSpan, ok := ParseTraceparent(v)
	if !ok || gotTrace != trace || gotSpan != span {
		t.Fatalf("ParseTraceparent = (%q, %q, %v), want (%q, %q, true)", gotTrace, gotSpan, ok, trace, span)
	}

	// Foreign full-width trace IDs survive verbatim.
	foreign := "4bf92f3577b34da6a3ce929d0e0e4736"
	gotTrace, _, ok = ParseTraceparent(FormatTraceparent(foreign, span))
	if !ok || gotTrace != foreign {
		t.Fatalf("foreign trace = (%q, %v), want (%q, true)", gotTrace, ok, foreign)
	}

	for _, bad := range []string{
		"",
		"00-short-span-01",
		"ff-00000000000000004bf92f3577b34da6-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"00-00000000000000004bf92f3577b34da6-0000000000000000-01",
		"00-0000000000000000ZZf92f3577b34da6-00f067aa0ba902b7-01",
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("ParseTraceparent(%q) accepted malformed input", bad)
		}
	}
}

func TestExporterSamplingAndTailKeep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	e, err := NewExporter(ExporterConfig{Path: path, SampleRate: -1, SlowTail: 50 * time.Millisecond}, "test")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	e.Export(Span{Trace: "t1", Stage: "fast-clean", Start: start, Duration: time.Millisecond})
	e.Export(Span{Trace: "t2", Stage: "slow", Start: start, Duration: 80 * time.Millisecond})
	e.Export(Span{Trace: "t3", Stage: "failed", Start: start, Duration: time.Millisecond, Error: "boom"})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := DecodeSpans(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("exported %d spans, want 2 (slow + failed)", len(recs))
	}
	stages := map[string]bool{}
	for _, r := range recs {
		stages[r.Stage] = true
		if r.Proc != "test" {
			t.Fatalf("proc = %q, want test", r.Proc)
		}
	}
	if !stages["slow"] || !stages["failed"] {
		t.Fatalf("kept stages %v, want slow+failed", stages)
	}
}

func TestHeadSamplingConsistentAcrossProcesses(t *testing.T) {
	// The keep/drop decision must depend only on (trace, rate), so two
	// daemons exporting at the same rate keep the same traces.
	kept := 0
	for i := 0; i < 1000; i++ {
		trace := fmt.Sprintf("%016x", i*2654435761)
		a := headSampled(trace, 0.5)
		b := headSampled(trace, 0.5)
		if a != b {
			t.Fatalf("inconsistent decision for %s", trace)
		}
		if a {
			kept++
		}
	}
	if kept < 350 || kept > 650 {
		t.Fatalf("rate 0.5 kept %d/1000, outside sanity band", kept)
	}
	if headSampled("any", 1.0) != true {
		t.Fatal("rate 1.0 must keep everything")
	}
	if headSampled("any", -1) != false {
		t.Fatal("negative rate must drop everything")
	}
}

func TestExporterConcurrentExportAndRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	e, err := NewExporter(ExporterConfig{Path: path, SampleRate: 1, MaxBytes: 4 << 10}, "test")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e.Export(Span{
					Trace: fmt.Sprintf("%016x", g), Stage: "load.test",
					Start: time.Now(), Duration: time.Millisecond,
				})
			}
		}(g)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Dropped() != 0 {
		t.Fatalf("dropped %d spans", e.Dropped())
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("expected rotation to %s.1: %v", path, err)
	}
	// Both generations must hold only whole, decodable lines.
	total := 0
	for _, p := range []string{path + ".1", path} {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := DecodeSpans(f)
		f.Close()
		if err != nil {
			t.Fatalf("decode %s: %v", p, err)
		}
		total += len(recs)
	}
	if total == 0 {
		t.Fatal("no spans survived rotation")
	}
}

func TestConcurrentSpanExportThroughTracer(t *testing.T) {
	dir := t.TempDir()
	e, err := NewExporter(ExporterConfig{Path: filepath.Join(dir, "s.jsonl"), SampleRate: 1}, "test")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(64)
	tr.SetExporter(e)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ctx, root := tr.StartSpan(context.Background(), "root")
				_, child := tr.StartSpan(ctx, "child")
				child.SetAttr("i", "x")
				child.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSLOBurnRate(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("slo_test_seconds", "test latency")
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	slo := NewSLO(SLOConfig{
		Windows: []time.Duration{time.Minute, 5 * time.Minute},
		Step:    10 * time.Second,
		Now:     clock,
	}, Objective{Name: "fast", Hist: hist, Target: 0.1, Goal: 0.99})

	// Healthy period: everything under target.
	for i := 0; i < 100; i++ {
		hist.Observe(0.005)
	}
	slo.Sample()
	rep := slo.Report()
	if len(rep) != 1 || rep[0].Degraded {
		t.Fatalf("healthy objective reported degraded: %+v", rep)
	}
	if slo.Degraded() {
		t.Fatal("engine degraded while healthy")
	}

	// Burn: 10% of new observations blow the target, 10x the 1% error
	// budget, in every window.
	for step := 0; step < 12; step++ {
		now = now.Add(10 * time.Second)
		for i := 0; i < 9; i++ {
			hist.Observe(0.005)
		}
		hist.Observe(0.5)
		slo.Sample()
	}
	rep = slo.Report()
	if !rep[0].Degraded {
		t.Fatalf("burning objective not degraded: %+v", rep)
	}
	for _, w := range rep[0].Windows {
		if !w.Alerting {
			t.Fatalf("window %v not alerting during burn: %+v", w.Window, rep[0])
		}
		if w.BurnRate < DefaultBurnAlert {
			t.Fatalf("window burn rate %.2f below alert threshold", w.BurnRate)
		}
	}
	if !slo.Degraded() {
		t.Fatal("engine not degraded during burn")
	}
	if d := slo.HealthDetail(); !strings.Contains(d, "fast") {
		t.Fatalf("health detail %q does not name the objective", d)
	}
}

func TestSLOMultiWindowGuard(t *testing.T) {
	// A short blip trips the short window but not the long one: the
	// objective must stay non-degraded (the multi-window guard).
	reg := NewRegistry()
	hist := reg.Histogram("slo_blip_seconds", "test latency")
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	slo := NewSLO(SLOConfig{
		Windows: []time.Duration{30 * time.Second, 5 * time.Minute},
		Step:    10 * time.Second,
		Now:     func() time.Time { return now },
	}, Objective{Name: "blip", Hist: hist, Target: 0.1, Goal: 0.99})

	// A long healthy history, sampled along the way so the long window
	// has real baseline points...
	for step := 0; step < 60; step++ {
		now = now.Add(10 * time.Second)
		for i := 0; i < 20; i++ {
			hist.Observe(0.005)
		}
		slo.Sample()
	}
	// ...then a 20-second blip of pure failures.
	for step := 0; step < 2; step++ {
		now = now.Add(10 * time.Second)
		for i := 0; i < 10; i++ {
			hist.Observe(0.5)
		}
		slo.Sample()
	}
	rep := slo.Report()
	short, long := rep[0].Windows[0], rep[0].Windows[1]
	if !short.Alerting {
		t.Fatalf("short window should alert on the blip: %+v", rep[0])
	}
	if long.Alerting {
		t.Fatalf("long window should absorb the blip: %+v", rep[0])
	}
	if rep[0].Degraded {
		t.Fatal("multi-window guard failed: degraded on a blip")
	}
}

func TestExemplarsConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("exemplar_race_seconds", "test latency", "route")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				hist.ObserveTrace(0.001*float64(i%20), fmt.Sprintf("%016x", g*1000+i), "/ws/publish")
			}
		}(g)
	}
	wg.Wait()
	ex := hist.Exemplars("/ws/publish")
	if len(ex) == 0 {
		t.Fatal("no exemplars recorded")
	}
	for ub, x := range ex {
		if x.Trace == "" {
			t.Fatalf("bucket %v exemplar has no trace", ub)
		}
		if x.Value > ub {
			t.Fatalf("bucket %v exemplar value %v above bound", ub, x.Value)
		}
	}
}

func TestExemplarsOnMetricsOutput(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("exemplar_out_seconds", "test latency")
	hist.ObserveTrace(0.003, "deadbeef00000001")
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# {trace_id="deadbeef00000001"}`) {
		t.Fatalf("metrics output missing exemplar:\n%s", out)
	}
	// The exemplar must ride a _bucket line, OpenMetrics style.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "trace_id") && !strings.Contains(line, "_bucket") {
			t.Fatalf("exemplar on non-bucket line: %s", line)
		}
	}
}
