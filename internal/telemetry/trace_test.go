package telemetry

import (
	"context"
	"testing"
	"time"
)

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q is not 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if got := TraceFrom(ctx); got != "" {
		t.Fatalf("TraceFrom(empty) = %q, want empty", got)
	}
	ctx = WithTrace(ctx, "abc123")
	if got := TraceFrom(ctx); got != "abc123" {
		t.Fatalf("TraceFrom = %q, want abc123", got)
	}
}

func TestSpanLogRingAndByTrace(t *testing.T) {
	l := NewSpanLog(4)
	start := time.Date(2010, 6, 1, 9, 0, 0, 0, time.UTC)
	l.Record("t1", "index.put", start, time.Millisecond)
	l.Record("t1", "bus.publish", start, 2*time.Millisecond)
	l.Record("t2", "pdp.decide", start, 3*time.Millisecond)
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	spans := l.ByTrace("t1")
	if len(spans) != 2 || spans[0].Stage != "index.put" || spans[1].Stage != "bus.publish" {
		t.Fatalf("ByTrace(t1) = %+v", spans)
	}

	// Overflow: newest 4 win, oldest first in Snapshot.
	l.Record("t3", "a", start, 0)
	l.Record("t4", "b", start, 0)
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
	if snap[0].Trace != "t1" || snap[0].Stage != "bus.publish" {
		t.Fatalf("oldest retained span = %+v, want t1/bus.publish", snap[0])
	}
	if snap[3].Trace != "t4" {
		t.Fatalf("newest span = %+v, want t4", snap[3])
	}
}

func TestSpanLogTime(t *testing.T) {
	l := NewSpanLog(8)
	l.Time("t", "stage", func() { time.Sleep(time.Millisecond) })
	spans := l.ByTrace("t")
	if len(spans) != 1 || spans[0].Duration < time.Millisecond {
		t.Fatalf("timed span = %+v", spans)
	}
}

func TestNilSpanLogRecordIsNoop(t *testing.T) {
	var l *SpanLog
	l.Record("t", "stage", time.Now(), 0) // must not panic
}
