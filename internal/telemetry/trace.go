package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// NewTraceID mints a fresh correlation identifier: 16 hex characters of
// cryptographic randomness. Trace IDs are minted once per logical flow —
// at Controller.Publish for the notification phase and at RequestDetails
// for the detail phase (the consumer may carry the notification's trace
// into its request to correlate the two) — and travel on the wire
// messages, the audit records, and the X-Trace-Id HTTP header.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively fatal elsewhere; degrade to a
		// process-unique sequence rather than tracing nothing.
		return "seq-" + hex.EncodeToString(fallbackSeq())
	}
	return hex.EncodeToString(b[:])
}

var fallbackCounter atomic.Uint64

func fallbackSeq() []byte {
	n := fallbackCounter.Add(1)
	return []byte{byte(n >> 40), byte(n >> 32), byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
}

// ctxKey is the private context key type for trace IDs.
type ctxKey struct{}

// WithTrace returns a context carrying the trace ID.
func WithTrace(ctx context.Context, trace string) context.Context {
	return context.WithValue(ctx, ctxKey{}, trace)
}

// TraceFrom extracts the trace ID from a context ("" if absent).
func TraceFrom(ctx context.Context) string {
	s, _ := ctx.Value(ctxKey{}).(string)
	return s
}

// Span is one timed stage of a traced flow, e.g. the PDP evaluation or
// the gateway fetch inside a request for details.
type Span struct {
	// Trace correlates the span to its flow.
	Trace string
	// Stage names the pipeline stage ("pdp.decide", "gateway.fetch", ...).
	Stage string
	// Start is when the stage began.
	Start time.Time
	// Duration is how long the stage took.
	Duration time.Duration
}

// SpanLog is a bounded in-process recorder of recent spans. It is a
// diagnosis aid, not a distributed tracer: the newest spans win, old
// ones are overwritten. Safe for concurrent use.
type SpanLog struct {
	mu   sync.Mutex
	ring []Span
	next uint64 // total spans recorded; next%len(ring) is the write slot
}

// DefaultSpanCapacity bounds the default span ring.
const DefaultSpanCapacity = 4096

// NewSpanLog creates a span log keeping the latest capacity spans
// (DefaultSpanCapacity when capacity <= 0).
func NewSpanLog(capacity int) *SpanLog {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanLog{ring: make([]Span, capacity)}
}

// Record stores one finished span.
func (l *SpanLog) Record(trace, stage string, start time.Time, d time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ring[l.next%uint64(len(l.ring))] = Span{Trace: trace, Stage: stage, Start: start, Duration: d}
	l.next++
	l.mu.Unlock()
}

// Time runs fn and records its duration under (trace, stage).
func (l *SpanLog) Time(trace, stage string, fn func()) {
	start := time.Now()
	fn()
	l.Record(trace, stage, start, time.Since(start))
}

// Len returns how many spans are currently retained.
func (l *SpanLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.next < uint64(len(l.ring)) {
		return int(l.next)
	}
	return len(l.ring)
}

// Snapshot returns the retained spans, oldest first.
func (l *SpanLog) Snapshot() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := uint64(len(l.ring))
	if l.next <= n {
		return append([]Span(nil), l.ring[:l.next]...)
	}
	out := make([]Span, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, l.ring[(l.next+i)%n])
	}
	return out
}

// ByTrace returns the retained spans of one trace, oldest first.
func (l *SpanLog) ByTrace(trace string) []Span {
	var out []Span
	for _, s := range l.Snapshot() {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}
