package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// NewTraceID mints a fresh correlation identifier: 16 hex characters of
// cryptographic randomness. Trace IDs are minted once per logical flow —
// at Controller.Publish for the notification phase and at RequestDetails
// for the detail phase (the consumer may carry the notification's trace
// into its request to correlate the two) — and travel on the wire
// messages, the audit records, and the X-Trace-Id HTTP header.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively fatal elsewhere; degrade to a
		// process-unique sequence rather than tracing nothing.
		return "seq-" + hex.EncodeToString(fallbackSeq())
	}
	var dst [16]byte
	hex.Encode(dst[:], b[:])
	return string(dst[:])
}

var fallbackCounter atomic.Uint64

func fallbackSeq() []byte {
	n := fallbackCounter.Add(1)
	return []byte{byte(n >> 40), byte(n >> 32), byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
}

// spanIDPrefix is a per-process random 4-byte prefix; combined with a
// monotonically increasing counter it yields 16-hex span IDs that are
// unique across processes without paying a crypto/rand read per span
// (publish-path spans are minted several times per request).
var (
	spanIDPrefix  [4]byte
	spanIDCounter atomic.Uint64
)

func init() {
	if _, err := rand.Read(spanIDPrefix[:]); err != nil {
		n := fallbackCounter.Add(1)
		spanIDPrefix = [4]byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
	}
	// Start the counter at a random offset so restarts of the same
	// process image do not replay the same (prefix, counter) sequence.
	var off [4]byte
	_, _ = rand.Read(off[:])
	spanIDCounter.Store(uint64(off[0])<<24 | uint64(off[1])<<16 | uint64(off[2])<<8 | uint64(off[3]))
}

const hexDigits = "0123456789abcdef"

// NewSpanID mints a 16-hex span identifier. Unlike NewTraceID it avoids
// crypto/rand on every call: span IDs only need uniqueness, not
// unpredictability, and they are minted on the publish hot path. The
// hex encoding is inlined by hand to keep it to a single allocation.
func NewSpanID() string {
	n := spanIDCounter.Add(1)
	var b [8]byte
	copy(b[:4], spanIDPrefix[:])
	b[4] = byte(n >> 24)
	b[5] = byte(n >> 16)
	b[6] = byte(n >> 8)
	b[7] = byte(n)
	var dst [16]byte
	for i, v := range b {
		dst[i*2] = hexDigits[v>>4]
		dst[i*2+1] = hexDigits[v&0x0f]
	}
	return string(dst[:])
}

// ctxKey is the private context key for the flow's trace state.
type ctxKey struct{}

// traceCtx bundles everything a traced flow carries through a context —
// the trace ID, the current span ID (parent of any span started
// beneath it) and the tracer — under ONE context key, so attaching all
// three costs a single context.WithValue instead of three. Publish
// fan-out opens a span per delivery; the difference is measurable.
type traceCtx struct {
	trace  string
	span   string
	tracer *Tracer
}

func traceCtxFrom(ctx context.Context) *traceCtx {
	tc, _ := ctx.Value(ctxKey{}).(*traceCtx)
	return tc
}

// WithTrace returns a context carrying the trace ID. The current span
// ID and tracer, if any, are preserved.
func WithTrace(ctx context.Context, trace string) context.Context {
	tc := traceCtxFrom(ctx)
	if tc != nil && tc.trace == trace {
		return ctx
	}
	nt := &traceCtx{trace: trace}
	if tc != nil {
		nt.span, nt.tracer = tc.span, tc.tracer
	}
	return context.WithValue(ctx, ctxKey{}, nt)
}

// WithTraceSpan returns a context carrying both the trace and the
// current span ID in one step — half the allocations of
// WithTrace+WithSpanID on the bus-delivery path, where the trace
// context is rebuilt from the message for every delivery. The tracer,
// if any, is preserved.
func WithTraceSpan(ctx context.Context, trace, span string) context.Context {
	nt := &traceCtx{trace: trace, span: span}
	if tc := traceCtxFrom(ctx); tc != nil {
		nt.tracer = tc.tracer
	}
	return context.WithValue(ctx, ctxKey{}, nt)
}

// TraceFrom extracts the trace ID from a context ("" if absent).
func TraceFrom(ctx context.Context) string {
	if tc := traceCtxFrom(ctx); tc != nil {
		return tc.trace
	}
	return ""
}

// Span is one timed stage of a traced flow, e.g. the PDP evaluation or
// the gateway fetch inside a request for details. The identity fields
// (ID, Parent) are optional: spans recorded through the legacy
// SpanLog.Record path have neither and simply hang off the trace root.
type Span struct {
	// Trace correlates the span to its flow.
	Trace string
	// Stage names the pipeline stage ("pdp.decide", "gateway.fetch", ...).
	Stage string
	// ID is the span's own identifier ("" for legacy flat spans).
	ID string
	// Parent is the span ID of the enclosing stage ("" for flow roots).
	Parent string
	// Start is when the stage began.
	Start time.Time
	// Duration is how long the stage took.
	Duration time.Duration
	// Attrs are optional key/value annotations (requester, outcome, ...).
	Attrs []Attr
	// Events are point-in-time occurrences inside the span (a breaker
	// opening, a retry being scheduled).
	Events []SpanEvent
	// Error is the failure that ended the span ("" on success).
	Error string
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SpanEvent is a point-in-time occurrence recorded inside a span.
type SpanEvent struct {
	Name  string    `json:"name"`
	At    time.Time `json:"at"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// SpanLog is a bounded in-process recorder of recent spans. It is a
// diagnosis aid, not a distributed tracer: the newest spans win, old
// ones are overwritten. Safe for concurrent use.
//
// Large logs are sharded so the concurrent deliveries of a publish
// fan-out record spans without fighting over a single lock; small logs
// (below spanLogShardMin) stay single-sharded and keep exact FIFO
// eviction order.
type SpanLog struct {
	shards []spanLogShard
}

type spanLogShard struct {
	mu   sync.Mutex
	ring []Span
	next uint64 // total spans recorded; next%len(ring) is the write slot

	_ [64]byte // keep neighboring shard locks off one cache line
}

// DefaultSpanCapacity bounds the default span ring.
const DefaultSpanCapacity = 4096

const (
	spanLogShards   = 8 // power of two (shard picking masks)
	spanLogShardMin = 256
)

// NewSpanLog creates a span log keeping the latest capacity spans
// (DefaultSpanCapacity when capacity <= 0).
func NewSpanLog(capacity int) *SpanLog {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	n := spanLogShards
	if capacity < spanLogShardMin {
		n = 1
	}
	per := (capacity + n - 1) / n
	l := &SpanLog{shards: make([]spanLogShard, n)}
	for i := range l.shards {
		l.shards[i].ring = make([]Span, per)
	}
	return l
}

// Record stores one finished span.
func (l *SpanLog) Record(trace, stage string, start time.Time, d time.Duration) {
	l.RecordSpan(Span{Trace: trace, Stage: stage, Start: start, Duration: d})
}

// RecordSpan stores one finished span with full identity and metadata.
func (l *SpanLog) RecordSpan(s Span) {
	if l == nil {
		return
	}
	sh := &l.shards[0]
	if len(l.shards) > 1 {
		// The start timestamp's nanoseconds are as good as a random
		// draw across concurrent recorders, and cost no atomic.
		sh = &l.shards[s.Start.Nanosecond()&(len(l.shards)-1)]
	}
	sh.mu.Lock()
	sh.ring[sh.next%uint64(len(sh.ring))] = s
	sh.next++
	sh.mu.Unlock()
}

// Time runs fn and records its duration under (trace, stage).
func (l *SpanLog) Time(trace, stage string, fn func()) {
	start := time.Now()
	fn()
	l.Record(trace, stage, start, time.Since(start))
}

// Len returns how many spans are currently retained.
func (l *SpanLog) Len() int {
	total := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		if sh.next < uint64(len(sh.ring)) {
			total += int(sh.next)
		} else {
			total += len(sh.ring)
		}
		sh.mu.Unlock()
	}
	return total
}

// Snapshot returns the retained spans, oldest first (by start time
// when the log is sharded).
func (l *SpanLog) Snapshot() []Span {
	var out []Span
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		n := uint64(len(sh.ring))
		if sh.next <= n {
			out = append(out, sh.ring[:sh.next]...)
		} else {
			for j := uint64(0); j < n; j++ {
				out = append(out, sh.ring[(sh.next+j)%n])
			}
		}
		sh.mu.Unlock()
	}
	if len(l.shards) > 1 {
		sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	}
	return out
}

// ByTrace returns the retained spans of one trace, oldest first.
func (l *SpanLog) ByTrace(trace string) []Span {
	var out []Span
	for _, s := range l.Snapshot() {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}
