package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// ExporterConfig tunes the durable span exporter.
type ExporterConfig struct {
	// Path is the JSONL file spans are appended to. Required.
	Path string
	// MaxBytes rotates the file to Path+".1" when it grows past this
	// size (DefaultExportMaxBytes when <= 0).
	MaxBytes int64
	// SampleRate is the head-sampling fraction in [0,1]. The decision
	// hashes the trace ID, so every process exporting at the same rate
	// keeps or drops the same traces (DefaultSampleRate when 0; a
	// negative rate means never head-sample).
	SampleRate float64
	// SlowTail forces export of spans at or above this duration even
	// when the trace lost the head-sampling draw (DefaultSlowTail when
	// 0; negative disables the tail rule).
	SlowTail time.Duration
}

// Exporter defaults.
const (
	DefaultExportMaxBytes = 16 << 20
	DefaultSampleRate     = 0.1
	DefaultSlowTail       = 100 * time.Millisecond
)

// SpanRecord is the JSONL wire form of an exported span, shared with
// cmd/css-trace and the /debug/spans endpoint.
type SpanRecord struct {
	Trace    string      `json:"trace"`
	Stage    string      `json:"stage"`
	ID       string      `json:"id,omitempty"`
	Parent   string      `json:"parent,omitempty"`
	Start    time.Time   `json:"start"`
	Duration int64       `json:"dur_us"` // microseconds
	Attrs    []Attr      `json:"attrs,omitempty"`
	Events   []SpanEvent `json:"events,omitempty"`
	Error    string      `json:"error,omitempty"`
	// Proc labels the exporting process ("controller", "gateway", ...)
	// so merged files remain attributable.
	Proc string `json:"proc,omitempty"`
}

// ToRecord converts a span to its export form, stamped with proc.
func ToRecord(s Span, proc string) SpanRecord {
	return SpanRecord{
		Trace:    s.Trace,
		Stage:    s.Stage,
		ID:       s.ID,
		Parent:   s.Parent,
		Start:    s.Start,
		Duration: s.Duration.Microseconds(),
		Attrs:    s.Attrs,
		Events:   s.Events,
		Error:    s.Error,
		Proc:     proc,
	}
}

// Span converts the record back to the in-process form.
func (r SpanRecord) Span() Span {
	return Span{
		Trace:    r.Trace,
		Stage:    r.Stage,
		ID:       r.ID,
		Parent:   r.Parent,
		Start:    r.Start,
		Duration: time.Duration(r.Duration) * time.Microsecond,
		Attrs:    r.Attrs,
		Events:   r.Events,
		Error:    r.Error,
	}
}

// DecodeSpans reads JSONL span records from r, skipping blank lines.
func DecodeSpans(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return out, fmt.Errorf("decode span line: %w", err)
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// Exporter appends sampled spans to a bounded JSONL ring-file: when the
// file exceeds MaxBytes it is rotated to Path+".1" (replacing any
// previous generation), so disk use is bounded at ~2×MaxBytes. Spans
// survive the head-sampling draw per trace (consistent across
// processes) or are tail-kept when they errored or ran slow. Safe for
// concurrent use.
type Exporter struct {
	cfg  ExporterConfig
	proc string

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	written int64
	dropped uint64
	closed  bool
}

// NewExporter opens (appending) the export file. proc labels the
// exporting process in each record.
func NewExporter(cfg ExporterConfig, proc string) (*Exporter, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("telemetry: exporter needs a path")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultExportMaxBytes
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = DefaultSampleRate
	}
	if cfg.SlowTail == 0 {
		cfg.SlowTail = DefaultSlowTail
	}
	e := &Exporter{cfg: cfg, proc: proc}
	if err := e.open(); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Exporter) open() error {
	f, err := os.OpenFile(e.cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	e.f = f
	e.w = bufio.NewWriterSize(f, 32<<10)
	e.written = st.Size()
	return nil
}

// headSampled reports whether trace wins the head-sampling draw. The
// FNV-32a hash of the trace ID is compared against the rate, so the
// decision is identical in every process (and between the tracer and
// the exporter). The hash is inlined rather than using hash/fnv: the
// hasher object and io.WriteString's []byte conversion both allocate,
// and the draw runs once per span on the publish fan-out.
func headSampled(trace string, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	h := uint32(2166136261) // FNV-32a offset basis
	for i := 0; i < len(trace); i++ {
		h ^= uint32(trace[i])
		h *= 16777619 // FNV-32a prime
	}
	return float64(h)/float64(1<<32) < rate
}

// keep decides whether a span is exported: head-sampled by trace, or
// tail-kept on error / slow duration.
func (e *Exporter) keep(s Span) bool {
	if s.Error != "" {
		return true
	}
	if e.cfg.SlowTail > 0 && s.Duration >= e.cfg.SlowTail {
		return true
	}
	return headSampled(s.Trace, e.cfg.SampleRate)
}

// Export writes the span if sampling keeps it. Write errors are
// counted, not returned: tracing must never fail the traced flow.
func (e *Exporter) Export(s Span) {
	if e == nil || !e.keep(s) {
		return
	}
	b, err := json.Marshal(ToRecord(s, e.proc))
	if err != nil {
		return
	}
	b = append(b, '\n')
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		e.dropped++
		return
	}
	if e.written+int64(len(b)) > e.cfg.MaxBytes {
		if err := e.rotateLocked(); err != nil {
			e.dropped++
			return
		}
	}
	n, err := e.w.Write(b)
	e.written += int64(n)
	if err != nil {
		e.dropped++
	}
}

// rotateLocked moves the current file to Path+".1" and reopens fresh.
func (e *Exporter) rotateLocked() error {
	e.w.Flush()
	e.f.Close()
	if err := os.Rename(e.cfg.Path, e.cfg.Path+".1"); err != nil && !os.IsNotExist(err) {
		return err
	}
	return e.open()
}

// Dropped reports how many spans were lost to write errors.
func (e *Exporter) Dropped() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

// Flush forces buffered spans to disk (wired into daemon drain).
func (e *Exporter) Flush() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	if err := e.w.Flush(); err != nil {
		return err
	}
	return e.f.Sync()
}

// Close flushes and closes the file. Further Exports are dropped.
func (e *Exporter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	err := e.w.Flush()
	if cerr := e.f.Close(); err == nil {
		err = cerr
	}
	return err
}
