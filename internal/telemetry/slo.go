package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Objective is one latency SLO: a fraction Goal of observations on a
// histogram child must complete within Target seconds. "Good" is
// computed from the histogram's buckets, so the SLO reads the exact
// series /metrics exposes — no second measurement path.
type Objective struct {
	// Name identifies the objective ("publish", "detail-permit", ...).
	Name string
	// Hist is the histogram family backing the objective.
	Hist *Histogram
	// LabelValues selects the child (empty for unlabeled families).
	LabelValues []string
	// Target is the latency threshold in seconds; observations at or
	// below it are good. It should coincide with a bucket bound —
	// otherwise the effective target is the next lower bound.
	Target float64
	// Goal is the required good fraction, e.g. 0.99.
	Goal float64
}

// SLOConfig tunes the burn-rate engine.
type SLOConfig struct {
	// Windows are the burn-rate look-back windows, short to long
	// (DefaultSLOWindows when empty).
	Windows []time.Duration
	// Step is the sampling cadence (DefaultSLOStep when 0).
	Step time.Duration
	// BurnAlert is the burn rate above which a window is alerting
	// (DefaultBurnAlert when 0). An objective degrades only when every
	// window burns above it — the classic multi-window guard against
	// paging on a blip.
	BurnAlert float64
	// Now overrides the clock (tests).
	Now func() time.Time
}

// SLO engine defaults.
var DefaultSLOWindows = []time.Duration{5 * time.Minute, 30 * time.Minute}

const (
	DefaultSLOStep   = 10 * time.Second
	DefaultBurnAlert = 6.0
)

// sloSample is one point-in-time (total, good) reading of an objective.
type sloSample struct {
	at    time.Time
	total uint64
	good  uint64
}

// SLO computes multi-window burn rates for latency objectives from the
// histogram families already feeding /metrics. Safe for concurrent use.
type SLO struct {
	cfg  SLOConfig
	objs []Objective

	mu      sync.Mutex
	samples [][]sloSample // parallel to objs, oldest first
}

// NewSLO creates the engine. Call Sample (or Run) to feed it.
func NewSLO(cfg SLOConfig, objs ...Objective) *SLO {
	if len(cfg.Windows) == 0 {
		cfg.Windows = DefaultSLOWindows
	}
	sort.Slice(cfg.Windows, func(i, j int) bool { return cfg.Windows[i] < cfg.Windows[j] })
	if cfg.Step <= 0 {
		cfg.Step = DefaultSLOStep
	}
	if cfg.BurnAlert == 0 {
		cfg.BurnAlert = DefaultBurnAlert
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &SLO{cfg: cfg, objs: objs, samples: make([][]sloSample, len(objs))}
}

// read takes a (total, good) reading of one objective straight from the
// histogram buckets.
func (o Objective) read() (total, good uint64) {
	counts, total := o.Hist.BucketCounts(o.LabelValues...)
	for i, ub := range o.Hist.Buckets() {
		if ub <= o.Target+1e-12 {
			good += counts[i]
		}
	}
	return total, good
}

// Sample records one reading per objective and prunes samples older
// than the longest window.
func (s *SLO) Sample() {
	now := s.cfg.Now()
	horizon := now.Add(-s.cfg.Windows[len(s.cfg.Windows)-1] - s.cfg.Step)
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, o := range s.objs {
		total, good := o.read()
		ring := append(s.samples[i], sloSample{at: now, total: total, good: good})
		drop := 0
		for drop < len(ring)-1 && ring[drop].at.Before(horizon) {
			drop++
		}
		s.samples[i] = ring[drop:]
	}
}

// Run samples on the configured cadence until ctx is done.
func (s *SLO) Run(ctx context.Context) {
	t := time.NewTicker(s.cfg.Step)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.Sample()
		}
	}
}

// WindowReport is the burn rate over one look-back window.
type WindowReport struct {
	Window time.Duration `json:"window_seconds"`
	Total  uint64        `json:"total"`
	Bad    uint64        `json:"bad"`
	// BurnRate is badFraction/(1-goal): 1.0 burns the error budget
	// exactly at the rate it refills; DefaultBurnAlert (6×) exhausts a
	// 30-day budget in 5 days.
	BurnRate float64 `json:"burn_rate"`
	Alerting bool    `json:"alerting"`
}

// ObjectiveReport is the current state of one objective.
type ObjectiveReport struct {
	Name         string         `json:"name"`
	TargetSecs   float64        `json:"target_seconds"`
	Goal         float64        `json:"goal"`
	Total        uint64         `json:"total"`
	GoodFraction float64        `json:"good_fraction"`
	Windows      []WindowReport `json:"windows"`
	// Degraded means every window is alerting — the multi-window
	// condition that should page.
	Degraded bool `json:"degraded"`
}

// Report computes the current burn rates. It takes a fresh sample
// first, so scrape-only deployments (no Run goroutine) still see
// current data.
func (s *SLO) Report() []ObjectiveReport {
	s.Sample()
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ObjectiveReport, 0, len(s.objs))
	for i, o := range s.objs {
		ring := s.samples[i]
		last := ring[len(ring)-1]
		rep := ObjectiveReport{Name: o.Name, TargetSecs: o.Target, Goal: o.Goal, Total: last.total}
		if last.total > 0 {
			rep.GoodFraction = float64(last.good) / float64(last.total)
		} else {
			rep.GoodFraction = 1
		}
		alertingAll := true
		for _, w := range s.cfg.Windows {
			base := ring[0]
			cutoff := now.Add(-w)
			for _, smp := range ring {
				if smp.at.After(cutoff) {
					break
				}
				base = smp
			}
			total := last.total - base.total
			good := last.good - base.good
			wr := WindowReport{Window: w / time.Second, Total: total, Bad: total - good}
			if total > 0 && o.Goal < 1 {
				badFrac := float64(wr.Bad) / float64(total)
				wr.BurnRate = badFrac / (1 - o.Goal)
			}
			wr.Alerting = wr.BurnRate > s.cfg.BurnAlert
			if !wr.Alerting {
				alertingAll = false
			}
			rep.Windows = append(rep.Windows, wr)
		}
		rep.Degraded = alertingAll && len(s.cfg.Windows) > 0
		out = append(out, rep)
	}
	return out
}

// Degraded reports whether any objective has every window alerting.
func (s *SLO) Degraded() bool {
	for _, r := range s.Report() {
		if r.Degraded {
			return true
		}
	}
	return false
}

// HealthDetail renders a one-line summary per objective for /healthz,
// e.g. "publish good=100.0% burn[5m0s]=0.0 burn[30m0s]=0.0".
func (s *SLO) HealthDetail() string {
	var b strings.Builder
	for i, r := range s.Report() {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s good=%.1f%%", r.Name, r.GoodFraction*100)
		for _, w := range r.Windows {
			fmt.Fprintf(&b, " burn[%s]=%.1f", time.Duration(w.Window)*time.Second, w.BurnRate)
		}
		if r.Degraded {
			b.WriteString(" DEGRADED")
		}
	}
	if b.Len() == 0 {
		return "no objectives"
	}
	return b.String()
}

// SLOHandler serves the engine's report as JSON on /slo.
func SLOHandler(s *SLO) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Objectives []ObjectiveReport `json:"objectives"`
		}{s.Report()})
	})
}
