package telemetry

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// WithSpanID returns a context carrying id as the current span (the
// parent of any span started beneath it). Trace and tracer, if any,
// are preserved.
func WithSpanID(ctx context.Context, id string) context.Context {
	tc := traceCtxFrom(ctx)
	if tc != nil && tc.span == id {
		return ctx
	}
	nt := &traceCtx{span: id}
	if tc != nil {
		nt.trace, nt.tracer = tc.trace, tc.tracer
	}
	return context.WithValue(ctx, ctxKey{}, nt)
}

// SpanIDFrom extracts the current span ID ("" if absent).
func SpanIDFrom(ctx context.Context) string {
	if tc := traceCtxFrom(ctx); tc != nil {
		return tc.span
	}
	return ""
}

// WithTracer returns a context carrying the tracer, so deep call sites
// (enforcer, resilience) can open spans without plumbing the tracer
// through every signature. Trace and span ID, if any, are preserved.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	tc := traceCtxFrom(ctx)
	if tc != nil && tc.tracer == t {
		return ctx
	}
	nt := &traceCtx{tracer: t}
	if tc != nil {
		nt.trace, nt.span = tc.trace, tc.span
	}
	return context.WithValue(ctx, ctxKey{}, nt)
}

// TracerFrom extracts the tracer from a context (nil if absent).
func TracerFrom(ctx context.Context) *Tracer {
	if tc := traceCtxFrom(ctx); tc != nil {
		return tc.tracer
	}
	return nil
}

// Tracer mints hierarchical spans and records them into a bounded
// in-process ring (for /debug/spans) plus, optionally, a durable
// Exporter and an OnEnd hook (the controller uses the hook to feed the
// per-stage latency histogram). Safe for concurrent use.
//
// Recording is head-sampled per trace (SetSampleRate): spans of traces
// that lose the draw are still timed — the OnEnd hook fires for every
// span, so latency metrics keep full fidelity — but they skip ID
// minting and are not retained in the ring or exported, which removes
// most of the tracing overhead from the publish fan-out. Error spans
// and spans at or above the slow-tail threshold are recorded even when
// their trace is unsampled, so post-mortems keep the interesting
// outliers (their parent links may dangle: an unsampled parent that
// finished fast was already dropped). The draw hashes the trace ID,
// so every process and the exporter agree on which traces are kept.
type Tracer struct {
	log        *SpanLog
	exporter   atomic.Pointer[Exporter]
	onEnd      atomic.Pointer[func(*Span)]
	sampleBits atomic.Uint64 // head-sampling rate, float64 bits
	slowTailNs atomic.Int64  // tail-keep threshold, nanoseconds
}

// NewTracer creates a tracer whose ring keeps the latest capacity
// spans (DefaultSpanCapacity when capacity <= 0). The sample rate
// starts at 1 (record everything) — embedded and test tracers see
// every span unless they opt into sampling — with the slow tail at
// DefaultSlowTail.
func NewTracer(capacity int) *Tracer {
	t := &Tracer{log: NewSpanLog(capacity)}
	t.sampleBits.Store(math.Float64bits(1))
	t.slowTailNs.Store(int64(DefaultSlowTail))
	return t
}

// SetSampleRate sets the head-sampling fraction in [0,1]. 1 records
// every span; 0 records only tail-kept (slow or failed) spans.
func (t *Tracer) SetSampleRate(rate float64) {
	if t == nil {
		return
	}
	if rate < 0 {
		rate = 0
	} else if rate > 1 {
		rate = 1
	}
	t.sampleBits.Store(math.Float64bits(rate))
}

// SampleRate reports the current head-sampling fraction.
func (t *Tracer) SampleRate() float64 {
	if t == nil {
		return 0
	}
	return math.Float64frombits(t.sampleBits.Load())
}

// SetSlowTail sets the duration at or above which a span is recorded
// even when its trace lost the sampling draw (0 disables tail-keep).
func (t *Tracer) SetSlowTail(d time.Duration) {
	if t != nil {
		t.slowTailNs.Store(int64(d))
	}
}

// traceSampled is the per-trace recording decision; the same FNV draw
// the exporter uses, so both layers keep the same traces.
func (t *Tracer) traceSampled(trace string) bool {
	return headSampled(trace, math.Float64frombits(t.sampleBits.Load()))
}

// Spans exposes the tracer's in-process ring.
func (t *Tracer) Spans() *SpanLog {
	if t == nil {
		return nil
	}
	return t.log
}

// SetExporter attaches a durable span exporter (nil detaches).
func (t *Tracer) SetExporter(e *Exporter) {
	if t != nil {
		t.exporter.Store(e)
	}
}

// SetOnEnd registers a hook invoked for every finished span (nil
// clears). The hook runs on the path that ends the span: keep it
// cheap, and do not retain the *Span beyond the call — it aliases
// pooled memory.
func (t *Tracer) SetOnEnd(fn func(*Span)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.onEnd.Store(nil)
		return
	}
	t.onEnd.Store(&fn)
}

// spanPool recycles ActiveSpan allocations on the publish hot path.
var spanPool = sync.Pool{New: func() any { return new(ActiveSpan) }}

// ActiveSpan is an in-flight span returned by StartSpan. All methods
// are nil-safe so call sites need no tracer-presence checks. Not safe
// for concurrent mutation; the usual shape is start/annotate/End on one
// goroutine.
type ActiveSpan struct {
	tracer *Tracer
	span   Span
	ended  bool
	// sampled is the trace's head-sampling draw: unsampled spans are
	// timed (metrics stay exact) but not recorded unless tail-kept.
	sampled bool
	// attrs holds the first few SetAttr pairs inline so unsampled spans
	// annotate without allocating; overflow falls back to span.Attrs.
	attrs  [4]Attr
	nattrs int
}

// StartSpan opens a child span of the context's current span, under the
// context's trace (minting a trace ID if absent). The returned context
// carries the trace, the tracer and the new span as current, so nested
// StartSpan calls form a tree. End must be called to record the span.
func (t *Tracer) StartSpan(ctx context.Context, stage string) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	trace, parent := "", ""
	tc := traceCtxFrom(ctx)
	if tc != nil {
		trace, parent = tc.trace, tc.span
	}
	if trace == "" {
		trace = NewTraceID()
	}
	s := spanPool.Get().(*ActiveSpan)
	*s = ActiveSpan{tracer: t, sampled: t.traceSampled(trace), span: Span{
		Trace:  trace,
		Stage:  stage,
		Parent: parent,
		Start:  time.Now(),
	}}
	if !s.sampled {
		// Nothing below will record either, so the span needs no ID and
		// the context only has to carry {trace, tracer} for propagation;
		// when it already does, it is returned untouched.
		if tc == nil || tc.trace != trace || tc.tracer != t {
			ctx = context.WithValue(ctx, ctxKey{}, &traceCtx{trace: trace, span: parent, tracer: t})
		}
		return ctx, s
	}
	s.span.ID = NewSpanID()
	ctx = context.WithValue(ctx, ctxKey{}, &traceCtx{trace: trace, span: s.span.ID, tracer: t})
	return ctx, s
}

// StartSpanFrom opens a span under an explicitly supplied trace and
// parent span ID, ignoring whatever trace state the context carries.
// It serves the bus-delivery path, where the flow's trace context
// arrives on the message rather than the context: equivalent to
// StartSpan(WithTraceSpan(ctx, trace, parent), stage) at half the
// context allocations — and deliveries run once per subscriber.
func (t *Tracer) StartSpanFrom(ctx context.Context, stage, trace, parent string) (context.Context, *ActiveSpan) {
	if t == nil {
		return WithTraceSpan(ctx, trace, parent), nil
	}
	if trace == "" {
		trace = NewTraceID()
	}
	s := spanPool.Get().(*ActiveSpan)
	*s = ActiveSpan{tracer: t, sampled: t.traceSampled(trace), span: Span{
		Trace:  trace,
		Stage:  stage,
		Parent: parent,
		Start:  time.Now(),
	}}
	cur := parent
	if s.sampled {
		s.span.ID = NewSpanID()
		cur = s.span.ID
	}
	ctx = context.WithValue(ctx, ctxKey{}, &traceCtx{trace: trace, span: cur, tracer: t})
	return ctx, s
}

// StartDetached opens a span under an explicit trace and parent span
// ID without producing a context at all — the fan-out path for
// context-free subscription handlers, where nothing downstream could
// open a child span or read the trace from a context anyway. It is
// StartSpanFrom minus both context allocations, and deliveries run
// once per subscriber per publication.
func (t *Tracer) StartDetached(stage, trace, parent string) *ActiveSpan {
	if t == nil {
		return nil
	}
	if trace == "" {
		trace = NewTraceID()
	}
	s := spanPool.Get().(*ActiveSpan)
	*s = ActiveSpan{tracer: t, sampled: t.traceSampled(trace), span: Span{
		Trace:  trace,
		Stage:  stage,
		Parent: parent,
		Start:  time.Now(),
	}}
	if s.sampled {
		s.span.ID = NewSpanID()
	}
	return s
}

// StartSpan opens a span on the context's tracer. When the context
// carries no tracer it is a no-op that returns (ctx, nil) without
// reading the clock, preserving the zero-cost-when-untraced property.
func StartSpan(ctx context.Context, stage string) (context.Context, *ActiveSpan) {
	return TracerFrom(ctx).StartSpan(ctx, stage)
}

// StartChild opens a child span of s without touching any context —
// for leaf stages (index.put, bus.publish, ...) whose span is never
// the context-propagated parent of anything. It skips both context
// allocations StartSpan pays; on a nil span it returns nil, which all
// ActiveSpan methods tolerate.
func (s *ActiveSpan) StartChild(stage string) *ActiveSpan {
	if s == nil {
		return nil
	}
	c := spanPool.Get().(*ActiveSpan)
	// The child shares the parent's trace, so it inherits the parent's
	// sampling draw instead of re-hashing the trace ID.
	*c = ActiveSpan{tracer: s.tracer, sampled: s.sampled, span: Span{
		Trace:  s.span.Trace,
		Stage:  stage,
		Parent: s.span.ID,
		Start:  time.Now(),
	}}
	if c.sampled {
		c.span.ID = NewSpanID()
	}
	return c
}

// Trace reports the span's trace ID ("" on a nil span).
func (s *ActiveSpan) Trace() string {
	if s == nil {
		return ""
	}
	return s.span.Trace
}

// ID reports the span's own ID ("" on a nil span).
func (s *ActiveSpan) ID() string {
	if s == nil {
		return ""
	}
	return s.span.ID
}

// SetAttr annotates the span. The usual 1-4 attrs live inline in the
// (pooled) ActiveSpan; a heap slice is only built at End, and only for
// spans that are actually recorded — unsampled fan-out spans annotate
// for free.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.nattrs < len(s.attrs) {
		s.attrs[s.nattrs] = Attr{Key: key, Value: value}
		s.nattrs++
		return
	}
	s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Value: value})
}

// AddEvent records a point-in-time occurrence inside the span.
func (s *ActiveSpan) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.span.Events = append(s.span.Events, SpanEvent{Name: name, At: time.Now(), Attrs: attrs})
}

// SetError marks the span failed. A nil error is ignored.
func (s *ActiveSpan) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.span.Error = err.Error()
}

// End closes the span, records it, and releases it to the pool,
// returning the span's duration (0 on a nil or already-ended span) so
// hot paths need not read the clock a second time for their latency
// metric. Calling End more than once is safe; only the first call
// records.
func (s *ActiveSpan) End() time.Duration {
	if s == nil || s.ended {
		return 0
	}
	s.ended = true
	d := time.Since(s.span.Start)
	s.span.Duration = d
	t := s.tracer
	// Unsampled spans are still tail-kept when they failed or ran slow:
	// the outliers a post-mortem needs survive any sampling rate.
	keep := s.sampled || s.span.Error != "" ||
		(d >= time.Duration(t.slowTailNs.Load()) && t.slowTailNs.Load() > 0)
	if keep {
		if s.span.ID == "" {
			s.span.ID = NewSpanID()
		}
		if s.nattrs > 0 {
			// Materialize the inline attrs into a heap slice the ring and
			// exporter can own (overflow attrs, if any, follow in order).
			merged := make([]Attr, 0, s.nattrs+len(s.span.Attrs))
			merged = append(merged, s.attrs[:s.nattrs]...)
			merged = append(merged, s.span.Attrs...)
			s.span.Attrs = merged
		}
	} else if s.nattrs > 0 {
		// Only the OnEnd hook will see the span; lend it the inline
		// attrs without allocating. The hook must not retain the slice —
		// it aliases this pooled struct.
		s.span.Attrs = s.attrs[:s.nattrs:s.nattrs]
	}
	t.record(&s.span, keep)
	// The ring and exporter copied the Span, owning their references to
	// any attr/event slices; zeroing this struct before pooling means
	// reuse never aliases them (a fresh SetAttr allocates anew). ended
	// stays true so a stale double-End is a no-op.
	*s = ActiveSpan{ended: true}
	spanPool.Put(s)
	return d
}

// record fans a finished span out to the ring, the exporter and the
// OnEnd hook. The pointer avoids copying the ~170-byte Span once per
// consumer; each consumer copies (or reads) what it needs before
// record returns, because the memory behind sp is pooled. keep gates
// the ring and the exporter; the OnEnd hook fires for every span so
// the latency histograms stay exact under sampling.
func (t *Tracer) record(sp *Span, keep bool) {
	if keep {
		t.log.RecordSpan(*sp)
		if e := t.exporter.Load(); e != nil {
			e.Export(*sp)
		}
	}
	if fn := t.onEnd.Load(); fn != nil {
		(*fn)(sp)
	}
}
