package telemetry

import (
	"log/slog"
	"os"
	"sync/atomic"
	"time"
)

// The package-level logger defaults to text slog on stderr at Info.
// Daemon binaries reconfigure it at startup (SetLogger); libraries pull
// it through Logger so the whole process logs one way.
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(slog.NewTextHandler(os.Stderr, nil)))
}

// Logger returns the process logger.
func Logger() *slog.Logger { return logger.Load() }

// SetLogger replaces the process logger (nil restores the default).
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	logger.Store(l)
}

// NewLogger builds a slog.Logger writing to stderr; json selects the
// JSON handler (for log shippers) over the human-readable text one.
func NewLogger(json bool, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts))
}

// DefaultSlowThreshold is the latency above which LogIfSlow emits a
// warning for an operation.
const DefaultSlowThreshold = 250 * time.Millisecond

// slowThreshold is process-wide and adjustable (SetSlowThreshold).
var slowThreshold atomic.Int64

func init() { slowThreshold.Store(int64(DefaultSlowThreshold)) }

// SetSlowThreshold adjusts the slow-request threshold (<= 0 restores
// the default).
func SetSlowThreshold(d time.Duration) {
	if d <= 0 {
		d = DefaultSlowThreshold
	}
	slowThreshold.Store(int64(d))
}

// SlowThreshold returns the current slow-request threshold.
func SlowThreshold() time.Duration { return time.Duration(slowThreshold.Load()) }

// LogIfSlow emits a structured warning when an operation exceeded the
// slow threshold, carrying the trace ID so the operator can pull the
// flow's spans and audit records.
func LogIfSlow(op, trace string, d time.Duration) {
	if d < SlowThreshold() {
		return
	}
	Logger().Warn("slow operation", "op", op, "trace", trace, "duration", d.String())
}
