// Package telemetry is the runtime observability substrate of the CSS
// platform: a process-wide metrics registry with Prometheus text-format
// exposition, trace/correlation IDs threaded through the two-phase
// notification → request-for-details flow, an in-process span recorder
// for per-stage timings, and structured logging helpers.
//
// The paper's guarantee is procedural — every notification, request for
// details, PDP decision and gateway fetch must be observable (§4,
// Algorithms 1 & 2) — and this package makes the same flows observable
// at runtime: counters and histograms expose permit/deny rates and
// latencies live, while the trace ID minted at publication (or request)
// time correlates bus deliveries, PDP evaluations, gateway fetches and
// audit records that belong to one logical flow.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// kind discriminates metric families in the exposition.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds a process's metric families. Safe for concurrent use.
// The zero value is not usable; create registries with NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric with its labeled children.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histograms only, in seconds

	mu       sync.RWMutex
	children map[string]*child // keyed by joined label values
}

// child is one (label values) instance of a family.
type child struct {
	values []string // label values, parallel to family.labels

	count atomic.Uint64 // counter value / histogram observation count
	bits  atomic.Uint64 // gauge value / histogram sum (float64 bits)

	bucketCounts []atomic.Uint64 // histogram: per-bucket (non-cumulative)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry used by Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Daemon binaries register
// their metrics here; libraries accept a *Registry so tests can isolate.
func Default() *Registry { return defaultRegistry }

// register returns the family, creating it on first use. Re-registering
// with a different type or label set is a programming error and panics.
func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s%v (was %s%v)",
				name, k, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: k,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// labelKey joins label values into a map key. 0x1f (unit separator)
// cannot appear in well-formed label values used by this codebase.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

// get returns the child for the label values, creating it on first use.
func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	k := labelKey(values)
	f.mu.RLock()
	c, ok := f.children[k]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[k]; ok {
		return c
	}
	c = &child{values: append([]string(nil), values...)}
	if f.kind == kindHistogram {
		c.bucketCounts = make([]atomic.Uint64, len(f.buckets))
	}
	f.children[k] = c
	return c
}

// --- counter ----------------------------------------------------------------

// Counter is a monotonically increasing counter family, optionally
// labeled. All methods are safe for concurrent use.
type Counter struct{ f *family }

// Counter registers (or returns) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return &Counter{r.register(name, help, kindCounter, labels, nil)}
}

// Inc increments the counter child identified by the label values.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64, labelValues ...string) {
	c.f.get(labelValues).count.Add(n)
}

// Value returns the current value of one child (0 if never touched).
func (c *Counter) Value(labelValues ...string) uint64 {
	return c.f.get(labelValues).count.Load()
}

// --- gauge ------------------------------------------------------------------

// Gauge is a metric that can go up and down, optionally labeled.
type Gauge struct{ f *family }

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return &Gauge{r.register(name, help, kindGauge, labels, nil)}
}

// Set assigns the gauge value.
func (g *Gauge) Set(v float64, labelValues ...string) {
	g.f.get(labelValues).bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64, labelValues ...string) {
	c := g.f.get(labelValues)
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value(labelValues ...string) float64 {
	return math.Float64frombits(g.f.get(labelValues).bits.Load())
}

// --- histogram --------------------------------------------------------------

// DefBuckets are the default latency buckets, in seconds, tuned for the
// platform's in-process µs..s operation range.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// Histogram is a duration histogram family with fixed buckets,
// optionally labeled. Observations are recorded in seconds.
type Histogram struct{ f *family }

// Histogram registers (or returns) a histogram family with DefBuckets.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	return r.HistogramBuckets(name, help, DefBuckets, labels...)
}

// HistogramBuckets registers a histogram family with explicit upper
// bounds (in seconds, ascending).
func (r *Registry) HistogramBuckets(name, help string, buckets []float64, labels ...string) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return &Histogram{r.register(name, help, kindHistogram, labels, buckets)}
}

// Observe records one observation in seconds.
func (h *Histogram) Observe(seconds float64, labelValues ...string) {
	c := h.f.get(labelValues)
	for i, ub := range h.f.buckets {
		if seconds <= ub {
			c.bucketCounts[i].Add(1)
			break
		}
	}
	c.count.Add(1)
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + seconds)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a time.Duration observation.
func (h *Histogram) ObserveDuration(d time.Duration, labelValues ...string) {
	h.Observe(d.Seconds(), labelValues...)
}

// Count returns the observation count of one child.
func (h *Histogram) Count(labelValues ...string) uint64 {
	return h.f.get(labelValues).count.Load()
}

// Sum returns the observation sum (seconds) of one child.
func (h *Histogram) Sum(labelValues ...string) float64 {
	return math.Float64frombits(h.f.get(labelValues).bits.Load())
}

// --- exposition -------------------------------------------------------------

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families and children in stable sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*child, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.RUnlock()
	if len(children) == 0 {
		return nil
	}

	var b strings.Builder
	if f.help != "" {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
	for _, c := range children {
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(f.labels, c.values, "", 0), c.count.Load())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, c.values, "", 0),
				formatFloat(math.Float64frombits(c.bits.Load())))
		case kindHistogram:
			var cum uint64
			for i, ub := range f.buckets {
				cum += c.bucketCounts[i].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.values, "le", ub), cum)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.values, "le", math.Inf(1)), c.count.Load())
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(f.labels, c.values, "", 0),
				formatFloat(math.Float64frombits(c.bits.Load())))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(f.labels, c.values, "", 0), c.count.Load())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelString renders {k="v",...}, optionally appending an le bound.
func labelString(names, values []string, leName string, le float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslashes, quotes and newlines exactly as the
		// Prometheus text format requires.
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", leName, formatFloat(le))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders floats the way Prometheus clients do: +Inf for
// infinity, shortest decimal otherwise.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
