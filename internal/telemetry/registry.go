// Package telemetry is the runtime observability substrate of the CSS
// platform: a process-wide metrics registry with Prometheus text-format
// exposition, trace/correlation IDs threaded through the two-phase
// notification → request-for-details flow, an in-process span recorder
// for per-stage timings, and structured logging helpers.
//
// The paper's guarantee is procedural — every notification, request for
// details, PDP decision and gateway fetch must be observable (§4,
// Algorithms 1 & 2) — and this package makes the same flows observable
// at runtime: counters and histograms expose permit/deny rates and
// latencies live, while the trace ID minted at publication (or request)
// time correlates bus deliveries, PDP evaluations, gateway fetches and
// audit records that belong to one logical flow.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// kind discriminates metric families in the exposition.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds a process's metric families. Safe for concurrent use.
// The zero value is not usable; create registries with NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric with its labeled children.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histograms only, in seconds

	mu       sync.RWMutex
	children map[string]*child // keyed by joined label values
}

// child is one (label values) instance of a family.
type child struct {
	values []string // label values, parallel to family.labels

	count atomic.Uint64 // counter value / histogram observation count
	bits  atomic.Uint64 // gauge value (float64 bits)

	// sumNanos is the histogram observation sum in integer nanoseconds:
	// a single atomic add on the observe hot path, where a float64 sum
	// would need a compare-and-swap loop that spins under the 16-way
	// fan-out of a publish. Sub-nanosecond precision is irrelevant for
	// latency histograms; the float sum is reconstructed at scrape time.
	sumNanos atomic.Int64

	bucketCounts []atomic.Uint64 // histogram: per-bucket (non-cumulative)

	// exemplars holds, per bucket (plus one +Inf slot at the end), the
	// most recently sampled traced observation. Stores are sampled
	// 1-in-exemplarInterval (riding the observation count, no extra
	// atomic) once a slot is occupied, bounding hot-path allocation to
	// ~1 pointer write per 8 traced observations.
	exemplars []atomic.Pointer[Exemplar] // histogram: per bucket + +Inf
}

// Exemplar links a histogram bucket to a recent trace that landed in
// it, in the OpenMetrics exemplar spirit: a p99 spike on /metrics
// becomes a concrete trace ID to pull up in css-trace.
type Exemplar struct {
	Trace string    // trace ID of the sampled observation
	Value float64   // observed value, seconds
	At    time.Time // when it was observed
}

// exemplarInterval samples 1-in-8 traced observations per child once
// every bucket slot has been seeded.
const exemplarInterval = 8

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry used by Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Daemon binaries register
// their metrics here; libraries accept a *Registry so tests can isolate.
func Default() *Registry { return defaultRegistry }

// register returns the family, creating it on first use. Re-registering
// with a different type or label set is a programming error and panics.
func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s%v (was %s%v)",
				name, k, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: k,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// labelKey joins label values into a map key. 0x1f (unit separator)
// cannot appear in well-formed label values used by this codebase.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

// get returns the child for the label values, creating it on first use.
func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	k := labelKey(values)
	f.mu.RLock()
	c, ok := f.children[k]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[k]; ok {
		return c
	}
	c = &child{values: append([]string(nil), values...)}
	if f.kind == kindHistogram {
		c.bucketCounts = make([]atomic.Uint64, len(f.buckets))
		c.exemplars = make([]atomic.Pointer[Exemplar], len(f.buckets)+1)
	}
	f.children[k] = c
	return c
}

// --- counter ----------------------------------------------------------------

// Counter is a monotonically increasing counter family, optionally
// labeled. All methods are safe for concurrent use.
type Counter struct{ f *family }

// Counter registers (or returns) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return &Counter{r.register(name, help, kindCounter, labels, nil)}
}

// Inc increments the counter child identified by the label values.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64, labelValues ...string) {
	c.f.get(labelValues).count.Add(n)
}

// Value returns the current value of one child (0 if never touched).
func (c *Counter) Value(labelValues ...string) uint64 {
	return c.f.get(labelValues).count.Load()
}

// --- gauge ------------------------------------------------------------------

// Gauge is a metric that can go up and down, optionally labeled.
type Gauge struct{ f *family }

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return &Gauge{r.register(name, help, kindGauge, labels, nil)}
}

// Set assigns the gauge value.
func (g *Gauge) Set(v float64, labelValues ...string) {
	g.f.get(labelValues).bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64, labelValues ...string) {
	c := g.f.get(labelValues)
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value(labelValues ...string) float64 {
	return math.Float64frombits(g.f.get(labelValues).bits.Load())
}

// --- histogram --------------------------------------------------------------

// DefBuckets are the default latency buckets, in seconds, tuned for the
// platform's in-process µs..s operation range.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// Histogram is a duration histogram family with fixed buckets,
// optionally labeled. Observations are recorded in seconds.
type Histogram struct{ f *family }

// Histogram registers (or returns) a histogram family with DefBuckets.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	return r.HistogramBuckets(name, help, DefBuckets, labels...)
}

// HistogramBuckets registers a histogram family with explicit upper
// bounds (in seconds, ascending).
func (r *Registry) HistogramBuckets(name, help string, buckets []float64, labels ...string) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return &Histogram{r.register(name, help, kindHistogram, labels, buckets)}
}

// Observe records one observation in seconds.
func (h *Histogram) Observe(seconds float64, labelValues ...string) {
	h.observeChild(h.f.get(labelValues), seconds, "")
}

// ObserveDuration records a time.Duration observation.
func (h *Histogram) ObserveDuration(d time.Duration, labelValues ...string) {
	h.Observe(d.Seconds(), labelValues...)
}

// ObserveTrace records an observation and, when trace is non-empty,
// considers it as the exemplar of the bucket it lands in. A bucket's
// first traced observation always seeds its exemplar; after that,
// stores are sampled 1-in-exemplarInterval to keep the hot path cheap.
func (h *Histogram) ObserveTrace(seconds float64, trace string, labelValues ...string) {
	h.observeChild(h.f.get(labelValues), seconds, trace)
}

func (h *Histogram) observeChild(c *child, seconds float64, trace string) {
	idx := len(h.f.buckets) // +Inf slot
	for i, ub := range h.f.buckets {
		if seconds <= ub {
			c.bucketCounts[i].Add(1)
			idx = i
			break
		}
	}
	n := c.count.Add(1)
	c.sumNanos.Add(int64(seconds * 1e9))
	if trace == "" {
		return
	}
	if c.exemplars[idx].Load() == nil || n%exemplarInterval == 0 {
		c.exemplars[idx].Store(&Exemplar{Trace: trace, Value: seconds, At: time.Now()})
	}
}

// ObserveDurationTrace records a traced duration observation.
func (h *Histogram) ObserveDurationTrace(d time.Duration, trace string, labelValues ...string) {
	h.ObserveTrace(d.Seconds(), trace, labelValues...)
}

// HistogramChild is one pre-resolved labeled series of a histogram.
// Observing through it skips the per-call variadic slice, label join
// and child map lookup — worth holding on to for per-span hooks that
// fire many times per request. Obtain via Histogram.Child; safe for
// concurrent use.
type HistogramChild struct {
	h *Histogram
	c *child
}

// Child resolves (creating on first use) the series for labelValues.
func (h *Histogram) Child(labelValues ...string) *HistogramChild {
	return &HistogramChild{h: h, c: h.f.get(labelValues)}
}

// ObserveTrace records a traced observation in seconds on this series.
func (hc *HistogramChild) ObserveTrace(seconds float64, trace string) {
	hc.h.observeChild(hc.c, seconds, trace)
}

// ObserveDurationTrace records a traced duration observation.
func (hc *HistogramChild) ObserveDurationTrace(d time.Duration, trace string) {
	hc.h.observeChild(hc.c, d.Seconds(), trace)
}

// Exemplars returns the currently held exemplars of one child, keyed by
// bucket upper bound (+Inf for the overflow slot). Buckets that never
// saw a traced observation are absent.
func (h *Histogram) Exemplars(labelValues ...string) map[float64]Exemplar {
	c := h.f.get(labelValues)
	out := make(map[float64]Exemplar)
	for i := range c.exemplars {
		if e := c.exemplars[i].Load(); e != nil {
			ub := math.Inf(1)
			if i < len(h.f.buckets) {
				ub = h.f.buckets[i]
			}
			out[ub] = *e
		}
	}
	return out
}

// Buckets returns the histogram's upper bounds (in seconds).
func (h *Histogram) Buckets() []float64 {
	return append([]float64(nil), h.f.buckets...)
}

// BucketCounts returns the per-bucket (non-cumulative) counts and the
// total observation count of one child. Observations above the last
// bound are counted only in total.
func (h *Histogram) BucketCounts(labelValues ...string) (counts []uint64, total uint64) {
	c := h.f.get(labelValues)
	counts = make([]uint64, len(c.bucketCounts))
	for i := range c.bucketCounts {
		counts[i] = c.bucketCounts[i].Load()
	}
	return counts, c.count.Load()
}

// Count returns the observation count of one child.
func (h *Histogram) Count(labelValues ...string) uint64 {
	return h.f.get(labelValues).count.Load()
}

// Sum returns the observation sum (seconds) of one child.
func (h *Histogram) Sum(labelValues ...string) float64 {
	return float64(h.f.get(labelValues).sumNanos.Load()) / 1e9
}

// --- exposition -------------------------------------------------------------

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families and children in stable sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*child, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.RUnlock()
	if len(children) == 0 {
		return nil
	}

	var b strings.Builder
	if f.help != "" {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
	for _, c := range children {
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(f.labels, c.values, "", 0), c.count.Load())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, c.values, "", 0),
				formatFloat(math.Float64frombits(c.bits.Load())))
		case kindHistogram:
			var cum uint64
			for i, ub := range f.buckets {
				cum += c.bucketCounts[i].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d%s\n", f.name, labelString(f.labels, c.values, "le", ub), cum, exemplarSuffix(c, i))
			}
			fmt.Fprintf(&b, "%s_bucket%s %d%s\n", f.name, labelString(f.labels, c.values, "le", math.Inf(1)), c.count.Load(), exemplarSuffix(c, len(f.buckets)))
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(f.labels, c.values, "", 0),
				formatFloat(float64(c.sumNanos.Load())/1e9))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(f.labels, c.values, "", 0), c.count.Load())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// exemplarSuffix renders an OpenMetrics-style exemplar annotation
// (` # {trace_id="..."} value timestamp`) for bucket slot i, or "".
func exemplarSuffix(c *child, i int) string {
	if c.exemplars == nil || i >= len(c.exemplars) {
		return ""
	}
	e := c.exemplars[i].Load()
	if e == nil {
		return ""
	}
	return fmt.Sprintf(` # {trace_id=%q} %s %d.%03d`, e.Trace, formatFloat(e.Value),
		e.At.Unix(), e.At.Nanosecond()/int(time.Millisecond))
}

// labelString renders {k="v",...}, optionally appending an le bound.
func labelString(names, values []string, leName string, le float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslashes, quotes and newlines exactly as the
		// Prometheus text format requires.
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", leName, formatFloat(le))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders floats the way Prometheus clients do: +Inf for
// infinity, shortest decimal otherwise.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
