package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"
)

// TraceHeader is the HTTP header carrying the trace/correlation ID
// across process boundaries: clients may set it; servers echo it on
// responses and mint a fresh ID when absent.
const TraceHeader = "X-Trace-Id"

// TraceparentHeader is the W3C trace-context header carrying both the
// trace ID and the caller's span ID, so spans opened on the server side
// parent correctly under the client's span. X-Trace-Id remains as the
// human-friendly legacy header; traceparent wins when both are present.
const TraceparentHeader = "traceparent"

// FormatTraceparent renders a W3C traceparent value. The platform's
// 16-hex trace IDs are left-padded to the 32-hex wire width; span is a
// 16-hex span ID ("" becomes all-zero, meaning "no parent").
func FormatTraceparent(trace, span string) string {
	if len(trace) < 32 {
		trace = zeros32[:32-len(trace)] + trace
	}
	if span == "" {
		span = zeros32[:16]
	}
	return "00-" + trace + "-" + span + "-01"
}

const zeros32 = "00000000000000000000000000000000"

// ParseTraceparent extracts (trace, parent span) from a traceparent
// value. Padded 16-hex platform trace IDs are unpadded back; foreign
// full-width IDs are kept verbatim. ok is false on malformed input.
func ParseTraceparent(v string) (trace, span string, ok bool) {
	// version "-" trace(32) "-" span(16) "-" flags
	if len(v) < 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return "", "", false
	}
	if v[:2] == "ff" {
		return "", "", false
	}
	trace, span = v[3:35], v[36:52]
	if !isHex(trace) || !isHex(span) {
		return "", "", false
	}
	if trace == zeros32 || span == zeros32[:16] {
		return "", "", false
	}
	if trace[:16] == zeros32[:16] {
		trace = trace[16:]
	}
	return trace, span, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// HTTPMetrics are the instruments the middleware records into.
type HTTPMetrics struct {
	requests *Counter   // route, method, code
	latency  *Histogram // route
	inflight *Gauge
}

// NewHTTPMetrics registers the HTTP server metrics on reg under the
// given subsystem prefix (e.g. "css" → css_http_requests_total).
func NewHTTPMetrics(reg *Registry, subsystem string) *HTTPMetrics {
	if subsystem == "" {
		subsystem = "css"
	}
	return &HTTPMetrics{
		requests: reg.Counter(subsystem+"_http_requests_total",
			"HTTP requests served, by route, method and status code.",
			"route", "method", "code"),
		latency: reg.Histogram(subsystem+"_http_request_seconds",
			"HTTP request latency in seconds, by route.", "route"),
		inflight: reg.Gauge(subsystem+"_http_inflight_requests",
			"HTTP requests currently being served."),
	}
}

// statusWriter captures the response status for the metrics labels.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Middleware wraps next with request instrumentation: per-route latency
// and status counters, in-flight gauge, trace ID extraction/minting
// (request context + response header), and the slow-request log.
// Equivalent to TracingMiddleware with no tracer.
func Middleware(m *HTTPMetrics, next http.Handler) http.Handler {
	return TracingMiddleware(m, nil, next)
}

// TracingMiddleware is Middleware plus distributed tracing: it parses
// the W3C traceparent header (falling back to X-Trace-Id, minting when
// both are absent), attaches the tracer to the request context, opens a
// server span parented under the caller's span, and records the
// request latency with the trace as exemplar. tracer may be nil.
func TracingMiddleware(m *HTTPMetrics, tracer *Tracer, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace, parent, ok := ParseTraceparent(r.Header.Get(TraceparentHeader))
		if !ok {
			trace = r.Header.Get(TraceHeader)
			if trace == "" {
				trace = NewTraceID()
			}
		}
		w.Header().Set(TraceHeader, trace)
		route := r.URL.Path

		// Trace, caller's span and tracer attach in one context value
		// (in-package fast path; external callers use WithTrace et al).
		ctx := context.WithValue(r.Context(), ctxKey{},
			&traceCtx{trace: trace, span: parent, tracer: tracer})
		var span *ActiveSpan
		if tracer != nil && spanWorthy(route) {
			ctx, span = tracer.StartSpan(ctx, "http "+r.Method+" "+route)
		}
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w}
		m.inflight.Add(1)
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		m.inflight.Add(-1)

		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if span != nil {
			if sw.status >= 500 {
				span.SetError(fmt.Errorf("http status %d", sw.status))
			} else if sw.status >= 400 {
				span.SetAttr("status", itoa(sw.status))
			}
			span.End()
		}
		m.requests.Inc(route, r.Method, itoa(sw.status))
		m.latency.ObserveDurationTrace(elapsed, trace, route)
		LogIfSlow("http "+r.Method+" "+route, trace, elapsed)
	})
}

// spanWorthy excludes scrape/probe/debug endpoints from span creation:
// they would dominate the ring without ever being part of a flow.
func spanWorthy(route string) bool {
	switch route {
	case "/metrics", "/healthz", "/slo":
		return false
	}
	return len(route) < 7 || route[:7] != "/debug/"
}

// itoa formats a 3-digit HTTP status without fmt.
func itoa(n int) string {
	if n < 0 || n > 999 {
		n = 0
	}
	return string([]byte{byte('0' + n/100), byte('0' + n/10%10), byte('0' + n%10)})
}

// SpansHandler serves the span ring as JSONL (one SpanRecord per
// line), newest last. Filters: ?trace=<id>, ?stage=<prefix>,
// ?limit=<n> (most recent n after filtering). proc labels each record
// with the serving process. This is what cmd/css-trace scrapes when
// pointed at a live daemon instead of an export file.
func SpansHandler(log *SpanLog, proc string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		trace, stagePrefix := q.Get("trace"), q.Get("stage")
		limit := 0
		if s := q.Get("limit"); s != "" {
			fmt.Sscanf(s, "%d", &limit)
		}
		spans := log.Snapshot()
		out := spans[:0]
		for _, s := range spans {
			if trace != "" && s.Trace != trace {
				continue
			}
			if stagePrefix != "" && !hasPrefix(s.Stage, stagePrefix) {
				continue
			}
			out = append(out, s)
		}
		if limit > 0 && len(out) > limit {
			out = out[len(out)-limit:]
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, s := range out {
			enc.Encode(ToRecord(s, proc))
		}
	})
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// MetricsHandler serves the registry in Prometheus text format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
}

// HealthzHandler serves a liveness/readiness probe: 200 "ok" while
// check returns nil, 503 with the error otherwise. A nil check is
// always healthy.
func HealthzHandler(check func() error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if check != nil {
			if err := check(); err != nil {
				http.Error(w, "unhealthy: "+err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
}

// HealthzDetailHandler is HealthzHandler with an optional detail
// function: its key/value pairs are appended to the probe body as
// sorted "key: value" lines (circuit breaker states, outbox depth, …),
// so degraded modes are visible from one curl. The detail lines are
// printed for unhealthy responses too — that is when they matter most.
func HealthzDetailHandler(check func() error, detail func() map[string]string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		status := http.StatusOK
		head := "ok\n"
		if check != nil {
			if err := check(); err != nil {
				status = http.StatusServiceUnavailable
				head = "unhealthy: " + err.Error() + "\n"
			}
		}
		w.WriteHeader(status)
		io.WriteString(w, head)
		if detail == nil {
			return
		}
		kv := detail()
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s: %s\n", k, kv[k])
		}
	})
}

// RegisterPprof mounts the net/http/pprof handlers on mux under
// /debug/pprof/. Profiling is opt-in per binary (-pprof): the endpoints
// expose stacks and heap contents, so they must never be reachable on a
// deployment's public interface.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
