package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"
)

// TraceHeader is the HTTP header carrying the trace/correlation ID
// across process boundaries: clients may set it; servers echo it on
// responses and mint a fresh ID when absent.
const TraceHeader = "X-Trace-Id"

// HTTPMetrics are the instruments the middleware records into.
type HTTPMetrics struct {
	requests *Counter   // route, method, code
	latency  *Histogram // route
	inflight *Gauge
}

// NewHTTPMetrics registers the HTTP server metrics on reg under the
// given subsystem prefix (e.g. "css" → css_http_requests_total).
func NewHTTPMetrics(reg *Registry, subsystem string) *HTTPMetrics {
	if subsystem == "" {
		subsystem = "css"
	}
	return &HTTPMetrics{
		requests: reg.Counter(subsystem+"_http_requests_total",
			"HTTP requests served, by route, method and status code.",
			"route", "method", "code"),
		latency: reg.Histogram(subsystem+"_http_request_seconds",
			"HTTP request latency in seconds, by route.", "route"),
		inflight: reg.Gauge(subsystem+"_http_inflight_requests",
			"HTTP requests currently being served."),
	}
}

// statusWriter captures the response status for the metrics labels.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Middleware wraps next with request instrumentation: per-route latency
// and status counters, in-flight gauge, trace ID extraction/minting
// (request context + response header), and the slow-request log.
func Middleware(m *HTTPMetrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get(TraceHeader)
		if trace == "" {
			trace = NewTraceID()
		}
		w.Header().Set(TraceHeader, trace)
		r = r.WithContext(WithTrace(r.Context(), trace))

		sw := &statusWriter{ResponseWriter: w}
		m.inflight.Add(1)
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		m.inflight.Add(-1)

		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		route := r.URL.Path
		m.requests.Inc(route, r.Method, itoa(sw.status))
		m.latency.ObserveDuration(elapsed, route)
		LogIfSlow("http "+r.Method+" "+route, trace, elapsed)
	})
}

// itoa formats a 3-digit HTTP status without fmt.
func itoa(n int) string {
	if n < 0 || n > 999 {
		n = 0
	}
	return string([]byte{byte('0' + n/100), byte('0' + n/10%10), byte('0' + n%10)})
}

// MetricsHandler serves the registry in Prometheus text format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
}

// HealthzHandler serves a liveness/readiness probe: 200 "ok" while
// check returns nil, 503 with the error otherwise. A nil check is
// always healthy.
func HealthzHandler(check func() error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if check != nil {
			if err := check(); err != nil {
				http.Error(w, "unhealthy: "+err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
}

// HealthzDetailHandler is HealthzHandler with an optional detail
// function: its key/value pairs are appended to the probe body as
// sorted "key: value" lines (circuit breaker states, outbox depth, …),
// so degraded modes are visible from one curl. The detail lines are
// printed for unhealthy responses too — that is when they matter most.
func HealthzDetailHandler(check func() error, detail func() map[string]string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		status := http.StatusOK
		head := "ok\n"
		if check != nil {
			if err := check(); err != nil {
				status = http.StatusServiceUnavailable
				head = "unhealthy: " + err.Error() + "\n"
			}
		}
		w.WriteHeader(status)
		io.WriteString(w, head)
		if detail == nil {
			return
		}
		kv := detail()
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s: %s\n", k, kv[k])
		}
	})
}

// RegisterPprof mounts the net/http/pprof handlers on mux under
// /debug/pprof/. Profiling is opt-in per binary (-pprof): the endpoints
// expose stacks and heap contents, so they must never be reachable on a
// deployment's public interface.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
