package telemetry

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareRecordsRouteStatusLatency(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "css")
	h := Middleware(m, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			w.WriteHeader(http.StatusForbidden)
			return
		}
		w.Write([]byte("ok"))
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	if _, err := http.Get(srv.URL + "/ws/publish"); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(srv.URL + "/ws/publish"); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(srv.URL + "/boom"); err != nil {
		t.Fatal(err)
	}

	if got := m.requests.Value("/ws/publish", "GET", "200"); got != 2 {
		t.Errorf("requests{/ws/publish,GET,200} = %d, want 2", got)
	}
	if got := m.requests.Value("/boom", "GET", "403"); got != 1 {
		t.Errorf("requests{/boom,GET,403} = %d, want 1", got)
	}
	if got := m.latency.Count("/ws/publish"); got != 2 {
		t.Errorf("latency count = %d, want 2", got)
	}
	out := expose(t, reg)
	for _, want := range []string{
		`css_http_requests_total{route="/boom",method="GET",code="403"} 1`,
		`css_http_requests_total{route="/ws/publish",method="GET",code="200"} 2`,
		`css_http_request_seconds_count{route="/ws/publish"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMiddlewareTraceHeader(t *testing.T) {
	var seen string
	h := Middleware(NewHTTPMetrics(NewRegistry(), "css"),
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			seen = TraceFrom(r.Context())
		}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Without a header the middleware mints one and echoes it back.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get(TraceHeader)
	if minted == "" || minted != seen {
		t.Fatalf("minted trace %q, handler saw %q", minted, seen)
	}

	// A caller-supplied header is honored verbatim.
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set(TraceHeader, "cafebabe00000001")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != "cafebabe00000001" {
		t.Fatalf("echoed trace = %q", got)
	}
	if seen != "cafebabe00000001" {
		t.Fatalf("handler saw %q", seen)
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("css_publish_total", "P.").Inc()
	rec := httptest.NewRecorder()
	MetricsHandler(reg).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "css_publish_total 1") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}

func TestHealthzHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	HealthzHandler(func() error { return nil }).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthy: code=%d body=%q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	HealthzHandler(func() error { return errors.New("closed") }).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "closed") {
		t.Fatalf("unhealthy: code=%d body=%q", rec.Code, rec.Body.String())
	}
}

func TestRegisterPprof(t *testing.T) {
	mux := http.NewServeMux()
	RegisterPprof(mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof index status = %d", rec.Code)
	}
}
