package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("css_publish_total", "Notifications accepted.")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("Value = %d, want 3", got)
	}
	out := expose(t, r)
	for _, want := range []string{
		"# HELP css_publish_total Notifications accepted.\n",
		"# TYPE css_publish_total counter\n",
		"css_publish_total 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("css_detail_decisions_total", "Decisions.", "outcome")
	c.Inc("permit")
	c.Inc("deny")
	c.Inc("deny")
	out := expose(t, r)
	if !strings.Contains(out, `css_detail_decisions_total{outcome="deny"} 2`) {
		t.Errorf("missing deny sample:\n%s", out)
	}
	if !strings.Contains(out, `css_detail_decisions_total{outcome="permit"} 1`) {
		t.Errorf("missing permit sample:\n%s", out)
	}
	// Children render in sorted label order: deny before permit.
	if strings.Index(out, `outcome="deny"`) > strings.Index(out, `outcome="permit"`) {
		t.Errorf("children not sorted:\n%s", out)
	}
}

func TestGaugeExposition(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("css_http_inflight_requests", "In flight.")
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("Value = %v, want 3", got)
	}
	out := expose(t, r)
	if !strings.Contains(out, "# TYPE css_http_inflight_requests gauge\n") {
		t.Errorf("missing gauge TYPE line:\n%s", out)
	}
	if !strings.Contains(out, "css_http_inflight_requests 3\n") {
		t.Errorf("missing gauge sample:\n%s", out)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("css_publish_seconds", "Publish latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // ≤ 0.001
	h.Observe(0.05)   // ≤ 0.1
	h.Observe(3)      // > all buckets → only +Inf
	if got := h.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if got := h.Sum(); got < 3.05 || got > 3.06 {
		t.Fatalf("Sum = %v, want ~3.0505", got)
	}
	out := expose(t, r)
	for _, want := range []string{
		"# TYPE css_publish_seconds histogram\n",
		`css_publish_seconds_bucket{le="0.001"} 1`,
		`css_publish_seconds_bucket{le="0.01"} 1`,
		`css_publish_seconds_bucket{le="0.1"} 2`,
		`css_publish_seconds_bucket{le="+Inf"} 3`,
		"css_publish_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("css_delivery_seconds", "Delivery latency.")
	h.ObserveDuration(2 * time.Millisecond)
	if got := h.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	if s := h.Sum(); s < 0.0019 || s > 0.0021 {
		t.Fatalf("Sum = %v, want ~0.002", s)
	}
}

func TestEmptyFamiliesOmitted(t *testing.T) {
	r := NewRegistry()
	r.Counter("css_never_touched_total", "Never incremented.", "label")
	if out := expose(t, r); out != "" {
		t.Fatalf("empty labeled family should render nothing, got:\n%s", out)
	}
}

func TestReRegisterReturnsSameFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("css_x_total", "X.")
	b := r.Counter("css_x_total", "X.")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Fatalf("shared family Value = %d, want 2", got)
	}
}

func TestReRegisterTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("css_x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	r.Gauge("css_x_total", "X.")
}

func TestFamiliesSortedByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "Z.").Inc()
	r.Counter("aaa_total", "A.").Inc()
	out := expose(t, r)
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("css_esc_total", "Esc.", "route").Inc(`pa"th\n`)
	out := expose(t, r)
	if !strings.Contains(out, `route="pa\"th\\n"`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("css_conc_total", "Concurrent.", "worker")
	h := r.Histogram("css_conc_seconds", "Concurrent.")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			name := string(rune('a' + id))
			for j := 0; j < 1000; j++ {
				c.Inc(name)
				h.Observe(0.001)
			}
		}(i)
	}
	wg.Wait()
	var total uint64
	for i := 0; i < 8; i++ {
		total += c.Value(string(rune('a' + i)))
	}
	if total != 8000 {
		t.Fatalf("total = %d, want 8000", total)
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
