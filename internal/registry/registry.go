// Package registry implements the event catalog of the CSS platform —
// the role the paper assigns to an ebXML registry (§3-§4): the catalog of
// all event classes the data producers can generate, "visible to any
// candidate data consumer that has previously signed a contract with the
// data controller", together with the registration of the participating
// producers and consumers themselves.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/schema"
)

// Errors reported by the registry.
var (
	ErrNotFound   = errors.New("registry: not found")
	ErrNotMember  = errors.New("registry: not a platform member")
	ErrDuplicate  = errors.New("registry: already registered")
	ErrNotOwner   = errors.New("registry: class owned by another producer")
	ErrStaleClass = errors.New("registry: schema version not newer than the declared one")
)

// Producer is a data source that signed a cooperation contract with the
// data controller.
type Producer struct {
	ID       event.ProducerID
	Name     string
	JoinedAt time.Time
}

// Consumer is a data consumer organization admitted to the platform.
type Consumer struct {
	Actor    event.Actor
	Name     string
	JoinedAt time.Time
}

// Declaration records that a producer can generate a class of events with
// a given schema ("The data producer declares the ability to generate a
// certain type of event ... The structure of the event is specified by an
// XSD that is 'installed' in an event catalog module", §5).
type Declaration struct {
	Class      event.ClassID
	Producer   event.ProducerID
	Schema     *schema.Schema
	DeclaredAt time.Time
}

// Registry is the event catalog plus the membership roster. Safe for
// concurrent use. In a sharded deployment it additionally serves the
// cluster's versioned shard map (shardmap.go) — the registry is the
// component every participant already queries for platform metadata,
// so the map rides the same channel.
type Registry struct {
	mu        sync.RWMutex
	producers map[event.ProducerID]*Producer
	consumers map[event.Actor]*Consumer
	classes   map[event.ClassID]*Declaration

	shardMap atomic.Pointer[cluster.Map]
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		producers: make(map[event.ProducerID]*Producer),
		consumers: make(map[event.Actor]*Consumer),
		classes:   make(map[event.ClassID]*Declaration),
	}
}

// RegisterProducer admits a data source to the platform.
func (r *Registry) RegisterProducer(id event.ProducerID, name string) error {
	if id == "" {
		return errors.New("registry: empty producer id")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.producers[id]; dup {
		return fmt.Errorf("%w: producer %s", ErrDuplicate, id)
	}
	r.producers[id] = &Producer{ID: id, Name: name, JoinedAt: time.Now()}
	return nil
}

// RegisterConsumer admits a consumer organization to the platform.
// Registering an organization admits all of its departments.
func (r *Registry) RegisterConsumer(actor event.Actor, name string) error {
	if err := actor.Validate(); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.consumers[actor]; dup {
		return fmt.Errorf("%w: consumer %s", ErrDuplicate, actor)
	}
	r.consumers[actor] = &Consumer{Actor: actor, Name: name, JoinedAt: time.Now()}
	return nil
}

// HasProducer reports whether a producer is a member.
func (r *Registry) HasProducer(id event.ProducerID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.producers[id]
	return ok
}

// HasConsumer reports whether an actor is admitted: either registered
// itself or a department of a registered organization.
func (r *Registry) HasConsumer(actor event.Actor) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for registered := range r.consumers {
		if registered.Contains(actor) {
			return true
		}
	}
	return false
}

// DeclareClass installs (or upgrades) an event class declaration. The
// producer must be a member; a class already declared by another producer
// cannot be taken over; re-declaring requires a strictly newer schema
// version.
func (r *Registry) DeclareClass(producer event.ProducerID, s *schema.Schema) error {
	if s == nil {
		return errors.New("registry: nil schema")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.producers[producer]; !ok {
		return fmt.Errorf("%w: producer %s", ErrNotMember, producer)
	}
	if existing, ok := r.classes[s.Class()]; ok {
		if existing.Producer != producer {
			return fmt.Errorf("%w: %s is owned by %s", ErrNotOwner, s.Class(), existing.Producer)
		}
		if s.Version() <= existing.Schema.Version() {
			return fmt.Errorf("%w: %s v%d <= v%d", ErrStaleClass, s.Class(), s.Version(), existing.Schema.Version())
		}
	}
	r.classes[s.Class()] = &Declaration{
		Class:      s.Class(),
		Producer:   producer,
		Schema:     s,
		DeclaredAt: time.Now(),
	}
	return nil
}

// Class returns the declaration of an event class.
func (r *Registry) Class(id event.ClassID) (Declaration, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.classes[id]
	if !ok {
		return Declaration{}, fmt.Errorf("%w: class %s", ErrNotFound, id)
	}
	return *d, nil
}

// Schema returns the schema of an event class.
func (r *Registry) Schema(id event.ClassID) (*schema.Schema, error) {
	d, err := r.Class(id)
	if err != nil {
		return nil, err
	}
	return d.Schema, nil
}

// Classes returns every declaration, sorted by class id.
func (r *Registry) Classes() []Declaration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Declaration, 0, len(r.classes))
	for _, d := range r.classes {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// ClassesByProducer returns the declarations of one producer, sorted by
// class id.
func (r *Registry) ClassesByProducer(id event.ProducerID) []Declaration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Declaration
	for _, d := range r.classes {
		if d.Producer == id {
			out = append(out, *d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// Search finds declarations whose class id, documentation or field
// documentation contains the keyword (case-insensitive) — the catalog
// discovery a candidate consumer performs before subscribing.
func (r *Registry) Search(keyword string) []Declaration {
	needle := strings.ToLower(keyword)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Declaration
	for _, d := range r.classes {
		if declarationMatches(d, needle) {
			out = append(out, *d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

func declarationMatches(d *Declaration, needle string) bool {
	if strings.Contains(strings.ToLower(string(d.Class)), needle) {
		return true
	}
	if strings.Contains(strings.ToLower(d.Schema.Doc()), needle) {
		return true
	}
	for _, f := range d.Schema.Fields() {
		if strings.Contains(strings.ToLower(string(f.Name)), needle) ||
			strings.Contains(strings.ToLower(f.Doc), needle) {
			return true
		}
	}
	return false
}

// Producers returns all registered producers, sorted by id.
func (r *Registry) Producers() []Producer {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Producer, 0, len(r.producers))
	for _, p := range r.producers {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Consumers returns all registered consumers, sorted by actor.
func (r *Registry) Consumers() []Consumer {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Consumer, 0, len(r.consumers))
	for _, c := range r.consumers {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Actor < out[j].Actor })
	return out
}
