package registry

import "repro/internal/cluster"

// SetShardMap installs (or replaces) the cluster shard map the
// registry serves. Versions must be strictly increasing: installing a
// map whose version is not newer than the current one fails with
// cluster.ErrStaleMap, so a lagging peer can never roll the cluster
// back to an older assignment. The first map installs unconditionally.
func (r *Registry) SetShardMap(m *cluster.Map) error {
	if m == nil {
		return cluster.ErrStaleMap
	}
	for {
		cur := r.shardMap.Load()
		if cur != nil && m.Version() <= cur.Version() {
			if m.Equal(cur) {
				return nil // idempotent re-install of the same map
			}
			return cluster.ErrStaleMap
		}
		if r.shardMap.CompareAndSwap(cur, m) {
			return nil
		}
	}
}

// ShardMap returns the current shard map, or nil when the platform
// runs unsharded (the default single-controller deployment).
func (r *Registry) ShardMap() *cluster.Map {
	return r.shardMap.Load()
}
