package registry

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/schema"
)

func memberRegistry(t *testing.T) *Registry {
	t.Helper()
	r := New()
	if err := r.RegisterProducer("hospital-s-maria", "Hospital S. Maria"); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterConsumer("family-doctor", "Family doctors network"); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegisterProducer(t *testing.T) {
	r := memberRegistry(t)
	if !r.HasProducer("hospital-s-maria") {
		t.Error("registered producer not found")
	}
	if r.HasProducer("unknown") {
		t.Error("unknown producer found")
	}
	if err := r.RegisterProducer("hospital-s-maria", "again"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate producer = %v", err)
	}
	if err := r.RegisterProducer("", "x"); err == nil {
		t.Error("empty producer id accepted")
	}
	if got := r.Producers(); len(got) != 1 || got[0].Name != "Hospital S. Maria" {
		t.Errorf("Producers = %+v", got)
	}
}

func TestRegisterConsumer(t *testing.T) {
	r := memberRegistry(t)
	if !r.HasConsumer("family-doctor") {
		t.Error("registered consumer not found")
	}
	// Registering an org admits its departments.
	if err := r.RegisterConsumer("national-governance", "Gov"); err != nil {
		t.Fatal(err)
	}
	if !r.HasConsumer("national-governance/statistics") {
		t.Error("department of registered org not admitted")
	}
	if r.HasConsumer("unknown-org/dept") {
		t.Error("unknown consumer admitted")
	}
	if err := r.RegisterConsumer("bad//actor", "x"); err == nil {
		t.Error("invalid actor accepted")
	}
	if err := r.RegisterConsumer("family-doctor", "again"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate consumer = %v", err)
	}
	if got := r.Consumers(); len(got) != 2 {
		t.Errorf("Consumers = %+v", got)
	}
}

func TestDeclareClass(t *testing.T) {
	r := memberRegistry(t)
	if err := r.DeclareClass("hospital-s-maria", schema.BloodTest()); err != nil {
		t.Fatalf("DeclareClass: %v", err)
	}
	d, err := r.Class(schema.ClassBloodTest)
	if err != nil {
		t.Fatalf("Class: %v", err)
	}
	if d.Producer != "hospital-s-maria" || d.Schema.Version() != 1 || d.DeclaredAt.IsZero() {
		t.Errorf("declaration = %+v", d)
	}
	s, err := r.Schema(schema.ClassBloodTest)
	if err != nil || s.Class() != schema.ClassBloodTest {
		t.Errorf("Schema = %v, %v", s, err)
	}
	if _, err := r.Class("no.such-class"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown class = %v", err)
	}
}

func TestDeclareClassGuards(t *testing.T) {
	r := memberRegistry(t)
	if err := r.DeclareClass("not-a-member", schema.BloodTest()); !errors.Is(err, ErrNotMember) {
		t.Errorf("non-member declaration = %v", err)
	}
	if err := r.DeclareClass("hospital-s-maria", nil); err == nil {
		t.Error("nil schema accepted")
	}
	if err := r.DeclareClass("hospital-s-maria", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	// Another producer cannot take over the class.
	r.RegisterProducer("other-hospital", "Other")
	if err := r.DeclareClass("other-hospital", schema.BloodTest()); !errors.Is(err, ErrNotOwner) {
		t.Errorf("takeover = %v", err)
	}
	// Re-declaring the same version is stale.
	if err := r.DeclareClass("hospital-s-maria", schema.BloodTest()); !errors.Is(err, ErrStaleClass) {
		t.Errorf("same-version redeclare = %v", err)
	}
	// A newer version upgrades.
	v2 := schema.MustNew(schema.ClassBloodTest, 2, "blood test v2",
		schema.Field{Name: "patient-id", Type: schema.String, Required: true, Sensitivity: schema.Identifying},
		schema.Field{Name: "panel", Type: schema.String, Sensitivity: schema.Sensitive},
	)
	if err := r.DeclareClass("hospital-s-maria", v2); err != nil {
		t.Errorf("upgrade = %v", err)
	}
	if s, _ := r.Schema(schema.ClassBloodTest); s.Version() != 2 {
		t.Errorf("version after upgrade = %d", s.Version())
	}
}

func TestClassesListing(t *testing.T) {
	r := memberRegistry(t)
	r.RegisterProducer("municipality", "Municipality")
	r.DeclareClass("hospital-s-maria", schema.BloodTest())
	r.DeclareClass("hospital-s-maria", schema.Discharge())
	r.DeclareClass("municipality", schema.HomeCare())
	all := r.Classes()
	if len(all) != 3 {
		t.Fatalf("Classes = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Class <= all[i-1].Class {
			t.Error("Classes not sorted")
		}
	}
	mine := r.ClassesByProducer("hospital-s-maria")
	if len(mine) != 2 {
		t.Errorf("ClassesByProducer = %d", len(mine))
	}
}

func TestSearch(t *testing.T) {
	r := memberRegistry(t)
	r.DeclareClass("hospital-s-maria", schema.BloodTest())
	r.RegisterProducer("municipality", "Municipality")
	r.DeclareClass("municipality", schema.HomeCare())

	if got := r.Search("blood"); len(got) != 1 || got[0].Class != schema.ClassBloodTest {
		t.Errorf("Search(blood) = %+v", got)
	}
	// Match on schema doc text.
	if got := r.Search("home care service delivered"); len(got) != 1 {
		t.Errorf("Search(doc text) = %d", len(got))
	}
	// Match on field name/doc.
	if got := r.Search("hemoglobin"); len(got) != 1 {
		t.Errorf("Search(field) = %d", len(got))
	}
	// Case-insensitive.
	if got := r.Search("BLOOD"); len(got) != 1 {
		t.Errorf("Search(BLOOD) = %d", len(got))
	}
	if got := r.Search("zebra"); len(got) != 0 {
		t.Errorf("Search(zebra) = %d", len(got))
	}
	// patient-id appears in both schemas.
	if got := r.Search("patient-id"); len(got) != 2 {
		t.Errorf("Search(patient-id) = %d", len(got))
	}
}

func TestConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pid := event.ProducerID(fmt.Sprintf("prod-%d", g))
			if err := r.RegisterProducer(pid, "p"); err != nil {
				t.Errorf("RegisterProducer: %v", err)
				return
			}
			for i := 0; i < 20; i++ {
				s := schema.MustNew(event.ClassID(fmt.Sprintf("c%d.x%d", g, i)), 1, "d",
					schema.Field{Name: "f", Type: schema.String})
				if err := r.DeclareClass(pid, s); err != nil {
					t.Errorf("DeclareClass: %v", err)
					return
				}
				r.Classes()
				r.Search("x")
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.Classes()); got != 160 {
		t.Errorf("Classes = %d", got)
	}
}
