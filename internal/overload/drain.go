package overload

import (
	"context"
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// Step is one named stage of a graceful drain (stop HTTP intake, flush
// the bus, drain the outbox, close stores). Steps run in order under the
// drain deadline; a step that fails does not stop the remaining steps —
// a wedged bus flush must not prevent the stores from fsyncing.
type Step struct {
	Name string
	Run  func(ctx context.Context) error
}

// Drain executes the shutdown sequence of a daemon under one deadline:
// the gate stops admitting first (so load cannot outrun the drain), then
// each step runs with the remaining time budget. The total duration is
// recorded on css_overload_drain_seconds and every step outcome is
// logged. The first step error is returned after all steps ran.
func Drain(ctx context.Context, g *Gate, steps ...Step) error {
	start := time.Now()
	if g != nil {
		g.BeginDrain()
	}
	var first error
	for _, s := range steps {
		stepStart := time.Now()
		err := s.Run(ctx)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("drain step %s: %w", s.Name, err)
			}
			telemetry.Logger().Error("drain step failed",
				"step", s.Name, "elapsed", time.Since(stepStart).String(), "err", err)
			continue
		}
		telemetry.Logger().Info("drain step complete",
			"step", s.Name, "elapsed", time.Since(stepStart).String())
	}
	total := time.Since(start)
	if g != nil {
		g.RecordDrainDuration(total)
	}
	telemetry.Logger().Info("drain complete", "elapsed", total.String())
	return first
}
