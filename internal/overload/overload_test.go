package overload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// admit is a test helper asserting the admission outcome.
func admit(t *testing.T, g *Gate, endpoint string, pri Priority, actor string, want bool) func() {
	t.Helper()
	release, d := g.Admit(endpoint, pri, actor)
	if d.Admitted != want {
		t.Fatalf("Admit(%s, %s, %q) = %v (reason %s), want admitted=%v",
			endpoint, pri, actor, d.Admitted, d.Reason, want)
	}
	if d.Admitted && release == nil {
		t.Fatal("admitted without a release func")
	}
	if !d.Admitted && d.RetryAfter <= 0 {
		t.Fatal("shed decision carries no Retry-After hint")
	}
	return release
}

func TestPrioritySheddingOrder(t *testing.T) {
	// Budget 10: Low sheds past 5 in flight, Normal past 8, Critical at 10.
	g := NewGate(Config{MaxInFlight: 10, ActorRPS: -1})
	var releases []func()
	hold := func(n int, pri Priority) {
		for i := 0; i < n; i++ {
			releases = append(releases, admit(t, g, "ep", pri, "", true))
		}
	}
	hold(5, Critical)
	if _, d := g.Admit("ep", Low, ""); d.Admitted || d.Reason != ReasonPressure {
		t.Fatalf("low admitted at 50%% pressure: %+v", d)
	}
	admit(t, g, "ep", Normal, "", true) // 6 in flight
	hold(2, Critical)                   // 8 in flight
	if _, d := g.Admit("ep", Normal, ""); d.Admitted || d.Reason != ReasonPressure {
		t.Fatalf("normal admitted at 80%% pressure: %+v", d)
	}
	hold(2, Critical) // 10 in flight: budget exhausted
	if _, d := g.Admit("ep", Critical, ""); d.Admitted || d.Reason != ReasonPressure {
		t.Fatalf("critical admitted past the budget: %+v", d)
	}
	for _, r := range releases {
		r()
	}
	// Fully drained: even Low is admitted again.
	admit(t, g, "ep", Low, "", true)
}

func TestEndpointConcurrencyLimit(t *testing.T) {
	g := NewGate(Config{MaxInFlight: 100, ActorRPS: -1,
		Endpoint: map[string]int{"details": 2}})
	r1 := admit(t, g, "details", Normal, "", true)
	r2 := admit(t, g, "details", Normal, "", true)
	if _, d := g.Admit("details", Normal, ""); d.Admitted || d.Reason != ReasonConcurrency {
		t.Fatalf("third details admitted: %+v", d)
	}
	// Other endpoints are unaffected.
	admit(t, g, "publish", Critical, "", true)
	r1()
	admit(t, g, "details", Normal, "", true)
	r2()
}

func TestActorRateLimit(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	g := NewGate(Config{MaxInFlight: -1, ActorRPS: 10, ActorBurst: 3, Now: clock})
	for i := 0; i < 3; i++ {
		admit(t, g, "ep", Normal, "flooder", true)()
	}
	if _, d := g.Admit("ep", Normal, "flooder"); d.Admitted || d.Reason != ReasonRate {
		t.Fatalf("flooder admitted past its burst: %+v", d)
	}
	// A different actor has its own bucket.
	admit(t, g, "ep", Normal, "other", true)()
	// Refill: 10 tokens/s ⇒ 100ms buys one more admission.
	now = now.Add(100 * time.Millisecond)
	admit(t, g, "ep", Normal, "flooder", true)()
	if _, d := g.Admit("ep", Normal, "flooder"); d.Admitted {
		t.Fatal("flooder got two tokens from a one-token refill")
	}
	// An empty actor key skips rate limiting entirely.
	admit(t, g, "ep", Normal, "", true)()
}

func TestDrainingShedsEverything(t *testing.T) {
	g := NewGate(Config{MaxInFlight: 10, ActorRPS: -1})
	release := admit(t, g, "ep", Critical, "", true)
	g.BeginDrain()
	if !g.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	if _, d := g.Admit("ep", Critical, ""); d.Admitted || d.Reason != ReasonDraining {
		t.Fatalf("admitted while draining: %+v", d)
	}
	// In-flight work still releases cleanly.
	release()
	if g.InFlight() != 0 {
		t.Fatalf("InFlight() = %d after release", g.InFlight())
	}
}

func TestReleaseIdempotent(t *testing.T) {
	g := NewGate(Config{MaxInFlight: 10, ActorRPS: -1})
	release := admit(t, g, "ep", Normal, "", true)
	release()
	release() // double release must not underflow the budget
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight() = %d after double release", got)
	}
}

func TestMetricsRecorded(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := NewGate(Config{MaxInFlight: 1, ActorRPS: -1, Metrics: reg})
	release := admit(t, g, "ep", Critical, "", true)
	g.Admit("ep", Low, "") // shed: pressure
	release()
	if v := g.admitted.Value("critical"); v != 1 {
		t.Fatalf("admitted{critical} = %d", v)
	}
	if v := g.shed.Value("low", ReasonPressure); v != 1 {
		t.Fatalf("shed{low,pressure} = %d", v)
	}
}

func TestBucketTableEviction(t *testing.T) {
	now := time.Unix(0, 0)
	tbl := newBucketTable(1, 1, func() time.Time { return now })
	for i := 0; i < maxActors; i++ {
		tbl.take(string(rune('a')) + string(rune(i)))
	}
	// Everyone is now idle long enough to refill; the next new actor
	// triggers the sweep instead of growing the table.
	now = now.Add(time.Hour)
	tbl.take("fresh")
	tbl.mu.Lock()
	n := len(tbl.buckets)
	tbl.mu.Unlock()
	if n > 1 {
		t.Fatalf("idle buckets not reclaimed: %d remain", n)
	}
}

func TestDrainRunsAllStepsAndRecords(t *testing.T) {
	g := NewGate(Config{})
	var order []string
	boom := errors.New("boom")
	err := Drain(context.Background(), g,
		Step{Name: "a", Run: func(context.Context) error { order = append(order, "a"); return nil }},
		Step{Name: "b", Run: func(context.Context) error { order = append(order, "b"); return boom }},
		Step{Name: "c", Run: func(context.Context) error { order = append(order, "c"); return nil }},
	)
	if !errors.Is(err, boom) {
		t.Fatalf("Drain err = %v, want the first step error", err)
	}
	if len(order) != 3 {
		t.Fatalf("steps run = %v, want all three despite the failure", order)
	}
	if !g.Draining() {
		t.Fatal("Drain did not flip the gate to draining")
	}
}

// TestAdmitConcurrent exercises the gate under the race detector: the
// in-flight accounting must stay exact across concurrent admit/release.
func TestAdmitConcurrent(t *testing.T) {
	g := NewGate(Config{MaxInFlight: 8, ActorRPS: -1})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				release, d := g.Admit("ep", Critical, "")
				if d.Admitted {
					release()
				}
			}
		}()
	}
	wg.Wait()
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight() = %d after all releases", got)
	}
}
