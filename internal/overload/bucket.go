package overload

import (
	"sync"
	"time"
)

// maxActors bounds the bucket table so an attacker cycling actor names
// cannot grow it without bound. Idle buckets (refilled to burst) are
// reclaimed on overflow.
const maxActors = 4096

// bucket is one actor's token bucket. Guarded by bucketTable.mu (actor
// admission is far from the contention hot path — one map lookup and a
// few float ops per request).
type bucket struct {
	tokens float64
	last   time.Time
}

// bucketTable holds the per-actor token buckets.
type bucketTable struct {
	rps   float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

func newBucketTable(rps, burst float64, now func() time.Time) *bucketTable {
	return &bucketTable{
		rps:     rps,
		burst:   burst,
		now:     now,
		buckets: make(map[string]*bucket),
	}
}

// take removes one token from actor's bucket, reporting whether one was
// available. New actors start with a full bucket.
func (t *bucketTable) take(actor string) bool {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.buckets[actor]
	if !ok {
		if len(t.buckets) >= maxActors {
			t.evictIdleLocked(now)
		}
		b = &bucket{tokens: t.burst, last: now}
		t.buckets[actor] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens += elapsed * t.rps
			if b.tokens > t.burst {
				b.tokens = t.burst
			}
			b.last = now
		}
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictIdleLocked reclaims buckets that have refilled to burst (their
// actor has been idle at least burst/rps seconds). If every bucket is
// active the table is allowed to exceed maxActors temporarily rather
// than punish a live actor.
func (t *bucketTable) evictIdleLocked(now time.Time) {
	for actor, b := range t.buckets {
		idle := now.Sub(b.last).Seconds()
		if b.tokens+idle*t.rps >= t.burst {
			delete(t.buckets, actor)
		}
	}
}
