// Package overload is the server-side overload-protection layer of the
// CSS platform: a weighted admission controller with per-endpoint
// concurrency limits, per-actor token-bucket rate limits, and a
// priority-aware load shedder that drops detail prefetches and index
// queries before it ever touches a notification publish.
//
// The paper's data controller is a shared rooting node (§4, Fig. 2):
// every social and health source system publishes through it, so one
// flooding producer or one wedged consumer must degrade only its own
// traffic. PR 4 made the *clients* resilient (retries, breakers, durable
// outbox); this package makes the *server* survivable: requests beyond
// capacity fail fast with 429 + Retry-After — which the existing
// retriers already honor — instead of queueing without bound and slowing
// every tenant equally.
//
// Shed order under pressure (lowest priority first):
//
//	Low      index inquiries, audit/stat queries, prefetch warming
//	Normal   detail requests, subscriptions, policy/consent writes
//	Critical notification publishes (the platform's source of truth)
//
// A Gate also owns the draining state used for graceful shutdown: after
// BeginDrain every new request is rejected (503, Retry-After) while
// requests already admitted run to completion, so SIGTERM can stop
// admission, drain the bus and outbox, fsync and exit without losing an
// accepted publish.
package overload

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Priority orders request classes for the load shedder. Higher values
// survive longer under pressure.
type Priority int

const (
	// Low is shed first: prefetches and queries are reconstructible.
	Low Priority = iota
	// Normal is the default request class (detail requests, writes).
	Normal
	// Critical is shed last: notification publishes carry state the
	// producer may not be able to replay.
	Critical
)

// String returns the metric label of the priority.
func (p Priority) String() string {
	switch p {
	case Low:
		return "low"
	case Normal:
		return "normal"
	case Critical:
		return "critical"
	default:
		return "unknown"
	}
}

// Shed reasons recorded in css_overload_shed_total{reason}.
const (
	ReasonConcurrency = "concurrency" // endpoint concurrency limit hit
	ReasonPressure    = "pressure"    // global saturation shed this priority
	ReasonRate        = "rate"        // per-actor token bucket empty
	ReasonDraining    = "draining"    // gate is draining for shutdown
)

// Fractions of the global in-flight budget beyond which a priority class
// is shed. Critical admits until the budget is exhausted.
const (
	lowPressureFraction    = 0.50
	normalPressureFraction = 0.85
)

// Config tunes a Gate. The zero value of any field selects its default.
type Config struct {
	// MaxInFlight bounds requests being served concurrently across all
	// endpoints (the global budget the shedder grades by priority).
	// Zero means DefaultMaxInFlight; negative disables the global bound.
	MaxInFlight int
	// Endpoint bounds concurrency per endpoint name, overriding the
	// global budget check for nothing — both must pass. Endpoints not
	// listed are limited only by the global budget.
	Endpoint map[string]int
	// ActorRPS is the steady per-actor admission rate (token-bucket
	// refill, tokens per second). Zero means DefaultActorRPS; negative
	// disables per-actor limiting.
	ActorRPS float64
	// ActorBurst is the bucket capacity. Zero means 2×ActorRPS (≥1).
	ActorBurst float64
	// RetryAfter is the hint returned with shed requests. Zero means
	// DefaultRetryAfter.
	RetryAfter time.Duration
	// Metrics receives css_overload_*. Nil creates a private registry.
	Metrics *telemetry.Registry
	// Now injects a clock for the token buckets (tests). Nil: time.Now.
	Now func() time.Time
}

// Defaults for Config.
const (
	DefaultMaxInFlight = 256
	DefaultActorRPS    = 50.0
	DefaultRetryAfter  = 1 * time.Second
)

// Decision is the outcome of one admission check.
type Decision struct {
	// Admitted reports whether the request may proceed. When true the
	// caller must call Release exactly once after the request finishes.
	Admitted bool
	// Reason is the shed reason (Reason* constants) when not admitted.
	Reason string
	// RetryAfter is the pacing hint for the client when not admitted.
	RetryAfter time.Duration
}

// Gate is the admission controller. Safe for concurrent use.
type Gate struct {
	cfg      Config
	now      func() time.Time
	inflight atomic.Int64
	draining atomic.Bool

	epMu       sync.Mutex
	epInflight map[string]*atomic.Int64

	actors *bucketTable

	admitted     *telemetry.Counter
	shed         *telemetry.Counter
	inflightG    *telemetry.Gauge
	drainSeconds *telemetry.Gauge
}

// NewGate creates an admission controller.
func NewGate(cfg Config) *Gate {
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.ActorRPS == 0 {
		cfg.ActorRPS = DefaultActorRPS
	}
	if cfg.ActorBurst <= 0 {
		cfg.ActorBurst = 2 * cfg.ActorRPS
		if cfg.ActorBurst < 1 {
			cfg.ActorBurst = 1
		}
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	g := &Gate{
		cfg:        cfg,
		now:        now,
		epInflight: make(map[string]*atomic.Int64),
		admitted: reg.Counter("css_overload_admitted_total",
			"Requests admitted by the overload gate, by priority.", "priority"),
		shed: reg.Counter("css_overload_shed_total",
			"Requests shed by the overload gate, by priority and reason.",
			"priority", "reason"),
		inflightG: reg.Gauge("css_overload_inflight",
			"Requests currently admitted and running."),
		drainSeconds: reg.Gauge("css_overload_drain_seconds",
			"Duration of the last graceful drain, in seconds."),
	}
	if cfg.ActorRPS > 0 {
		g.actors = newBucketTable(cfg.ActorRPS, cfg.ActorBurst, now)
	}
	return g
}

// endpointCounter returns the in-flight counter of an endpoint with a
// configured limit, nil otherwise.
func (g *Gate) endpointCounter(endpoint string) *atomic.Int64 {
	if _, ok := g.cfg.Endpoint[endpoint]; !ok {
		return nil
	}
	g.epMu.Lock()
	defer g.epMu.Unlock()
	c, ok := g.epInflight[endpoint]
	if !ok {
		c = new(atomic.Int64)
		g.epInflight[endpoint] = c
	}
	return c
}

// budgetFor returns the in-flight budget available to a priority class:
// the global cap scaled down for sheddable classes, so Low and Normal
// requests are refused while Critical traffic still fits.
func (g *Gate) budgetFor(pri Priority) int64 {
	max := int64(g.cfg.MaxInFlight)
	switch pri {
	case Low:
		return int64(float64(max) * lowPressureFraction)
	case Normal:
		return int64(float64(max) * normalPressureFraction)
	default:
		return max
	}
}

// Admit runs the admission checks for one request: draining state, the
// per-actor token bucket, the endpoint concurrency limit, and the
// priority-graded global budget. On admission the returned release must
// be called exactly once when the request completes; on shed it is nil.
//
// actor keys the rate limit (token subject, or remote host when the
// deployment runs unauthenticated); an empty actor skips rate limiting.
func (g *Gate) Admit(endpoint string, pri Priority, actor string) (release func(), d Decision) {
	shed := func(reason string) (func(), Decision) {
		g.shed.Inc(pri.String(), reason)
		return nil, Decision{Reason: reason, RetryAfter: g.cfg.RetryAfter}
	}
	if g.draining.Load() {
		return shed(ReasonDraining)
	}
	if g.actors != nil && actor != "" && !g.actors.take(actor) {
		return shed(ReasonRate)
	}

	// Endpoint limit first (cheap: one atomic), then the global budget.
	var epCount *atomic.Int64
	if epCount = g.endpointCounter(endpoint); epCount != nil {
		limit := int64(g.cfg.Endpoint[endpoint])
		if epCount.Add(1) > limit {
			epCount.Add(-1)
			return shed(ReasonConcurrency)
		}
	}
	if g.cfg.MaxInFlight > 0 {
		if g.inflight.Add(1) > g.budgetFor(pri) {
			g.inflight.Add(-1)
			if epCount != nil {
				epCount.Add(-1)
			}
			return shed(ReasonPressure)
		}
	} else {
		g.inflight.Add(1)
	}

	g.admitted.Inc(pri.String())
	g.inflightG.Set(float64(g.inflight.Load()))
	var once sync.Once
	return func() {
		once.Do(func() {
			g.inflight.Add(-1)
			if epCount != nil {
				epCount.Add(-1)
			}
			g.inflightG.Set(float64(g.inflight.Load()))
		})
	}, Decision{Admitted: true}
}

// InFlight reports the number of currently admitted requests.
func (g *Gate) InFlight() int { return int(g.inflight.Load()) }

// BeginDrain flips the gate into draining: every subsequent Admit is
// refused with ReasonDraining while already-admitted requests finish.
func (g *Gate) BeginDrain() { g.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (g *Gate) Draining() bool { return g.draining.Load() }

// RecordDrainDuration publishes the duration of a completed drain on
// css_overload_drain_seconds.
func (g *Gate) RecordDrainDuration(d time.Duration) {
	g.drainSeconds.Set(d.Seconds())
}

// RetryAfterSeconds renders a retry hint (typically Decision.RetryAfter)
// for an HTTP header (minimum 1 second — Retry-After has whole-second
// resolution).
func RetryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
