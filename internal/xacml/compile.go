package xacml

import (
	"fmt"
	"time"

	"repro/internal/event"
	"repro/internal/policy"
)

// Compile translates an event-based privacy policy (Definition 2) into
// its XACML form, exactly as the Privacy Requirements Elicitation Tool
// "automatically generates and stores in a policy repository the privacy
// policy in XACML format" (paper §6):
//
//   - the subject target matches the actor through the organizational
//     hierarchy function;
//   - the resource target matches the event class;
//   - the action target matches any of the allowed purposes;
//   - the validity window becomes current-time comparisons on the subject
//     group (XACML conditions folded into the target);
//   - the field list F becomes an include-fields obligation on Permit.
func Compile(p *policy.Policy) (*Policy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.ID == "" {
		return nil, fmt.Errorf("xacml: cannot compile policy without id (add it to a repository first)")
	}

	subjectGroup := []Match{{
		AttrID: AttrSubjectID,
		Func:   FuncActorContains,
		Value:  string(p.Actor),
	}}
	if !p.NotBefore.IsZero() {
		subjectGroup = append(subjectGroup, Match{
			AttrID: AttrCurrentTime,
			Func:   FuncTimeGreaterOrEqual,
			Value:  p.NotBefore.UTC().Format(time.RFC3339Nano),
		})
	}
	if !p.NotAfter.IsZero() {
		subjectGroup = append(subjectGroup, Match{
			AttrID: AttrCurrentTime,
			Func:   FuncTimeLessOrEqual,
			Value:  p.NotAfter.UTC().Format(time.RFC3339Nano),
		})
	}

	actions := make([][]Match, 0, len(p.Purposes))
	for _, s := range p.Purposes {
		actions = append(actions, []Match{{
			AttrID: AttrActionID,
			Func:   FuncStringEqual,
			Value:  string(s),
		}})
	}

	obligation := Obligation{
		ID:        ObligationIncludeFields,
		FulfillOn: EffectPermit,
	}
	for _, f := range p.Fields {
		obligation.Attrs = append(obligation.Attrs, Attribute{ID: AttrField, Value: string(f)})
	}

	x := &Policy{
		ID:          string(p.ID),
		Description: p.Name,
		Alg:         FirstApplicable,
		Target: Target{
			Subjects:  [][]Match{subjectGroup},
			Resources: [][]Match{{{AttrID: AttrResourceID, Func: FuncStringEqual, Value: string(p.Class)}}},
			Actions:   actions,
		},
		Rules: []Rule{{
			ID:     string(p.ID) + "/permit",
			Effect: EffectPermit,
		}},
		Obligations: []Obligation{obligation},
	}
	if err := x.Validate(); err != nil {
		return nil, err
	}
	return x, nil
}

// CompileRequest translates a detail request into the XACML request the
// Policy Enforcement Point submits to the PDP (paper Fig. 5: "the request
// for details of the data consumer is mapped to an XACML request by the
// policy enforcer").
func CompileRequest(r *event.DetailRequest) *Request {
	at := r.At
	if at.IsZero() {
		at = time.Now()
	}
	return &Request{
		Subject:  []Attribute{{ID: AttrSubjectID, Value: string(r.Requester)}},
		Resource: []Attribute{{ID: AttrResourceID, Value: string(r.Class)}},
		Action:   []Attribute{{ID: AttrActionID, Value: string(r.Purpose)}},
		Environment: []Attribute{{
			ID:    AttrCurrentTime,
			Value: at.UTC().Format(time.RFC3339Nano),
		}},
	}
}

// AuthorizedFields extracts the field names of the include-fields
// obligations of a Permit response. A Permit without such an obligation
// authorizes no fields at all (fail closed).
func AuthorizedFields(resp *Response) []event.FieldName {
	if resp.Decision != Permit {
		return nil
	}
	var out []event.FieldName
	for _, o := range resp.Obligations {
		if o.ID != ObligationIncludeFields {
			continue
		}
		for _, v := range o.FieldValues() {
			out = append(out, event.FieldName(v))
		}
	}
	return out
}
