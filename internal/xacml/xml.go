package xacml

import (
	"encoding/xml"
	"fmt"
)

// XML form shaped after the paper's Fig. 8 listing: a <Policy> with
// PolicyId and RuleCombiningAlgId, a <Target> of Subjects/Resources/
// Actions match elements carrying AttributeValue and AttributeDesignator
// pairs, <Rule> elements, and an <Obligations> section whose
// AttributeAssignments list the accessible fields.

type xmlPolicy struct {
	XMLName     xml.Name        `xml:"Policy"`
	PolicyID    string          `xml:"PolicyId,attr"`
	Alg         CombiningAlg    `xml:"RuleCombiningAlgId,attr"`
	Description string          `xml:"Description,omitempty"`
	Target      xmlTarget       `xml:"Target"`
	Rules       []xmlRule       `xml:"Rule"`
	Obligations *xmlObligations `xml:"Obligations,omitempty"`
}

type xmlTarget struct {
	Subjects  *xmlCategory `xml:"Subjects,omitempty"`
	Resources *xmlCategory `xml:"Resources,omitempty"`
	Actions   *xmlCategory `xml:"Actions,omitempty"`
}

// xmlCategory is a disjunction of groups; each group a conjunction of
// matches.
type xmlCategory struct {
	Groups []xmlGroup `xml:"MatchGroup"`
}

type xmlGroup struct {
	Matches []xmlMatch `xml:"Match"`
}

type xmlMatch struct {
	MatchID    string        `xml:"MatchId,attr"`
	Value      string        `xml:"AttributeValue"`
	Designator xmlDesignator `xml:"AttributeDesignator"`
}

type xmlDesignator struct {
	AttributeID string `xml:"AttributeId,attr"`
}

type xmlRule struct {
	RuleID string    `xml:"RuleId,attr"`
	Effect Effect    `xml:"Effect,attr"`
	Target xmlTarget `xml:"Target"`
}

type xmlObligations struct {
	Obligations []xmlObligation `xml:"Obligation"`
}

type xmlObligation struct {
	ObligationID string          `xml:"ObligationId,attr"`
	FulfillOn    Effect          `xml:"FulfillOn,attr"`
	Assignments  []xmlAssignment `xml:"AttributeAssignment"`
}

type xmlAssignment struct {
	AttributeID string `xml:"AttributeId,attr"`
	Value       string `xml:",chardata"`
}

func toXMLCategory(groups [][]Match) *xmlCategory {
	if len(groups) == 0 {
		return nil
	}
	c := &xmlCategory{Groups: make([]xmlGroup, len(groups))}
	for i, g := range groups {
		c.Groups[i].Matches = make([]xmlMatch, len(g))
		for j, m := range g {
			c.Groups[i].Matches[j] = xmlMatch{
				MatchID:    m.Func,
				Value:      m.Value,
				Designator: xmlDesignator{AttributeID: m.AttrID},
			}
		}
	}
	return c
}

func fromXMLCategory(c *xmlCategory) [][]Match {
	if c == nil || len(c.Groups) == 0 {
		return nil
	}
	groups := make([][]Match, len(c.Groups))
	for i, g := range c.Groups {
		groups[i] = make([]Match, len(g.Matches))
		for j, m := range g.Matches {
			groups[i][j] = Match{
				AttrID: m.Designator.AttributeID,
				Func:   m.MatchID,
				Value:  m.Value,
			}
		}
	}
	return groups
}

func toXMLTarget(t Target) xmlTarget {
	return xmlTarget{
		Subjects:  toXMLCategory(t.Subjects),
		Resources: toXMLCategory(t.Resources),
		Actions:   toXMLCategory(t.Actions),
	}
}

func fromXMLTarget(t xmlTarget) Target {
	return Target{
		Subjects:  fromXMLCategory(t.Subjects),
		Resources: fromXMLCategory(t.Resources),
		Actions:   fromXMLCategory(t.Actions),
	}
}

// Encode serializes a policy to its Fig.-8-shaped XML form.
func Encode(p *Policy) ([]byte, error) {
	w := xmlPolicy{
		PolicyID:    p.ID,
		Alg:         p.Alg,
		Description: p.Description,
		Target:      toXMLTarget(p.Target),
		Rules:       make([]xmlRule, len(p.Rules)),
	}
	for i, r := range p.Rules {
		w.Rules[i] = xmlRule{RuleID: r.ID, Effect: r.Effect, Target: toXMLTarget(r.Target)}
	}
	if len(p.Obligations) > 0 {
		obs := &xmlObligations{Obligations: make([]xmlObligation, len(p.Obligations))}
		for i, o := range p.Obligations {
			xo := xmlObligation{ObligationID: o.ID, FulfillOn: o.FulfillOn}
			for _, a := range o.Attrs {
				xo.Assignments = append(xo.Assignments, xmlAssignment{AttributeID: a.ID, Value: a.Value})
			}
			obs.Obligations[i] = xo
		}
		w.Obligations = obs
	}
	return xml.MarshalIndent(w, "", "  ")
}

// Decode parses a policy from its XML form and re-validates it.
func Decode(data []byte) (*Policy, error) {
	var w xmlPolicy
	if err := xml.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("xacml: decode: %w", err)
	}
	p := &Policy{
		ID:          w.PolicyID,
		Description: w.Description,
		Alg:         w.Alg,
		Target:      fromXMLTarget(w.Target),
		Rules:       make([]Rule, len(w.Rules)),
	}
	for i, r := range w.Rules {
		p.Rules[i] = Rule{ID: r.RuleID, Effect: r.Effect, Target: fromXMLTarget(r.Target)}
	}
	if w.Obligations != nil {
		for _, xo := range w.Obligations.Obligations {
			o := Obligation{ID: xo.ObligationID, FulfillOn: xo.FulfillOn}
			for _, a := range xo.Assignments {
				o.Attrs = append(o.Attrs, Attribute{ID: a.AttributeID, Value: a.Value})
			}
			p.Obligations = append(p.Obligations, o)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
