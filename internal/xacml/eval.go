package xacml

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// PDP is the Policy Decision Point: it holds compiled policies and
// evaluates authorization requests against them (paper §5.2 step 2-3:
// "The PDP retrieves the matching policy ... evaluates the matching
// policy and sends the result to the PEP"). It is safe for concurrent
// use.
type PDP struct {
	// Alg combines the decisions of multiple applicable policies.
	alg CombiningAlg

	mu       sync.RWMutex
	policies []*Policy
	byID     map[string]*Policy
	// byResource indexes policies by the exact resource-id values their
	// targets test with string-equal, so evaluation touches only the
	// policies of the requested event class. Policies whose resource
	// target is not a simple string-equal go to the catch-all bucket.
	byResource map[string][]*Policy
	catchAll   []*Policy
}

// NewPDP creates a PDP with the given policy combining algorithm.
func NewPDP(alg CombiningAlg) (*PDP, error) {
	if !validAlgs[alg] {
		return nil, fmt.Errorf("xacml: unknown combining algorithm %q", alg)
	}
	return &PDP{
		alg:        alg,
		byID:       make(map[string]*Policy),
		byResource: make(map[string][]*Policy),
	}, nil
}

// Add validates and installs a policy.
func (d *PDP) Add(p *Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.byID[p.ID]; dup {
		return fmt.Errorf("xacml: duplicate policy id %q", p.ID)
	}
	d.byID[p.ID] = p
	d.policies = append(d.policies, p)
	if keys := resourceKeys(&p.Target); keys != nil {
		for _, k := range keys {
			d.byResource[k] = append(d.byResource[k], p)
		}
	} else {
		d.catchAll = append(d.catchAll, p)
	}
	return nil
}

// Remove uninstalls a policy by id.
func (d *PDP) Remove(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.byID[id]
	if !ok {
		return fmt.Errorf("xacml: no policy %q", id)
	}
	delete(d.byID, id)
	d.policies = removePolicy(d.policies, p)
	if keys := resourceKeys(&p.Target); keys != nil {
		for _, k := range keys {
			d.byResource[k] = removePolicy(d.byResource[k], p)
		}
	} else {
		d.catchAll = removePolicy(d.catchAll, p)
	}
	return nil
}

// removePolicy deletes p from list copy-on-write: Evaluate hands bucket
// slices out of the read lock, so removal must never shift elements in
// the backing array a concurrent evaluation may still be walking.
func removePolicy(list []*Policy, p *Policy) []*Policy {
	for i, q := range list {
		if q == p {
			out := make([]*Policy, 0, len(list)-1)
			out = append(out, list[:i]...)
			return append(out, list[i+1:]...)
		}
	}
	return list
}

// Len returns the number of installed policies.
func (d *PDP) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.policies)
}

// resourceKeys extracts the exact resource-id equality values a target
// tests, one per disjunct, or nil when the target cannot be indexed
// (empty resource target, or non-equality matches).
func resourceKeys(t *Target) []string {
	if len(t.Resources) == 0 {
		return nil
	}
	var keys []string
	for _, group := range t.Resources {
		var key string
		for _, m := range group {
			if m.AttrID == AttrResourceID && m.Func == FuncStringEqual {
				key = m.Value
				break
			}
		}
		if key == "" {
			return nil // one disjunct is not indexable: fall back
		}
		keys = append(keys, key)
	}
	return keys
}

// Evaluate runs the request against the installed policies and combines
// their decisions under the PDP's combining algorithm. With no applicable
// policy the decision is NotApplicable — which the PEP treats as Deny
// (deny-by-default).
func (d *PDP) Evaluate(req *Request) Response {
	d.mu.RLock()
	candidates := d.catchAll
	if rid, ok := get(req.Resource, AttrResourceID); ok {
		if indexed := d.byResource[rid]; len(indexed) > 0 {
			if len(d.catchAll) == 0 {
				// Common case: every policy is resource-indexed, so the
				// bucket alone is the candidate set — no merged slice.
				candidates = indexed
			} else {
				merged := make([]*Policy, 0, len(indexed)+len(d.catchAll))
				merged = append(merged, indexed...)
				merged = append(merged, d.catchAll...)
				candidates = merged
			}
		}
	} else {
		candidates = d.policies
	}
	d.mu.RUnlock()

	resp := Response{Decision: NotApplicable}
	for _, p := range candidates {
		r := evaluatePolicy(p, req)
		if r.Decision == NotApplicable {
			continue
		}
		switch d.alg {
		case FirstApplicable:
			return r
		case DenyOverrides:
			if r.Decision == Deny || r.Decision == Indeterminate {
				return r
			}
			if resp.Decision == NotApplicable {
				resp = r
			}
		case PermitOverrides:
			if r.Decision == Permit {
				return r
			}
			if resp.Decision == NotApplicable {
				resp = r
			}
		}
	}
	return resp
}

// EvaluateOne evaluates the request against a single installed policy,
// identified by id — the two-step resolution of the paper's Algorithm 1,
// where the matching policy is retrieved first ("matchingPolicy(R)") and
// then evaluated. An unknown id yields Indeterminate.
func (d *PDP) EvaluateOne(id string, req *Request) Response {
	d.mu.RLock()
	p := d.byID[id]
	d.mu.RUnlock()
	if p == nil {
		return Response{Decision: Indeterminate, PolicyID: id}
	}
	return evaluatePolicy(p, req)
}

// evaluatePolicy evaluates one policy: target first, then rules under the
// policy's own combining algorithm; obligations whose FulfillOn matches
// the decision are attached.
func evaluatePolicy(p *Policy, req *Request) Response {
	applicable, err := matchTarget(&p.Target, req)
	if err != nil {
		return Response{Decision: Indeterminate, PolicyID: p.ID}
	}
	if !applicable {
		return Response{Decision: NotApplicable}
	}
	decision := NotApplicable
Rules:
	for _, rule := range p.Rules {
		ok, err := matchTarget(&rule.Target, req)
		if err != nil {
			return Response{Decision: Indeterminate, PolicyID: p.ID}
		}
		if !ok {
			continue
		}
		effect := Permit
		if rule.Effect == EffectDeny {
			effect = Deny
		}
		switch p.Alg {
		case FirstApplicable:
			decision = effect
			break Rules
		case DenyOverrides:
			decision = effect
			if effect == Deny {
				break Rules
			}
		case PermitOverrides:
			decision = effect
			if effect == Permit {
				break Rules
			}
		}
	}
	if decision == NotApplicable {
		return Response{Decision: NotApplicable}
	}
	resp := Response{Decision: decision, PolicyID: p.ID}
	want := EffectPermit
	if decision == Deny {
		want = EffectDeny
	}
	for _, o := range p.Obligations {
		if o.FulfillOn == want {
			resp.Obligations = append(resp.Obligations, o)
		}
	}
	return resp
}

// matchTarget evaluates a target against a request.
func matchTarget(t *Target, req *Request) (bool, error) {
	ok, err := matchCategory(t.Subjects, req.Subject, req)
	if err != nil || !ok {
		return false, err
	}
	ok, err = matchCategory(t.Resources, req.Resource, req)
	if err != nil || !ok {
		return false, err
	}
	return matchCategory(t.Actions, req.Action, req)
}

// matchCategory: empty category matches anything; otherwise any group of
// conjunctive matches must hold.
func matchCategory(groups [][]Match, bag []Attribute, req *Request) (bool, error) {
	if len(groups) == 0 {
		return true, nil
	}
	for _, group := range groups {
		ok, err := matchGroup(group, bag, req)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func matchGroup(group []Match, bag []Attribute, req *Request) (bool, error) {
	for _, m := range group {
		// Time comparisons designate the environment bag regardless of the
		// category they appear in.
		lookIn := bag
		if m.AttrID == AttrCurrentTime {
			lookIn = req.Environment
		}
		v, present := get(lookIn, m.AttrID)
		if !present {
			return false, nil
		}
		ok, err := applyFunc(m.Func, m.Value, v)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// applyFunc applies a match function: policyValue is the literal from the
// policy, reqValue the attribute from the request.
func applyFunc(fn, policyValue, reqValue string) (bool, error) {
	switch fn {
	case FuncStringEqual:
		return policyValue == reqValue, nil
	case FuncActorContains:
		return policyValue == reqValue || strings.HasPrefix(reqValue, policyValue+"/"), nil
	case FuncTimeGreaterOrEqual, FuncTimeLessOrEqual:
		pt, err := time.Parse(time.RFC3339Nano, policyValue)
		if err != nil {
			return false, fmt.Errorf("xacml: bad policy time %q: %w", policyValue, err)
		}
		rt, err := time.Parse(time.RFC3339Nano, reqValue)
		if err != nil {
			return false, fmt.Errorf("xacml: bad request time %q: %w", reqValue, err)
		}
		if fn == FuncTimeGreaterOrEqual {
			return !rt.Before(pt), nil // reqValue >= policyValue
		}
		return !rt.After(pt), nil // reqValue <= policyValue
	default:
		return false, fmt.Errorf("xacml: unknown match function %q", fn)
	}
}
