package xacml

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// permitPolicy builds a simple policy permitting subject=actor on
// resource=class for action=purpose, with an include-fields obligation.
func permitPolicy(id, actor, class, purpose string, fields ...string) *Policy {
	ob := Obligation{ID: ObligationIncludeFields, FulfillOn: EffectPermit}
	for _, f := range fields {
		ob.Attrs = append(ob.Attrs, Attribute{ID: AttrField, Value: f})
	}
	return &Policy{
		ID:  id,
		Alg: FirstApplicable,
		Target: Target{
			Subjects:  [][]Match{{{AttrID: AttrSubjectID, Func: FuncActorContains, Value: actor}}},
			Resources: [][]Match{{{AttrID: AttrResourceID, Func: FuncStringEqual, Value: class}}},
			Actions:   [][]Match{{{AttrID: AttrActionID, Func: FuncStringEqual, Value: purpose}}},
		},
		Rules:       []Rule{{ID: id + "/permit", Effect: EffectPermit}},
		Obligations: []Obligation{ob},
	}
}

func request(subject, resource, action string) *Request {
	return &Request{
		Subject:     []Attribute{{ID: AttrSubjectID, Value: subject}},
		Resource:    []Attribute{{ID: AttrResourceID, Value: resource}},
		Action:      []Attribute{{ID: AttrActionID, Value: action}},
		Environment: []Attribute{{ID: AttrCurrentTime, Value: time.Now().UTC().Format(time.RFC3339Nano)}},
	}
}

func newPDP(t *testing.T) *PDP {
	t.Helper()
	d, err := NewPDP(FirstApplicable)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewPDPRejectsBadAlg(t *testing.T) {
	if _, err := NewPDP("nonsense"); err == nil {
		t.Error("NewPDP accepted unknown algorithm")
	}
}

func TestEvaluatePermitWithObligations(t *testing.T) {
	d := newPDP(t)
	if err := d.Add(permitPolicy("p1", "doctor", "c.x", "care", "a", "b")); err != nil {
		t.Fatal(err)
	}
	resp := d.Evaluate(request("doctor", "c.x", "care"))
	if resp.Decision != Permit {
		t.Fatalf("Decision = %v", resp.Decision)
	}
	if resp.PolicyID != "p1" {
		t.Errorf("PolicyID = %q", resp.PolicyID)
	}
	if len(resp.Obligations) != 1 {
		t.Fatalf("obligations = %d", len(resp.Obligations))
	}
	if got := resp.Obligations[0].FieldValues(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("obligation fields = %v", got)
	}
}

func TestEvaluateNotApplicable(t *testing.T) {
	d := newPDP(t)
	d.Add(permitPolicy("p1", "doctor", "c.x", "care", "a"))
	cases := []*Request{
		request("nurse", "c.x", "care"),   // wrong subject
		request("doctor", "c.y", "care"),  // wrong resource
		request("doctor", "c.x", "stats"), // wrong action
	}
	for i, r := range cases {
		if resp := d.Evaluate(r); resp.Decision != NotApplicable {
			t.Errorf("case %d: Decision = %v, want NotApplicable", i, resp.Decision)
		}
	}
	// Missing attribute in request: the target cannot match.
	if resp := d.Evaluate(&Request{}); resp.Decision != NotApplicable {
		t.Errorf("empty request: %v", resp.Decision)
	}
}

func TestActorContainsHierarchy(t *testing.T) {
	d := newPDP(t)
	d.Add(permitPolicy("p1", "hospital", "c.x", "care", "a"))
	if resp := d.Evaluate(request("hospital/lab", "c.x", "care")); resp.Decision != Permit {
		t.Errorf("department under granted org: %v", resp.Decision)
	}
	if resp := d.Evaluate(request("hospitality", "c.x", "care")); resp.Decision != NotApplicable {
		t.Errorf("prefix-only actor matched: %v", resp.Decision)
	}
}

func TestTimeWindowMatches(t *testing.T) {
	p := permitPolicy("p1", "doctor", "c.x", "care", "a")
	p.Target.Subjects[0] = append(p.Target.Subjects[0],
		Match{AttrID: AttrCurrentTime, Func: FuncTimeGreaterOrEqual, Value: "2010-01-01T00:00:00Z"},
		Match{AttrID: AttrCurrentTime, Func: FuncTimeLessOrEqual, Value: "2010-12-31T23:59:59Z"},
	)
	d := newPDP(t)
	d.Add(p)
	mk := func(ts string) *Request {
		r := request("doctor", "c.x", "care")
		r.Environment = []Attribute{{ID: AttrCurrentTime, Value: ts}}
		return r
	}
	if resp := d.Evaluate(mk("2010-06-15T12:00:00Z")); resp.Decision != Permit {
		t.Errorf("in-window: %v", resp.Decision)
	}
	if resp := d.Evaluate(mk("2011-06-15T12:00:00Z")); resp.Decision != NotApplicable {
		t.Errorf("after window: %v", resp.Decision)
	}
	if resp := d.Evaluate(mk("2009-06-15T12:00:00Z")); resp.Decision != NotApplicable {
		t.Errorf("before window: %v", resp.Decision)
	}
	// Malformed environment time → Indeterminate.
	if resp := d.Evaluate(mk("not-a-time")); resp.Decision != Indeterminate {
		t.Errorf("bad time: %v", resp.Decision)
	}
}

func TestDenyRuleAndObligationOnDeny(t *testing.T) {
	p := &Policy{
		ID:  "deny-all",
		Alg: DenyOverrides,
		Target: Target{
			Resources: [][]Match{{{AttrID: AttrResourceID, Func: FuncStringEqual, Value: "c.x"}}},
		},
		Rules: []Rule{{ID: "r1", Effect: EffectDeny}},
		Obligations: []Obligation{
			{ID: "log-denial", FulfillOn: EffectDeny},
			{ID: "never-fires", FulfillOn: EffectPermit},
		},
	}
	d := newPDP(t)
	if err := d.Add(p); err != nil {
		t.Fatal(err)
	}
	resp := d.Evaluate(request("anyone", "c.x", "anything"))
	if resp.Decision != Deny {
		t.Fatalf("Decision = %v", resp.Decision)
	}
	if len(resp.Obligations) != 1 || resp.Obligations[0].ID != "log-denial" {
		t.Errorf("deny obligations = %+v", resp.Obligations)
	}
}

func TestCombiningAlgorithms(t *testing.T) {
	permit := permitPolicy("permit", "doctor", "c.x", "care", "a")
	deny := &Policy{
		ID:  "deny",
		Alg: FirstApplicable,
		Target: Target{
			Resources: [][]Match{{{AttrID: AttrResourceID, Func: FuncStringEqual, Value: "c.x"}}},
		},
		Rules: []Rule{{ID: "r", Effect: EffectDeny}},
	}
	req := request("doctor", "c.x", "care")

	mk := func(alg CombiningAlg, first, second *Policy) Decision {
		d, err := NewPDP(alg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Add(first); err != nil {
			t.Fatal(err)
		}
		if err := d.Add(second); err != nil {
			t.Fatal(err)
		}
		return d.Evaluate(req).Decision
	}

	if got := mk(DenyOverrides, permit, deny); got != Deny {
		t.Errorf("deny-overrides = %v", got)
	}
	if got := mk(PermitOverrides, deny, permit); got != Permit {
		t.Errorf("permit-overrides = %v", got)
	}
	if got := mk(FirstApplicable, permit, deny); got != Permit {
		t.Errorf("first-applicable(permit first) = %v", got)
	}
	if got := mk(FirstApplicable, deny, permit); got != Deny {
		t.Errorf("first-applicable(deny first) = %v", got)
	}
}

func TestRuleCombiningInsidePolicy(t *testing.T) {
	p := &Policy{
		ID:  "mixed",
		Alg: DenyOverrides,
		Target: Target{
			Resources: [][]Match{{{AttrID: AttrResourceID, Func: FuncStringEqual, Value: "c.x"}}},
		},
		Rules: []Rule{
			{ID: "permit-care", Effect: EffectPermit,
				Target: Target{Actions: [][]Match{{{AttrID: AttrActionID, Func: FuncStringEqual, Value: "care"}}}}},
			{ID: "deny-stats", Effect: EffectDeny,
				Target: Target{Actions: [][]Match{{{AttrID: AttrActionID, Func: FuncStringEqual, Value: "stats"}}}}},
		},
	}
	d := newPDP(t)
	d.Add(p)
	if resp := d.Evaluate(request("x", "c.x", "care")); resp.Decision != Permit {
		t.Errorf("care = %v", resp.Decision)
	}
	if resp := d.Evaluate(request("x", "c.x", "stats")); resp.Decision != Deny {
		t.Errorf("stats = %v", resp.Decision)
	}
	if resp := d.Evaluate(request("x", "c.x", "other")); resp.Decision != NotApplicable {
		t.Errorf("other = %v", resp.Decision)
	}
}

func TestDisjunctiveActions(t *testing.T) {
	p := permitPolicy("p", "doctor", "c.x", "care", "a")
	p.Target.Actions = append(p.Target.Actions,
		[]Match{{AttrID: AttrActionID, Func: FuncStringEqual, Value: "admin"}})
	d := newPDP(t)
	d.Add(p)
	for _, action := range []string{"care", "admin"} {
		if resp := d.Evaluate(request("doctor", "c.x", action)); resp.Decision != Permit {
			t.Errorf("action %s = %v", action, resp.Decision)
		}
	}
	if resp := d.Evaluate(request("doctor", "c.x", "stats")); resp.Decision != NotApplicable {
		t.Errorf("action stats = %v", resp.Decision)
	}
}

func TestAddRemoveValidation(t *testing.T) {
	d := newPDP(t)
	bad := permitPolicy("", "a", "c", "s", "f")
	if err := d.Add(bad); err == nil {
		t.Error("Add accepted policy without id")
	}
	p := permitPolicy("p", "a", "c.x", "s", "f")
	if err := d.Add(p); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(p); err == nil {
		t.Error("Add accepted duplicate id")
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
	if err := d.Remove("p"); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove("p"); err == nil {
		t.Error("Remove of absent policy succeeded")
	}
	if resp := d.Evaluate(request("a", "c.x", "s")); resp.Decision != NotApplicable {
		t.Errorf("after Remove = %v", resp.Decision)
	}
}

func TestPolicyValidate(t *testing.T) {
	cases := []func(*Policy){
		func(p *Policy) { p.ID = "" },
		func(p *Policy) { p.Alg = "nonsense" },
		func(p *Policy) { p.Rules = nil },
		func(p *Policy) { p.Rules[0].ID = "" },
		func(p *Policy) { p.Rules[0].Effect = "Maybe" },
		func(p *Policy) { p.Obligations[0].ID = "" },
		func(p *Policy) { p.Obligations[0].FulfillOn = "Maybe" },
	}
	for i, mutate := range cases {
		p := permitPolicy("p", "a", "c", "s", "f")
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid policy accepted", i)
		}
	}
}

func TestResourceIndexFallback(t *testing.T) {
	// A policy with an empty resource target lands in the catch-all
	// bucket and must still apply to any resource.
	p := &Policy{
		ID:  "catch-all",
		Alg: FirstApplicable,
		Target: Target{
			Subjects: [][]Match{{{AttrID: AttrSubjectID, Func: FuncStringEqual, Value: "auditor"}}},
		},
		Rules: []Rule{{ID: "r", Effect: EffectPermit}},
	}
	d := newPDP(t)
	d.Add(p)
	d.Add(permitPolicy("specific", "doctor", "c.x", "care", "f"))
	if resp := d.Evaluate(request("auditor", "anything.else", "whatever")); resp.Decision != Permit {
		t.Errorf("catch-all on unindexed resource = %v", resp.Decision)
	}
	if resp := d.Evaluate(request("auditor", "c.x", "care")); resp.Decision != Permit {
		t.Errorf("catch-all on indexed resource = %v", resp.Decision)
	}
	// Request without resource attribute: all policies considered.
	r := &Request{Subject: []Attribute{{ID: AttrSubjectID, Value: "auditor"}}}
	if resp := d.Evaluate(r); resp.Decision != Permit {
		t.Errorf("no-resource request = %v", resp.Decision)
	}
}

func TestUnknownMatchFunctionIsIndeterminate(t *testing.T) {
	p := permitPolicy("p", "a", "c.x", "s", "f")
	p.Target.Subjects[0][0].Func = "urn:css:function:does-not-exist"
	d := newPDP(t)
	if err := d.Add(p); err != nil {
		t.Fatal(err)
	}
	if resp := d.Evaluate(request("a", "c.x", "s")); resp.Decision != Indeterminate {
		t.Errorf("unknown function = %v", resp.Decision)
	}
}

func TestPDPConcurrent(t *testing.T) {
	d := newPDP(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("p-%d-%d", g, i)
				if err := d.Add(permitPolicy(id, "actor", fmt.Sprintf("c.x%d", g), "s", "f")); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
				d.Evaluate(request("actor", fmt.Sprintf("c.x%d", g), "s"))
			}
		}(g)
	}
	wg.Wait()
	if d.Len() != 200 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestDecisionString(t *testing.T) {
	if Permit.String() != "Permit" || Deny.String() != "Deny" ||
		NotApplicable.String() != "NotApplicable" || Indeterminate.String() != "Indeterminate" {
		t.Error("Decision.String misreports")
	}
}

func TestEvaluateOne(t *testing.T) {
	d := newPDP(t)
	d.Add(permitPolicy("p1", "doctor", "c.x", "care", "a"))
	d.Add(permitPolicy("p2", "doctor", "c.x", "care", "b"))
	// EvaluateOne targets exactly the named policy, regardless of order.
	resp := d.EvaluateOne("p2", request("doctor", "c.x", "care"))
	if resp.Decision != Permit || resp.PolicyID != "p2" {
		t.Fatalf("EvaluateOne(p2) = %+v", resp)
	}
	if got := resp.Obligations[0].FieldValues(); len(got) != 1 || got[0] != "b" {
		t.Errorf("fields = %v", got)
	}
	// Non-matching request against a real policy: NotApplicable.
	if resp := d.EvaluateOne("p1", request("nurse", "c.x", "care")); resp.Decision != NotApplicable {
		t.Errorf("non-matching EvaluateOne = %v", resp.Decision)
	}
	// Unknown id: Indeterminate (fail closed at the PEP).
	if resp := d.EvaluateOne("ghost", request("doctor", "c.x", "care")); resp.Decision != Indeterminate {
		t.Errorf("unknown id = %v", resp.Decision)
	}
}
