package xacml

import "testing"

// FuzzDecode: arbitrary XML must never panic the policy decoder, and any
// policy that decodes must satisfy Validate (Decode re-validates) and
// survive an encode/decode round trip with identical evaluation behavior
// on a probe request.
func FuzzDecode(f *testing.F) {
	x := permitPolicyFuzz()
	data, err := Encode(x)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(`<Policy PolicyId="p" RuleCombiningAlgId="urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:first-applicable"><Target></Target><Rule RuleId="r" Effect="Permit"><Target></Target></Rule></Policy>`))
	f.Add([]byte("<Policy>"))
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, in []byte) {
		p, err := Decode(in)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Decode returned invalid policy: %v", err)
		}
		re, err := Encode(p)
		if err != nil {
			t.Fatalf("decoded policy does not re-encode: %v", err)
		}
		p2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded policy does not decode: %v", err)
		}
		// Same decision on a probe request through two fresh PDPs.
		probe := request("probe-actor", "probe.class", "probe-action")
		d1, _ := NewPDP(FirstApplicable)
		d2, _ := NewPDP(FirstApplicable)
		if err := d1.Add(p); err != nil {
			return // e.g. duplicate rule ids are caught at Add time
		}
		if err := d2.Add(p2); err != nil {
			t.Fatalf("round-tripped policy rejected by PDP: %v", err)
		}
		if a, b := d1.Evaluate(probe).Decision, d2.Evaluate(probe).Decision; a != b {
			t.Fatalf("evaluation diverges after round trip: %v vs %v", a, b)
		}
	})
}

func permitPolicyFuzz() *Policy {
	return &Policy{
		ID:  "fuzz-seed",
		Alg: FirstApplicable,
		Target: Target{
			Subjects:  [][]Match{{{AttrID: AttrSubjectID, Func: FuncActorContains, Value: "doctor"}}},
			Resources: [][]Match{{{AttrID: AttrResourceID, Func: FuncStringEqual, Value: "c.x"}}},
		},
		Rules: []Rule{{ID: "r", Effect: EffectPermit}},
		Obligations: []Obligation{{
			ID: ObligationIncludeFields, FulfillOn: EffectPermit,
			Attrs: []Attribute{{ID: AttrField, Value: "f1"}},
		}},
	}
}
