package xacml

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/event"
	"repro/internal/policy"
)

func srcPolicy() *policy.Policy {
	return &policy.Policy{
		ID:       "pol-000042",
		Name:     "family doctor home care access",
		Producer: "municipality-trento",
		Actor:    "family-doctor",
		Class:    "social.home-care-service",
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "name", "surname"},
	}
}

func detailRequest() *event.DetailRequest {
	return &event.DetailRequest{
		Requester: "family-doctor",
		Class:     "social.home-care-service",
		EventID:   "G-1",
		Purpose:   event.PurposeHealthcareTreatment,
		At:        time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC),
	}
}

func TestCompileShape(t *testing.T) {
	x, err := Compile(srcPolicy())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if x.ID != "pol-000042" || x.Alg != FirstApplicable {
		t.Errorf("header: %+v", x)
	}
	if len(x.Rules) != 1 || x.Rules[0].Effect != EffectPermit {
		t.Errorf("rules: %+v", x.Rules)
	}
	if len(x.Obligations) != 1 || x.Obligations[0].ID != ObligationIncludeFields {
		t.Fatalf("obligations: %+v", x.Obligations)
	}
	if got := x.Obligations[0].FieldValues(); len(got) != 3 {
		t.Errorf("obligation fields = %v", got)
	}
	if len(x.Target.Actions) != 1 {
		t.Errorf("actions = %v", x.Target.Actions)
	}
}

func TestCompileRejectsInvalidOrUnstored(t *testing.T) {
	p := srcPolicy()
	p.Fields = nil
	if _, err := Compile(p); err == nil {
		t.Error("Compile accepted invalid policy")
	}
	p2 := srcPolicy()
	p2.ID = ""
	if _, err := Compile(p2); err == nil {
		t.Error("Compile accepted policy without repository id")
	}
}

func TestCompiledPolicyPermitsMatchingRequest(t *testing.T) {
	x, err := Compile(srcPolicy())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewPDP(FirstApplicable)
	if err := d.Add(x); err != nil {
		t.Fatal(err)
	}
	resp := d.Evaluate(CompileRequest(detailRequest()))
	if resp.Decision != Permit {
		t.Fatalf("Decision = %v", resp.Decision)
	}
	fields := AuthorizedFields(&resp)
	if len(fields) != 3 || fields[0] != "patient-id" {
		t.Errorf("AuthorizedFields = %v", fields)
	}
}

func TestCompiledPolicyDeniesNonMatching(t *testing.T) {
	x, _ := Compile(srcPolicy())
	d, _ := NewPDP(FirstApplicable)
	d.Add(x)
	for name, mutate := range map[string]func(*event.DetailRequest){
		"actor":   func(r *event.DetailRequest) { r.Requester = "someone-else" },
		"class":   func(r *event.DetailRequest) { r.Class = "hospital.blood-test" },
		"purpose": func(r *event.DetailRequest) { r.Purpose = event.PurposeStatisticalAnalysis },
	} {
		r := detailRequest()
		mutate(r)
		if resp := d.Evaluate(CompileRequest(r)); resp.Decision != NotApplicable {
			t.Errorf("%s mutation: Decision = %v, want NotApplicable", name, resp.Decision)
		}
	}
}

func TestCompileValidityWindow(t *testing.T) {
	p := srcPolicy()
	p.NotBefore = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	p.NotAfter = time.Date(2010, 12, 31, 0, 0, 0, 0, time.UTC)
	x, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewPDP(FirstApplicable)
	d.Add(x)

	in := detailRequest() // June 2010
	if resp := d.Evaluate(CompileRequest(in)); resp.Decision != Permit {
		t.Errorf("in-window = %v", resp.Decision)
	}
	out := detailRequest()
	out.At = time.Date(2011, 6, 1, 0, 0, 0, 0, time.UTC)
	if resp := d.Evaluate(CompileRequest(out)); resp.Decision != NotApplicable {
		t.Errorf("out-of-window = %v", resp.Decision)
	}
}

func TestCompileRequestDefaultsToNow(t *testing.T) {
	r := detailRequest()
	r.At = time.Time{}
	req := CompileRequest(r)
	v, ok := get(req.Environment, AttrCurrentTime)
	if !ok {
		t.Fatal("no current-time attribute")
	}
	ts, err := time.Parse(time.RFC3339Nano, v)
	if err != nil {
		t.Fatalf("bad time %q: %v", v, err)
	}
	if time.Since(ts) > time.Minute {
		t.Errorf("current-time not near now: %v", ts)
	}
}

func TestAuthorizedFieldsFailClosed(t *testing.T) {
	if got := AuthorizedFields(&Response{Decision: Deny}); got != nil {
		t.Errorf("Deny response yielded fields %v", got)
	}
	if got := AuthorizedFields(&Response{Decision: Permit}); got != nil {
		t.Errorf("Permit without obligations yielded fields %v", got)
	}
	resp := &Response{Decision: Permit, Obligations: []Obligation{{ID: "other-obligation"}}}
	if got := AuthorizedFields(resp); got != nil {
		t.Errorf("unrelated obligation yielded fields %v", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := srcPolicy()
	p.NotAfter = time.Date(2010, 12, 31, 0, 0, 0, 0, time.UTC)
	x, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(x)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	s := string(data)
	for _, want := range []string{"PolicyId=", "RuleCombiningAlgId=", "<Target>", "<Rule ", "Obligation", "family-doctor", "social.home-care-service", "patient-id"} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded policy missing %q:\n%s", want, s)
		}
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	// The decoded policy must yield identical decisions.
	d1, _ := NewPDP(FirstApplicable)
	d1.Add(x)
	d2, _ := NewPDP(FirstApplicable)
	d2.Add(got)
	for _, r := range []*event.DetailRequest{detailRequest()} {
		req := CompileRequest(r)
		a, b := d1.Evaluate(req), d2.Evaluate(req)
		if a.Decision != b.Decision {
			t.Errorf("decisions diverge after round trip: %v vs %v", a.Decision, b.Decision)
		}
		fa, fb := AuthorizedFields(&a), AuthorizedFields(&b)
		if len(fa) != len(fb) {
			t.Errorf("fields diverge: %v vs %v", fa, fb)
		}
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Error("Decode accepted garbage")
	}
	if _, err := Decode([]byte(`<Policy PolicyId="x" RuleCombiningAlgId="nonsense"><Target></Target><Rule RuleId="r" Effect="Permit"><Target></Target></Rule></Policy>`)); err == nil {
		t.Error("Decode accepted unknown algorithm")
	}
}

// Property (experiment E12's invariant): for random Definition-2 policies
// and random requests, the compiled-XACML evaluation agrees with the
// native Definition-3 matching: Permit ⇔ the policy matches, and on
// Permit the obligation fields equal the policy's field set.
func TestQuickCompileEquivalence(t *testing.T) {
	actors := []event.Actor{"org-a", "org-a/dept-1", "org-b", "org-b/dept-2"}
	classes := []event.ClassID{"c.one", "c.two", "c.three"}
	purposes := []event.Purpose{"care", "stats", "admin"}
	fields := []event.FieldName{"f1", "f2", "f3", "f4"}
	base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := &policy.Policy{
			ID:       "pol-q",
			Producer: "prod",
			Actor:    actors[r.Intn(len(actors))],
			Class:    classes[r.Intn(len(classes))],
			Purposes: []event.Purpose{purposes[r.Intn(len(purposes))]},
			Fields:   fields[:1+r.Intn(len(fields))],
		}
		if r.Intn(2) == 0 {
			src.NotBefore = base.AddDate(0, r.Intn(12), 0)
		}
		if r.Intn(2) == 0 {
			src.NotAfter = base.AddDate(1, r.Intn(12), 0)
		}
		req := &event.DetailRequest{
			Requester: actors[r.Intn(len(actors))],
			Class:     classes[r.Intn(len(classes))],
			EventID:   "G-1",
			Purpose:   purposes[r.Intn(len(purposes))],
			At:        base.AddDate(r.Intn(3), r.Intn(12), r.Intn(28)),
		}

		x, err := Compile(src)
		if err != nil {
			return false
		}
		d, err := NewPDP(FirstApplicable)
		if err != nil {
			return false
		}
		if err := d.Add(x); err != nil {
			return false
		}
		resp := d.Evaluate(CompileRequest(req))

		wantMatch := src.Matches(req)
		gotPermit := resp.Decision == Permit
		if wantMatch != gotPermit {
			t.Logf("divergence: policy=%+v req=%+v native=%v xacml=%v", src, req, wantMatch, resp.Decision)
			return false
		}
		if gotPermit {
			got := AuthorizedFields(&resp)
			if len(got) != len(src.Fields) {
				return false
			}
			for i := range got {
				if got[i] != src.Fields[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
