// Package xacml implements the subset of the OASIS XACML model that the
// CSS platform compiles its privacy policies into (paper §5.1: "We are
// using XACML to model internally to the Policy Enforcer module the
// privacy policies"). Following the XACML notation, a policy is a set of
// rules with obligations; a rule specifies which actions a subject can
// perform on a resource; in CSS an action corresponds to a purpose of
// use, and the obligations carry the field list that the producer must
// apply when releasing the event details.
//
// The package provides the policy/rule/target object model, a PDP that
// evaluates requests under the standard combining algorithms, an XML
// form shaped like the paper's Fig. 8 listing, and a compiler from the
// event-based policies of internal/policy.
package xacml

import (
	"errors"
	"fmt"
)

// Attribute identifiers used by CSS requests and policies. The subject,
// resource and action ids reuse the standard XACML names; CSS-specific
// attributes live under the urn:css namespace.
const (
	AttrSubjectID   = "urn:oasis:names:tc:xacml:1.0:subject:subject-id"
	AttrResourceID  = "urn:oasis:names:tc:xacml:1.0:resource:resource-id"
	AttrActionID    = "urn:oasis:names:tc:xacml:1.0:action:action-id"
	AttrCurrentTime = "urn:oasis:names:tc:xacml:1.0:environment:current-time"
)

// Match function identifiers.
const (
	// FuncStringEqual is the standard exact string match.
	FuncStringEqual = "urn:oasis:names:tc:xacml:1.0:function:string-equal"
	// FuncActorContains is the CSS extension implementing the
	// organizational hierarchy: the policy value matches a request subject
	// that equals it or is one of its departments.
	FuncActorContains = "urn:css:function:actor-contains"
	// FuncTimeGreaterOrEqual / FuncTimeLessOrEqual compare RFC 3339
	// instants; they express validity windows.
	FuncTimeGreaterOrEqual = "urn:css:function:time-greater-or-equal"
	FuncTimeLessOrEqual    = "urn:css:function:time-less-or-equal"
)

// ObligationIncludeFields is the obligation carried by compiled CSS
// policies: on Permit, the producer must include exactly the listed
// fields in the released event details.
const ObligationIncludeFields = "urn:css:obligation:include-fields"

// AttrField is the attribute id of one field inside an include-fields
// obligation.
const AttrField = "urn:css:attribute:field"

// Effect is the effect of a rule.
type Effect string

// Rule effects.
const (
	EffectPermit Effect = "Permit"
	EffectDeny   Effect = "Deny"
)

// Decision is the outcome of an evaluation.
type Decision int

// Evaluation outcomes. NotApplicable means no policy's target matched;
// Indeterminate reports an evaluation error (e.g. malformed attribute).
const (
	NotApplicable Decision = iota
	Permit
	Deny
	Indeterminate
)

// String returns the XACML name of the decision.
func (d Decision) String() string {
	switch d {
	case Permit:
		return "Permit"
	case Deny:
		return "Deny"
	case Indeterminate:
		return "Indeterminate"
	default:
		return "NotApplicable"
	}
}

// CombiningAlg identifies a rule/policy combining algorithm.
type CombiningAlg string

// Supported combining algorithms.
const (
	DenyOverrides   CombiningAlg = "urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:deny-overrides"
	PermitOverrides CombiningAlg = "urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:permit-overrides"
	FirstApplicable CombiningAlg = "urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:first-applicable"
)

var validAlgs = map[CombiningAlg]bool{
	DenyOverrides: true, PermitOverrides: true, FirstApplicable: true,
}

// Attribute is one (id, value) pair of a request or an obligation.
type Attribute struct {
	ID    string
	Value string
}

// Request is an XACML authorization request: the attribute bags of the
// subject, resource, action and environment categories.
type Request struct {
	Subject     []Attribute
	Resource    []Attribute
	Action      []Attribute
	Environment []Attribute
}

// Get returns the first value of the attribute with the given id in the
// given bag.
func get(bag []Attribute, id string) (string, bool) {
	for _, a := range bag {
		if a.ID == id {
			return a.Value, true
		}
	}
	return "", false
}

// Match is one attribute test inside a target: apply Func to the literal
// Value and the request attribute designated by AttrID.
type Match struct {
	AttrID string
	Func   string
	Value  string
}

// Target restricts the applicability of a policy or rule. Each category
// holds a disjunction of conjunctions: the category matches if ANY inner
// group matches, and a group matches if ALL its Matches hold. An empty
// category matches everything (XACML AnySubject/AnyResource/AnyAction).
type Target struct {
	Subjects  [][]Match
	Resources [][]Match
	Actions   [][]Match
}

// Rule is one XACML rule: a target plus an effect. (CSS compiles
// conditions into target matches, so Rule has no separate condition.)
type Rule struct {
	ID     string
	Effect Effect
	Target Target
}

// Obligation is an operation the PEP must fulfil when the decision
// matches FulfillOn — for CSS, the include-fields directive.
type Obligation struct {
	ID        string
	FulfillOn Effect
	Attrs     []Attribute
}

// FieldValues returns the values of all AttrField attributes, i.e. the
// authorized field names of an include-fields obligation.
func (o *Obligation) FieldValues() []string {
	var out []string
	for _, a := range o.Attrs {
		if a.ID == AttrField {
			out = append(out, a.Value)
		}
	}
	return out
}

// Policy is an XACML policy: a target, a combined set of rules, and
// obligations delivered with matching decisions.
type Policy struct {
	ID          string
	Description string
	Alg         CombiningAlg
	Target      Target
	Rules       []Rule
	Obligations []Obligation
}

// Validate checks structural integrity of the policy.
func (p *Policy) Validate() error {
	if p.ID == "" {
		return errors.New("xacml: policy without id")
	}
	if !validAlgs[p.Alg] {
		return fmt.Errorf("xacml: policy %s: unknown combining algorithm %q", p.ID, p.Alg)
	}
	if len(p.Rules) == 0 {
		return fmt.Errorf("xacml: policy %s has no rules", p.ID)
	}
	for i, r := range p.Rules {
		if r.ID == "" {
			return fmt.Errorf("xacml: policy %s: rule %d without id", p.ID, i)
		}
		if r.Effect != EffectPermit && r.Effect != EffectDeny {
			return fmt.Errorf("xacml: policy %s: rule %s has invalid effect %q", p.ID, r.ID, r.Effect)
		}
	}
	for _, o := range p.Obligations {
		if o.ID == "" {
			return fmt.Errorf("xacml: policy %s: obligation without id", p.ID)
		}
		if o.FulfillOn != EffectPermit && o.FulfillOn != EffectDeny {
			return fmt.Errorf("xacml: policy %s: obligation %s has invalid FulfillOn %q", p.ID, o.ID, o.FulfillOn)
		}
	}
	return nil
}

// Response is the result of a PDP evaluation: the decision, the
// obligations of the deciding policy whose FulfillOn matches, and the id
// of the policy that determined the decision (empty for NotApplicable).
type Response struct {
	Decision    Decision
	Obligations []Obligation
	PolicyID    string
}
