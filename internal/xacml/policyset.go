package xacml

import (
	"encoding/xml"
	"fmt"

	"repro/internal/event"
	"repro/internal/policy"
)

// PolicySet is the XACML container grouping policies under a shared
// target and a policy-combining algorithm. CSS uses it as the exported
// form of one data producer's whole policy corpus — the artifact a
// producer hands to an auditor or migrates to another XACML engine.
type PolicySet struct {
	ID          string
	Description string
	Alg         CombiningAlg
	Target      Target
	Policies    []*Policy
}

// Validate checks structural integrity of the set and of every member.
func (ps *PolicySet) Validate() error {
	if ps.ID == "" {
		return fmt.Errorf("xacml: policy set without id")
	}
	if !validAlgs[ps.Alg] {
		return fmt.Errorf("xacml: policy set %s: unknown combining algorithm %q", ps.ID, ps.Alg)
	}
	if len(ps.Policies) == 0 {
		return fmt.Errorf("xacml: policy set %s has no policies", ps.ID)
	}
	seen := map[string]bool{}
	for _, p := range ps.Policies {
		if err := p.Validate(); err != nil {
			return err
		}
		if seen[p.ID] {
			return fmt.Errorf("xacml: policy set %s: duplicate policy id %q", ps.ID, p.ID)
		}
		seen[p.ID] = true
	}
	return nil
}

// Evaluate runs a request against the set: the set's target gates the
// members, whose decisions combine under the set's algorithm.
func (ps *PolicySet) Evaluate(req *Request) Response {
	applicable, err := matchTarget(&ps.Target, req)
	if err != nil {
		return Response{Decision: Indeterminate, PolicyID: ps.ID}
	}
	if !applicable {
		return Response{Decision: NotApplicable}
	}
	resp := Response{Decision: NotApplicable}
	for _, p := range ps.Policies {
		r := evaluatePolicy(p, req)
		if r.Decision == NotApplicable {
			continue
		}
		switch ps.Alg {
		case FirstApplicable:
			return r
		case DenyOverrides:
			if r.Decision == Deny || r.Decision == Indeterminate {
				return r
			}
			if resp.Decision == NotApplicable {
				resp = r
			}
		case PermitOverrides:
			if r.Decision == Permit {
				return r
			}
			if resp.Decision == NotApplicable {
				resp = r
			}
		}
	}
	return resp
}

// CompileProducerSet compiles a producer's policies into one PolicySet,
// first-applicable, ordered most-specific-actor-first so the set's
// standalone evaluation agrees with the platform's Definition-3
// resolution order.
func CompileProducerSet(producer event.ProducerID, policies []*policy.Policy) (*PolicySet, error) {
	if producer == "" {
		return nil, fmt.Errorf("xacml: empty producer")
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("xacml: producer %s has no policies to export", producer)
	}
	ordered := policy.OrderForEnforcement(policies)
	ps := &PolicySet{
		ID:          "policy-set:" + string(producer),
		Description: fmt.Sprintf("privacy policies of data producer %s", producer),
		Alg:         FirstApplicable,
	}
	for _, p := range ordered {
		if p.Producer != producer {
			return nil, fmt.Errorf("xacml: policy %s belongs to %s, not %s", p.ID, p.Producer, producer)
		}
		compiled, err := Compile(p)
		if err != nil {
			return nil, err
		}
		ps.Policies = append(ps.Policies, compiled)
	}
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	return ps, nil
}

// XML form of a policy set.

type xmlPolicySet struct {
	XMLName     xml.Name     `xml:"PolicySet"`
	PolicySetID string       `xml:"PolicySetId,attr"`
	Alg         CombiningAlg `xml:"PolicyCombiningAlgId,attr"`
	Description string       `xml:"Description,omitempty"`
	Target      xmlTarget    `xml:"Target"`
	Policies    []xmlPolicy  `xml:"Policy"`
}

// EncodeSet serializes a policy set.
func EncodeSet(ps *PolicySet) ([]byte, error) {
	w := xmlPolicySet{
		PolicySetID: ps.ID,
		Alg:         ps.Alg,
		Description: ps.Description,
		Target:      toXMLTarget(ps.Target),
	}
	for _, p := range ps.Policies {
		data, err := Encode(p)
		if err != nil {
			return nil, err
		}
		var xp xmlPolicy
		if err := xml.Unmarshal(data, &xp); err != nil {
			return nil, err
		}
		w.Policies = append(w.Policies, xp)
	}
	return xml.MarshalIndent(w, "", "  ")
}

// DecodeSet parses and re-validates a policy set.
func DecodeSet(data []byte) (*PolicySet, error) {
	var w xmlPolicySet
	if err := xml.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("xacml: decode set: %w", err)
	}
	ps := &PolicySet{
		ID:          w.PolicySetID,
		Description: w.Description,
		Alg:         w.Alg,
		Target:      fromXMLTarget(w.Target),
	}
	for _, xp := range w.Policies {
		// Round-trip each member through the policy decoder for its
		// validation.
		data, err := xml.Marshal(xp)
		if err != nil {
			return nil, err
		}
		p, err := Decode(data)
		if err != nil {
			return nil, err
		}
		ps.Policies = append(ps.Policies, p)
	}
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	return ps, nil
}
