package xacml

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/event"
	"repro/internal/policy"
)

func producerPolicies() []*policy.Policy {
	return []*policy.Policy{
		{
			ID: "pol-000001", Producer: "hospital", Actor: "org",
			Class:    "hospital.blood-test",
			Purposes: []event.Purpose{"care"},
			Fields:   []event.FieldName{"patient-id"},
		},
		{
			ID: "pol-000002", Producer: "hospital", Actor: "org/dept",
			Class:    "hospital.blood-test",
			Purposes: []event.Purpose{"care"},
			Fields:   []event.FieldName{"patient-id", "hemoglobin"},
		},
		{
			ID: "pol-000003", Producer: "hospital", Actor: "gov",
			Class:    "hospital.discharge",
			Purposes: []event.Purpose{"stats"},
			Fields:   []event.FieldName{"patient-id"},
		},
	}
}

func TestCompileProducerSet(t *testing.T) {
	ps, err := CompileProducerSet("hospital", producerPolicies())
	if err != nil {
		t.Fatalf("CompileProducerSet: %v", err)
	}
	if len(ps.Policies) != 3 || ps.Alg != FirstApplicable {
		t.Fatalf("set = %+v", ps)
	}
	// Most specific actor first.
	if ps.Policies[0].ID != "pol-000002" {
		t.Errorf("ordering = %s first", ps.Policies[0].ID)
	}
	// Guards.
	if _, err := CompileProducerSet("", producerPolicies()); err == nil {
		t.Error("empty producer accepted")
	}
	if _, err := CompileProducerSet("hospital", nil); err == nil {
		t.Error("empty corpus accepted")
	}
	foreign := producerPolicies()
	foreign[1].Producer = "someone-else"
	if _, err := CompileProducerSet("hospital", foreign); err == nil {
		t.Error("foreign policy accepted")
	}
}

func TestPolicySetEvaluate(t *testing.T) {
	ps, err := CompileProducerSet("hospital", producerPolicies())
	if err != nil {
		t.Fatal(err)
	}
	// Department request hits the most specific policy (2 fields).
	req := CompileRequest(&event.DetailRequest{
		Requester: "org/dept", Class: "hospital.blood-test", EventID: "e", Purpose: "care",
	})
	resp := ps.Evaluate(req)
	if resp.Decision != Permit || resp.PolicyID != "pol-000002" {
		t.Fatalf("dept response = %+v", resp)
	}
	if got := AuthorizedFields(&resp); len(got) != 2 {
		t.Errorf("fields = %v", got)
	}
	// Sibling actor falls through to the org-level policy.
	req2 := CompileRequest(&event.DetailRequest{
		Requester: "org/other", Class: "hospital.blood-test", EventID: "e", Purpose: "care",
	})
	resp2 := ps.Evaluate(req2)
	if resp2.Decision != Permit || resp2.PolicyID != "pol-000001" {
		t.Errorf("sibling response = %+v", resp2)
	}
	// No match.
	req3 := CompileRequest(&event.DetailRequest{
		Requester: "nobody", Class: "hospital.blood-test", EventID: "e", Purpose: "care",
	})
	if resp := ps.Evaluate(req3); resp.Decision != NotApplicable {
		t.Errorf("no-match = %v", resp.Decision)
	}
	// Set-level target gates everything.
	ps.Target.Subjects = [][]Match{{{AttrID: AttrSubjectID, Func: FuncStringEqual, Value: "only-me"}}}
	if resp := ps.Evaluate(req); resp.Decision != NotApplicable {
		t.Errorf("gated set = %v", resp.Decision)
	}
}

func TestPolicySetXMLRoundTrip(t *testing.T) {
	ps, err := CompileProducerSet("hospital", producerPolicies())
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSet(ps)
	if err != nil {
		t.Fatalf("EncodeSet: %v", err)
	}
	s := string(data)
	for _, want := range []string{"PolicySetId=", "PolicyCombiningAlgId=", "pol-000002", "hospital.discharge"} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded set missing %q", want)
		}
	}
	got, err := DecodeSet(data)
	if err != nil {
		t.Fatalf("DecodeSet: %v", err)
	}
	if len(got.Policies) != 3 || got.ID != ps.ID {
		t.Fatalf("round trip = %+v", got)
	}
	// Same decisions after the round trip.
	req := CompileRequest(&event.DetailRequest{
		Requester: "org/dept", Class: "hospital.blood-test", EventID: "e", Purpose: "care",
	})
	a, b := ps.Evaluate(req), got.Evaluate(req)
	if a.Decision != b.Decision || a.PolicyID != b.PolicyID {
		t.Errorf("diverged: %+v vs %+v", a, b)
	}
}

func TestDecodeSetRejectsInvalid(t *testing.T) {
	if _, err := DecodeSet([]byte("junk")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodeSet([]byte(`<PolicySet PolicySetId="x" PolicyCombiningAlgId="urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:first-applicable"><Target></Target></PolicySet>`)); err == nil {
		t.Error("empty set accepted")
	}
}

// Property: the exported producer set evaluated standalone agrees with
// the platform's repository Match on random requests.
func TestQuickProducerSetMatchesRepository(t *testing.T) {
	repo := policy.NewRepository()
	var stored []*policy.Policy
	for _, p := range producerPolicies() {
		s, err := repo.Add(p)
		if err != nil {
			t.Fatal(err)
		}
		stored = append(stored, s)
	}
	ps, err := CompileProducerSet("hospital", stored)
	if err != nil {
		t.Fatal(err)
	}
	actors := []event.Actor{"org", "org/dept", "org/other", "gov", "nobody"}
	classes := []event.ClassID{"hospital.blood-test", "hospital.discharge", "other.class"}
	purposes := []event.Purpose{"care", "stats", "admin"}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		req := &event.DetailRequest{
			Requester: actors[rnd.Intn(len(actors))],
			Class:     classes[rnd.Intn(len(classes))],
			EventID:   "e",
			Purpose:   purposes[rnd.Intn(len(purposes))],
			At:        time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC),
		}
		matched, matchErr := repo.Match(req)
		resp := ps.Evaluate(CompileRequest(req))
		if matchErr != nil {
			return resp.Decision != Permit
		}
		return resp.Decision == Permit && resp.PolicyID == string(matched.ID)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
