// Package enforcer implements the Policy Enforcer module of the data
// controller (paper §5.2, Fig. 4): the Policy Enforcement Point receives
// a request for details, the Policy Information Point maps the global
// event ID to the producer-local one, the Policy Decision Point retrieves
// and evaluates the matching XACML policy, and — on permit — the PEP asks
// the producer's gateway for the authorized part of the event details.
//
// This is Algorithm 1 (getEventDetails):
//
//  1. src_eID ← retrieveEventProducerId(eID)          (PIP)
//  2. ⟨A, e_j, S, F⟩ ← matchingPolicy(R)               (PDP)
//  3. if evaluate(⟨A, e_j, S, F⟩, R) ≡ permit then
//  4. return getResponse(src_eID, F)                 (producer, Alg. 2)
//  5. return deny
package enforcer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/idmap"
	"repro/internal/policy"
	"repro/internal/xacml"
)

// Errors reported during detail-request resolution.
var (
	// ErrDenied is the "Access Denied message" sent to the consumer when
	// no policy matches or the evaluation fails (deny-by-default).
	ErrDenied = errors.New("enforcer: access denied")
	// ErrUnknownEvent reports a request for an event id the platform
	// never assigned.
	ErrUnknownEvent = errors.New("enforcer: unknown event")
	// ErrClassMismatch reports a request whose declared class does not
	// match the class recorded for the event id.
	ErrClassMismatch = errors.New("enforcer: request class does not match event class")
	// ErrNoGateway reports a producer with no attached gateway.
	ErrNoGateway = errors.New("enforcer: no gateway attached for producer")
	// ErrUnsafeResponse reports a gateway response that exposed fields
	// outside the authorized set (defense in depth; must never happen).
	ErrUnsafeResponse = errors.New("enforcer: gateway response not privacy safe")
)

// DetailSource is the producer-side interface of Algorithm 2: the local
// cooperation gateway, reached directly in process or through the web
// service transport.
type DetailSource interface {
	GetResponse(src event.SourceID, fields []event.FieldName) (*event.Detail, error)
}

// TracedDetailSource is optionally implemented by detail sources that
// can propagate the flow's trace/correlation ID to the producer side
// (e.g. the HTTP gateway client forwards it as the X-Trace-Id header).
// The enforcer prefers it over plain GetResponse when available.
type TracedDetailSource interface {
	GetResponseTraced(trace string, src event.SourceID, fields []event.FieldName) (*event.Detail, error)
}

// StageObserver receives the duration of one named enforcement stage of
// a traced flow ("pdp.decide", "gateway.fetch"). Observers must be fast
// and must not block; the controller installs one that records spans
// and latency histograms.
type StageObserver func(trace, stage string, start time.Time, d time.Duration)

// Outcome describes how a detail request was resolved, for auditing.
type Outcome struct {
	// Decision is Permit or Deny.
	Decision event.Decision
	// PolicyID names the matched policy, when one matched.
	PolicyID string
	// Fields is the authorized field set on Permit.
	Fields []event.FieldName
	// Producer and Source identify the event origin when resolved.
	Producer event.ProducerID
	Source   event.SourceID
	// Reason explains a denial.
	Reason string
}

// Enforcer wires the PEP, PDP, PIP and the producer gateways together.
// Safe for concurrent use.
type Enforcer struct {
	repo *policy.Repository
	pdp  *xacml.PDP
	ids  *idmap.Map

	mu       sync.RWMutex
	gateways map[event.ProducerID]DetailSource
	observe  StageObserver
}

// New creates an enforcer around a policy repository (the PAP's store)
// and the ID map (the PIP's backing data).
func New(repo *policy.Repository, ids *idmap.Map) (*Enforcer, error) {
	if repo == nil || ids == nil {
		return nil, errors.New("enforcer: nil repository or id map")
	}
	pdp, err := xacml.NewPDP(xacml.FirstApplicable)
	if err != nil {
		return nil, err
	}
	return &Enforcer{
		repo:     repo,
		pdp:      pdp,
		ids:      ids,
		gateways: make(map[event.ProducerID]DetailSource),
	}, nil
}

// SetObserver installs the stage observer (nil disables observation).
func (e *Enforcer) SetObserver(o StageObserver) {
	e.mu.Lock()
	e.observe = o
	e.mu.Unlock()
}

// observeStage reports a finished stage to the observer, if any.
func (e *Enforcer) observeStage(trace, stage string, start time.Time) {
	e.mu.RLock()
	o := e.observe
	e.mu.RUnlock()
	if o != nil {
		o(trace, stage, start, time.Since(start))
	}
}

// AttachGateway registers the detail source of a producer.
func (e *Enforcer) AttachGateway(p event.ProducerID, g DetailSource) error {
	if p == "" || g == nil {
		return errors.New("enforcer: empty producer or nil gateway")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.gateways[p] = g
	return nil
}

func (e *Enforcer) gateway(p event.ProducerID) (DetailSource, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	g, ok := e.gateways[p]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoGateway, p)
	}
	return g, nil
}

// AddPolicy stores an elicited policy in the repository and installs its
// XACML compilation in the PDP, keeping the two representations in step.
// The stored policy (with its assigned ID) is returned.
func (e *Enforcer) AddPolicy(p *policy.Policy) (*policy.Policy, error) {
	stored, err := e.repo.Add(p)
	if err != nil {
		return nil, err
	}
	compiled, err := xacml.Compile(stored)
	if err != nil {
		// Roll back the repository so the two stores stay consistent.
		e.repo.Remove(stored.ID)
		return nil, err
	}
	if err := e.pdp.Add(compiled); err != nil {
		e.repo.Remove(stored.ID)
		return nil, err
	}
	return stored, nil
}

// RemovePolicy revokes a policy from both representations.
func (e *Enforcer) RemovePolicy(id policy.ID) error {
	if err := e.repo.Remove(id); err != nil {
		return err
	}
	return e.pdp.Remove(string(id))
}

// Repository exposes the policy repository (read paths: listing,
// subscription authorization).
func (e *Enforcer) Repository() *policy.Repository { return e.repo }

// GetEventDetails resolves a detail request — Algorithm 1. On permit it
// returns the privacy-aware detail produced by the gateway plus the
// outcome; on deny it returns a nil detail, the outcome with the reason,
// and ErrDenied.
func (e *Enforcer) GetEventDetails(r *event.DetailRequest) (*event.Detail, Outcome, error) {
	if err := r.Validate(); err != nil {
		return nil, Outcome{Decision: event.Deny, Reason: err.Error()}, err
	}

	// Step 1 — PIP: map the global event id to its origin.
	m, err := e.ids.Resolve(r.EventID)
	if err != nil {
		if errors.Is(err, idmap.ErrNotFound) {
			out := Outcome{Decision: event.Deny, Reason: "unknown event id"}
			return nil, out, fmt.Errorf("%w: %s", ErrUnknownEvent, r.EventID)
		}
		return nil, Outcome{Decision: event.Deny, Reason: err.Error()}, err
	}
	if m.Class != r.Class {
		out := Outcome{Decision: event.Deny, Producer: m.Producer, Source: m.Source,
			Reason: fmt.Sprintf("event %s has class %s, not %s", r.EventID, m.Class, r.Class)}
		return nil, out, ErrClassMismatch
	}

	// Step 2 — policy matching phase: retrieve THE matching policy
	// (Definition 3, with the most-specific-actor/newest tie-break).
	pdpStart := time.Now()
	matched, err := e.repo.Match(r)
	if err != nil {
		e.observeStage(r.Trace, "pdp.decide", pdpStart)
		out := Outcome{Decision: event.Deny, Producer: m.Producer, Source: m.Source,
			Reason: "no matching policy"}
		return nil, out, ErrDenied
	}
	// Step 3 — evaluate the matched policy in its XACML form.
	resp := e.pdp.EvaluateOne(string(matched.ID), xacml.CompileRequest(r))
	e.observeStage(r.Trace, "pdp.decide", pdpStart)
	if resp.Decision != xacml.Permit {
		out := Outcome{Decision: event.Deny, Producer: m.Producer, Source: m.Source,
			PolicyID: resp.PolicyID, Reason: "matched policy did not permit (" + resp.Decision.String() + ")"}
		return nil, out, ErrDenied
	}
	fields := xacml.AuthorizedFields(&resp)
	if len(fields) == 0 {
		out := Outcome{Decision: event.Deny, Producer: m.Producer, Source: m.Source,
			PolicyID: resp.PolicyID, Reason: "permit without authorized fields"}
		return nil, out, ErrDenied
	}

	// Step 4 — the producer applies the obligations (Algorithm 2).
	g, err := e.gateway(m.Producer)
	if err != nil {
		out := Outcome{Decision: event.Deny, Producer: m.Producer, Source: m.Source,
			PolicyID: resp.PolicyID, Reason: err.Error()}
		return nil, out, err
	}
	fetchStart := time.Now()
	var d *event.Detail
	if tg, ok := g.(TracedDetailSource); ok && r.Trace != "" {
		d, err = tg.GetResponseTraced(r.Trace, m.Source, fields)
	} else {
		d, err = g.GetResponse(m.Source, fields)
	}
	e.observeStage(r.Trace, "gateway.fetch", fetchStart)
	if err != nil {
		out := Outcome{Decision: event.Deny, Producer: m.Producer, Source: m.Source,
			PolicyID: resp.PolicyID, Reason: "gateway: " + err.Error()}
		return nil, out, err
	}
	// Defense in depth: re-check Definition 4 at the controller before
	// forwarding to the consumer.
	if !d.ExposesOnly(fields) {
		out := Outcome{Decision: event.Deny, Producer: m.Producer, Source: m.Source,
			PolicyID: resp.PolicyID, Reason: "gateway response exposed unauthorized fields"}
		return nil, out, ErrUnsafeResponse
	}
	out := Outcome{
		Decision: event.Permit,
		PolicyID: resp.PolicyID,
		Fields:   fields,
		Producer: m.Producer,
		Source:   m.Source,
	}
	return d, out, nil
}
