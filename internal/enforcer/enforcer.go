// Package enforcer implements the Policy Enforcer module of the data
// controller (paper §5.2, Fig. 4): the Policy Enforcement Point receives
// a request for details, the Policy Information Point maps the global
// event ID to the producer-local one, the Policy Decision Point retrieves
// and evaluates the matching XACML policy, and — on permit — the PEP asks
// the producer's gateway for the authorized part of the event details.
//
// This is Algorithm 1 (getEventDetails):
//
//  1. src_eID ← retrieveEventProducerId(eID)          (PIP)
//  2. ⟨A, e_j, S, F⟩ ← matchingPolicy(R)               (PDP)
//  3. if evaluate(⟨A, e_j, S, F⟩, R) ≡ permit then
//  4. return getResponse(src_eID, F)                 (producer, Alg. 2)
//  5. return deny
package enforcer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/event"
	"repro/internal/idmap"
	"repro/internal/policy"
	"repro/internal/telemetry"
	"repro/internal/xacml"
)

// Errors reported during detail-request resolution.
var (
	// ErrDenied is the "Access Denied message" sent to the consumer when
	// no policy matches or the evaluation fails (deny-by-default).
	ErrDenied = errors.New("enforcer: access denied")
	// ErrUnknownEvent reports a request for an event id the platform
	// never assigned.
	ErrUnknownEvent = errors.New("enforcer: unknown event")
	// ErrClassMismatch reports a request whose declared class does not
	// match the class recorded for the event id.
	ErrClassMismatch = errors.New("enforcer: request class does not match event class")
	// ErrNoGateway reports a producer with no attached gateway.
	ErrNoGateway = errors.New("enforcer: no gateway attached for producer")
	// ErrUnsafeResponse reports a gateway response that exposed fields
	// outside the authorized set (defense in depth; must never happen).
	ErrUnsafeResponse = errors.New("enforcer: gateway response not privacy safe")
	// ErrSourceUnavailable reports a permitted request whose producer
	// gateway could not be reached (connection failure, timeout, open
	// circuit, 5xx). It is deliberately distinct from ErrDenied: an
	// unavailable source is a deferred answer, never a policy denial,
	// and the audit trail records it as such.
	ErrSourceUnavailable = errors.New("enforcer: event source unavailable")
)

// DetailSource is the producer-side interface of Algorithm 2: the local
// cooperation gateway, reached directly in process or through the web
// service transport.
type DetailSource interface {
	GetResponse(src event.SourceID, fields []event.FieldName) (*event.Detail, error)
}

// TracedDetailSource is optionally implemented by detail sources that
// can propagate the flow's trace/correlation ID to the producer side
// (e.g. the HTTP gateway client forwards it as the X-Trace-Id header).
// The enforcer prefers it over plain GetResponse when available.
type TracedDetailSource interface {
	GetResponseTraced(trace string, src event.SourceID, fields []event.FieldName) (*event.Detail, error)
}

// ContextDetailSource is optionally implemented by detail sources that
// honor a request context end to end: the consumer's deadline (or its
// hang-up) cancels the producer round-trip instead of leaving it to run
// to completion for nobody. Preferred over TracedDetailSource and
// GetResponse when available.
type ContextDetailSource interface {
	GetResponseContext(ctx context.Context, trace string, src event.SourceID, fields []event.FieldName) (*event.Detail, error)
}

// CacheObserver receives the outcome of one read-path cache lookup. The
// alias form (not a defined type) lets wiring code treat any component
// exposing SetCacheObserver(func(string, bool)) uniformly. For the
// "gateway.flight" pseudo-cache a hit means the fetch was coalesced onto
// an identical in-flight request.
type CacheObserver = func(cache string, hit bool)

// decisionCacheSize bounds the PDP decision cache. Entries are tiny
// (a key triple, a field-name slice and two strings), so the bound is
// about distinct (actor, class, purpose) combinations, not memory.
const decisionCacheSize = 4096

// decisionKey identifies a memoizable match+evaluate outcome. The
// authorized fieldset is not part of the key because it is an output:
// (actor, class, purpose) determine the matching policy and hence its
// fieldset (Definition 3 + the most-specific tie-break).
type decisionKey struct {
	actor   event.Actor
	class   event.ClassID
	purpose event.Purpose
}

// decision is a memoized outcome of Algorithm 1 steps 2–3. Cached
// instances are shared across requests; Fields must be treated as
// immutable by every consumer.
type decision struct {
	epoch    uint64
	permit   bool
	policyID string
	reason   string
	fields   []event.FieldName
}

// flightKey identifies one gateway fetch for coalescing. The policy id
// pins the exact authorized fieldset (a policy's fields are fixed while
// installed), so two requests coalesce only when they would release
// byte-identical privacy-aware details.
type flightKey struct {
	source   event.SourceID
	policyID string
}

// Outcome describes how a detail request was resolved, for auditing.
type Outcome struct {
	// Decision is Permit or Deny.
	Decision event.Decision
	// PolicyID names the matched policy, when one matched.
	PolicyID string
	// Fields is the authorized field set on Permit.
	Fields []event.FieldName
	// Producer and Source identify the event origin when resolved.
	Producer event.ProducerID
	Source   event.SourceID
	// Reason explains a denial.
	Reason string
}

// Enforcer wires the PEP, PDP, PIP and the producer gateways together.
// Safe for concurrent use.
//
// The hot path (GetEventDetails) is accelerated by two mechanisms that
// must never weaken deny-by-default:
//
//   - an epoch-versioned decision cache over steps 2–3. Readers load the
//     epoch before computing and store the outcome under that epoch;
//     AddPolicy/RemovePolicy bump the epoch only after the repository and
//     the PDP are both updated, so an entry is served only if no policy
//     mutation completed since before its computation began. A stale
//     permit is therefore impossible: any request starting after
//     RemovePolicy returns sees the new epoch and re-evaluates. While any
//     installed policy carries a validity window the cache is bypassed
//     entirely (decisions become time-dependent, tracked by timeBounded).
//   - singleflight coalescing of identical gateway fetches, keyed on
//     (source, policy): concurrent consumers authorized by the same
//     policy for the same event share one producer round-trip. The
//     result is shared only for the duration of the flight — the
//     controller never stores event details (see the E13 ablation:
//     controller-side detail caching would duplicate sensitive data
//     outside the producer's control).
type Enforcer struct {
	repo *policy.Repository
	pdp  *xacml.PDP
	ids  *idmap.Map

	mu       sync.RWMutex
	gateways map[event.ProducerID]DetailSource

	epoch       atomic.Uint64
	timeBounded atomic.Int64
	decisions   *cache.LRU[decisionKey, decision]
	flights     cache.Group[flightKey, *event.Detail]
	cacheObs    atomic.Pointer[CacheObserver]
}

// New creates an enforcer around a policy repository (the PAP's store)
// and the ID map (the PIP's backing data).
func New(repo *policy.Repository, ids *idmap.Map) (*Enforcer, error) {
	if repo == nil || ids == nil {
		return nil, errors.New("enforcer: nil repository or id map")
	}
	pdp, err := xacml.NewPDP(xacml.FirstApplicable)
	if err != nil {
		return nil, err
	}
	return &Enforcer{
		repo:      repo,
		pdp:       pdp,
		ids:       ids,
		gateways:  make(map[event.ProducerID]DetailSource),
		decisions: cache.NewLRU[decisionKey, decision](decisionCacheSize),
	}, nil
}

// SetCacheObserver installs the cache hit/miss observer (nil disables).
// The controller wires it into the telemetry registry.
func (e *Enforcer) SetCacheObserver(o CacheObserver) {
	if o == nil {
		e.cacheObs.Store(nil)
		return
	}
	e.cacheObs.Store(&o)
}

// noteCache reports one cache lookup to the observer, if any.
func (e *Enforcer) noteCache(cache string, hit bool) {
	if o := e.cacheObs.Load(); o != nil {
		(*o)(cache, hit)
	}
}

// AttachGateway registers the detail source of a producer.
func (e *Enforcer) AttachGateway(p event.ProducerID, g DetailSource) error {
	if p == "" || g == nil {
		return errors.New("enforcer: empty producer or nil gateway")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.gateways[p] = g
	return nil
}

func (e *Enforcer) gateway(p event.ProducerID) (DetailSource, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	g, ok := e.gateways[p]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoGateway, p)
	}
	return g, nil
}

// AddPolicy stores an elicited policy in the repository and installs its
// XACML compilation in the PDP, keeping the two representations in step.
// The stored policy (with its assigned ID) is returned. The decision
// epoch is bumped after the mutation completes (and after a rollback,
// whose intermediate state was briefly visible), invalidating every
// cached decision computed before it.
func (e *Enforcer) AddPolicy(p *policy.Policy) (*policy.Policy, error) {
	stored, err := e.repo.Add(p)
	if err != nil {
		return nil, err
	}
	compiled, err := xacml.Compile(stored)
	if err != nil {
		// Roll back the repository so the two stores stay consistent.
		e.repo.Remove(stored.ID)
		e.epoch.Add(1)
		return nil, err
	}
	if err := e.pdp.Add(compiled); err != nil {
		e.repo.Remove(stored.ID)
		e.epoch.Add(1)
		return nil, err
	}
	if !stored.NotBefore.IsZero() || !stored.NotAfter.IsZero() {
		e.timeBounded.Add(1)
	}
	e.epoch.Add(1)
	return stored, nil
}

// RemovePolicy revokes a policy from both representations. When it
// returns, the epoch has been bumped: the very next request re-evaluates
// against the post-revocation policy set — no cached permit window.
func (e *Enforcer) RemovePolicy(id policy.ID) error {
	p, err := e.repo.Get(id)
	if err != nil {
		return err
	}
	if err := e.repo.Remove(id); err != nil {
		return err
	}
	err = e.pdp.Remove(string(id))
	if !p.NotBefore.IsZero() || !p.NotAfter.IsZero() {
		e.timeBounded.Add(-1)
	}
	e.epoch.Add(1)
	return err
}

// InvalidateDecisions bumps the decision epoch, discarding every cached
// decision. The controller calls it on consent changes: consent is
// checked live on each flow (never cached here), so this is defense in
// depth, keeping the cache's lifetime bounded by any authorization-
// relevant mutation.
func (e *Enforcer) InvalidateDecisions() {
	e.epoch.Add(1)
}

// Repository exposes the policy repository (read paths: listing,
// subscription authorization).
func (e *Enforcer) Repository() *policy.Repository { return e.repo }

// decide runs Algorithm 1 steps 2–3 (policy matching + XACML
// evaluation) through the epoch-versioned decision cache. Decisions are
// memoizable only while no installed policy carries a validity window:
// without windows the outcome is fully determined by (actor, class,
// purpose), whatever the request instant.
func (e *Enforcer) decide(r *event.DetailRequest) decision {
	cacheable := e.timeBounded.Load() == 0
	var key decisionKey
	var epoch uint64
	if cacheable {
		key = decisionKey{actor: r.Requester, class: r.Class, purpose: r.Purpose}
		// Load the epoch BEFORE computing: if a policy mutation completes
		// underneath us, it bumps past this value and the stored entry is
		// stillborn — never served.
		epoch = e.epoch.Load()
		if dec, ok := e.decisions.Get(key); ok && dec.epoch == epoch {
			e.noteCache("pdp.decision", true)
			return dec
		}
		e.noteCache("pdp.decision", false)
	}
	dec := e.evaluate(r)
	if cacheable {
		dec.epoch = epoch
		e.decisions.Put(key, dec)
	}
	return dec
}

// evaluate is the uncached body of decide.
func (e *Enforcer) evaluate(r *event.DetailRequest) decision {
	// Step 2 — policy matching phase: retrieve THE matching policy
	// (Definition 3, with the most-specific-actor/newest tie-break).
	id, err := e.repo.MatchID(r)
	if err != nil {
		return decision{reason: "no matching policy"}
	}
	// Step 3 — evaluate the matched policy in its XACML form.
	resp := e.pdp.EvaluateOne(string(id), xacml.CompileRequest(r))
	if resp.Decision != xacml.Permit {
		return decision{policyID: resp.PolicyID,
			reason: "matched policy did not permit (" + resp.Decision.String() + ")"}
	}
	fields := xacml.AuthorizedFields(&resp)
	if len(fields) == 0 {
		return decision{policyID: resp.PolicyID, reason: "permit without authorized fields"}
	}
	return decision{permit: true, policyID: resp.PolicyID, fields: fields}
}

// fetch asks the producer's gateway for the authorized fields of src,
// coalescing concurrent identical fetches: followers of an in-flight
// call share the leader's result (and its trace). shared reports whether
// the detail came from another caller's flight — the caller must clone
// it before handing it on.
// A follower joining an in-flight fetch shares the leader's context: its
// own deadline cannot cut the shared round-trip short (the leader's
// does), which errs on the side of completing work already paid for.
func (e *Enforcer) fetch(ctx context.Context, g DetailSource, trace string, src event.SourceID, policyID string, fields []event.FieldName) (*event.Detail, bool, error) {
	d, shared, err := e.flights.Do(flightKey{source: src, policyID: policyID}, func() (*event.Detail, error) {
		if cg, ok := g.(ContextDetailSource); ok {
			return cg.GetResponseContext(ctx, trace, src, fields)
		}
		if tg, ok := g.(TracedDetailSource); ok && trace != "" {
			return tg.GetResponseTraced(trace, src, fields)
		}
		return g.GetResponse(src, fields)
	})
	e.noteCache("gateway.flight", shared)
	return d, shared, err
}

// GetEventDetails resolves a detail request — Algorithm 1 — under no
// particular deadline. See GetEventDetailsContext.
func (e *Enforcer) GetEventDetails(r *event.DetailRequest) (*event.Detail, Outcome, error) {
	return e.GetEventDetailsContext(context.Background(), r)
}

// GetEventDetailsContext resolves a detail request — Algorithm 1. On
// permit it returns the privacy-aware detail produced by the gateway
// plus the outcome; on deny it returns a nil detail, the outcome with
// the reason, and ErrDenied.
//
// The context bounds the flow: a request already cancelled when the
// gateway fetch would start is stopped before any producer round-trip,
// and the returned error is the context's (never ErrDenied — an
// abandoned request is not a policy denial).
func (e *Enforcer) GetEventDetailsContext(ctx context.Context, r *event.DetailRequest) (*event.Detail, Outcome, error) {
	if err := r.Validate(); err != nil {
		return nil, Outcome{Decision: event.Deny, Reason: err.Error()}, err
	}

	// Step 1 — PIP: map the global event id to its origin.
	m, err := e.ids.Resolve(r.EventID)
	if err != nil {
		if errors.Is(err, idmap.ErrNotFound) {
			out := Outcome{Decision: event.Deny, Reason: "unknown event id"}
			return nil, out, fmt.Errorf("%w: %s", ErrUnknownEvent, r.EventID)
		}
		return nil, Outcome{Decision: event.Deny, Reason: err.Error()}, err
	}
	if m.Class != r.Class {
		out := Outcome{Decision: event.Deny, Producer: m.Producer, Source: m.Source,
			Reason: fmt.Sprintf("event %s has class %s, not %s", r.EventID, m.Class, r.Class)}
		return nil, out, ErrClassMismatch
	}

	// Steps 2–3, behind the decision cache. The span is a no-op (no
	// clock read) unless the context carries a tracer.
	_, pdpSpan := telemetry.StartSpan(ctx, "pdp.decide")
	dec := e.decide(r)
	if !dec.permit {
		pdpSpan.SetAttr("reason", dec.reason)
		pdpSpan.End()
		out := Outcome{Decision: event.Deny, Producer: m.Producer, Source: m.Source,
			PolicyID: dec.policyID, Reason: dec.reason}
		return nil, out, ErrDenied
	}
	pdpSpan.SetAttr("policy", dec.policyID)
	pdpSpan.End()

	// The caller may be gone (hung up, or past its deadline) by the time
	// the decision lands: stop here, before spending a producer
	// round-trip on an answer nobody is waiting for.
	if err := ctx.Err(); err != nil {
		out := Outcome{Decision: event.Deny, Producer: m.Producer, Source: m.Source,
			PolicyID: dec.policyID, Reason: "request cancelled before gateway fetch"}
		return nil, out, err
	}

	// Step 4 — the producer applies the obligations (Algorithm 2).
	g, err := e.gateway(m.Producer)
	if err != nil {
		out := Outcome{Decision: event.Deny, Producer: m.Producer, Source: m.Source,
			PolicyID: dec.policyID, Reason: err.Error()}
		return nil, out, err
	}
	// The fetch span's context rides into the gateway client, so the
	// producer-side HTTP server span parents under "gateway.fetch".
	fetchCtx, fetchSpan := telemetry.StartSpan(ctx, "gateway.fetch")
	fetchSpan.SetAttr("producer", string(m.Producer))
	d, shared, err := e.fetch(fetchCtx, g, r.Trace, m.Source, dec.policyID, dec.fields)
	fetchSpan.SetError(err)
	fetchSpan.End()
	if err != nil {
		out := Outcome{Decision: event.Deny, Producer: m.Producer, Source: m.Source,
			PolicyID: dec.policyID, Reason: "gateway: " + err.Error()}
		return nil, out, err
	}
	if shared {
		// A coalesced result is aliased by every follower of the flight;
		// hand each consumer its own copy.
		d = d.Clone()
	}
	// Defense in depth: re-check Definition 4 at the controller before
	// forwarding to the consumer.
	if !d.ExposesOnly(dec.fields) {
		out := Outcome{Decision: event.Deny, Producer: m.Producer, Source: m.Source,
			PolicyID: dec.policyID, Reason: "gateway response exposed unauthorized fields"}
		return nil, out, ErrUnsafeResponse
	}
	out := Outcome{
		Decision: event.Permit,
		PolicyID: dec.policyID,
		Fields:   dec.fields,
		Producer: m.Producer,
		Source:   m.Source,
	}
	return d, out, nil
}

// Prefetch warms the read path for a request without releasing anything
// to the caller: it resolves the event, runs (and caches) the policy
// decision, and on permit drives one gateway fetch whose result is
// discarded at the controller. The fetch populates the producer-side
// decoded-detail cache and coalesces with identical concurrent requests,
// so a burst of consumers arriving behind a prefetch shares its
// round-trip. Nothing is stored controller-side (E13: event details must
// not be duplicated outside the producer's control).
func (e *Enforcer) Prefetch(r *event.DetailRequest) error {
	return e.PrefetchContext(context.Background(), r)
}

// PrefetchContext is Prefetch bounded by a context: the speculative
// gateway fetch is skipped when the context is already done (a prefetch
// is the first work to shed under pressure).
func (e *Enforcer) PrefetchContext(ctx context.Context, r *event.DetailRequest) error {
	if err := r.Validate(); err != nil {
		return err
	}
	m, err := e.ids.Resolve(r.EventID)
	if err != nil {
		if errors.Is(err, idmap.ErrNotFound) {
			return fmt.Errorf("%w: %s", ErrUnknownEvent, r.EventID)
		}
		return err
	}
	if m.Class != r.Class {
		return ErrClassMismatch
	}
	dec := e.decide(r)
	if !dec.permit {
		return ErrDenied
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	g, err := e.gateway(m.Producer)
	if err != nil {
		return err
	}
	_, _, err = e.fetch(ctx, g, r.Trace, m.Source, dec.policyID, dec.fields)
	return err
}
