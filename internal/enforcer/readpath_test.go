package enforcer

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/idmap"
	"repro/internal/policy"
	"repro/internal/store"
)

// cacheCounts tallies cache observer callbacks by cache name.
type cacheCounts struct {
	mu     sync.Mutex
	hits   map[string]int
	misses map[string]int
}

func observeInto(e *Enforcer) *cacheCounts {
	cc := &cacheCounts{hits: map[string]int{}, misses: map[string]int{}}
	e.SetCacheObserver(func(cache string, hit bool) {
		cc.mu.Lock()
		defer cc.mu.Unlock()
		if hit {
			cc.hits[cache]++
		} else {
			cc.misses[cache]++
		}
	})
	return cc
}

func (cc *cacheCounts) hit(cache string) int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.hits[cache]
}

func (cc *cacheCounts) miss(cache string) int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.misses[cache]
}

func TestDecisionCacheServesRepeats(t *testing.T) {
	f := newFixture(t)
	cc := observeInto(f.enf)
	f.addPolicy(t, "patient-id", "hemoglobin")

	for i := 0; i < 5; i++ {
		if _, out, err := f.enf.GetEventDetails(f.request()); err != nil || out.Decision != event.Permit {
			t.Fatalf("request %d: err=%v out=%+v", i, err, out)
		}
	}
	if m := cc.miss("pdp.decision"); m != 1 {
		t.Errorf("decision misses = %d, want 1 (first request only)", m)
	}
	if h := cc.hit("pdp.decision"); h != 4 {
		t.Errorf("decision hits = %d, want 4", h)
	}
}

func TestDecisionCacheDeniesAreCachedToo(t *testing.T) {
	f := newFixture(t)
	cc := observeInto(f.enf)
	for i := 0; i < 3; i++ {
		if _, _, err := f.enf.GetEventDetails(f.request()); !errors.Is(err, ErrDenied) {
			t.Fatalf("request %d: err = %v, want ErrDenied", i, err)
		}
	}
	if h := cc.hit("pdp.decision"); h != 2 {
		t.Errorf("cached-deny hits = %d, want 2", h)
	}
}

func TestRemovePolicyInvalidatesCachedPermit(t *testing.T) {
	f := newFixture(t)
	p := f.addPolicy(t, "patient-id")
	// Warm the cache with a permit.
	if _, out, err := f.enf.GetEventDetails(f.request()); err != nil || out.Decision != event.Permit {
		t.Fatalf("warm-up: err=%v out=%+v", err, out)
	}
	if err := f.enf.RemovePolicy(p.ID); err != nil {
		t.Fatal(err)
	}
	// The VERY NEXT request must be denied — no cached permit window.
	if _, out, err := f.enf.GetEventDetails(f.request()); !errors.Is(err, ErrDenied) || out.Decision != event.Deny {
		t.Fatalf("post-revocation: err=%v out=%+v, want immediate deny", err, out)
	}
}

func TestAddPolicyInvalidatesCachedDeny(t *testing.T) {
	f := newFixture(t)
	// Warm the cache with a deny (no policy yet).
	if _, _, err := f.enf.GetEventDetails(f.request()); !errors.Is(err, ErrDenied) {
		t.Fatal("expected initial deny")
	}
	f.addPolicy(t, "patient-id")
	// The new policy must take effect on the very next request.
	if _, out, err := f.enf.GetEventDetails(f.request()); err != nil || out.Decision != event.Permit {
		t.Fatalf("post-grant: err=%v out=%+v, want immediate permit", err, out)
	}
}

func TestInvalidateDecisionsForcesReevaluation(t *testing.T) {
	f := newFixture(t)
	cc := observeInto(f.enf)
	f.addPolicy(t, "patient-id")
	f.enf.GetEventDetails(f.request())
	f.enf.GetEventDetails(f.request())
	if h := cc.hit("pdp.decision"); h != 1 {
		t.Fatalf("pre-invalidation hits = %d, want 1", h)
	}
	f.enf.InvalidateDecisions() // what RecordConsent triggers
	f.enf.GetEventDetails(f.request())
	if h := cc.hit("pdp.decision"); h != 1 {
		t.Errorf("post-invalidation hits = %d, want still 1 (epoch bumped)", h)
	}
	if m := cc.miss("pdp.decision"); m != 2 {
		t.Errorf("post-invalidation misses = %d, want 2", m)
	}
}

func TestTimeBoundedPolicyBypassesCache(t *testing.T) {
	f := newFixture(t)
	cc := observeInto(f.enf)
	exp, err := f.enf.AddPolicy(&policy.Policy{
		Producer: "hospital",
		Actor:    "family-doctor",
		Class:    "hospital.blood-test",
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id"},
		NotAfter: time.Now().Add(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}

	// While a windowed policy is installed, decisions are time-dependent:
	// the cache must not serve (nor record) anything.
	for i := 0; i < 3; i++ {
		r := f.request()
		if _, out, err := f.enf.GetEventDetails(r); err != nil || out.Decision != event.Permit {
			t.Fatalf("in-window request %d: err=%v out=%+v", i, err, out)
		}
	}
	if h, m := cc.hit("pdp.decision"), cc.miss("pdp.decision"); h != 0 || m != 0 {
		t.Errorf("windowed policy: cache touched (%d hits, %d misses), want full bypass", h, m)
	}

	// Past the window the same request shape is denied — a cached permit
	// here would be a privacy violation.
	r := f.request()
	r.At = exp.NotAfter.Add(time.Minute)
	if _, _, err := f.enf.GetEventDetails(r); !errors.Is(err, ErrDenied) {
		t.Fatalf("post-expiry err = %v, want ErrDenied", err)
	}

	// Removing the windowed policy re-enables caching.
	if err := f.enf.RemovePolicy(exp.ID); err != nil {
		t.Fatal(err)
	}
	f.addPolicy(t, "patient-id")
	f.enf.GetEventDetails(f.request())
	f.enf.GetEventDetails(f.request())
	if h := cc.hit("pdp.decision"); h != 1 {
		t.Errorf("post-removal hits = %d, want caching re-enabled", h)
	}
}

// gatedSource blocks GetResponse until released, counting calls.
type gatedSource struct {
	calls   atomic.Int32
	entered chan struct{} // receives one tick per arrived call
	release chan struct{}
	detail  func(fields []event.FieldName) *event.Detail
}

func (s *gatedSource) GetResponse(src event.SourceID, fields []event.FieldName) (*event.Detail, error) {
	s.calls.Add(1)
	s.entered <- struct{}{}
	<-s.release
	return s.detail(fields), nil
}

func TestGatewayFetchCoalescing(t *testing.T) {
	ids := idmap.New(store.OpenMemory())
	enf, err := New(policy.NewRepository(), ids)
	if err != nil {
		t.Fatal(err)
	}
	src := &gatedSource{
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
		detail: func(fields []event.FieldName) *event.Detail {
			return event.NewDetail("c.x", "src-1", "hospital").Set("allowed", "ok")
		},
	}
	enf.AttachGateway("hospital", src)
	gid, _ := ids.Assign("hospital", "src-1", "c.x")
	if _, err := enf.AddPolicy(&policy.Policy{
		Producer: "hospital", Actor: "a", Class: "c.x",
		Purposes: []event.Purpose{"s"}, Fields: []event.FieldName{"allowed"},
	}); err != nil {
		t.Fatal(err)
	}

	const n = 8
	results := make([]*event.Detail, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &event.DetailRequest{Requester: "a", Class: "c.x", EventID: gid, Purpose: "s"}
			d, out, err := enf.GetEventDetails(r)
			if err != nil || out.Decision != event.Permit {
				t.Errorf("request %d: err=%v out=%+v", i, err, out)
				return
			}
			results[i] = d
		}(i)
	}
	// Wait for the leader to reach the gateway, give followers time to
	// pile onto the flight, then release.
	<-src.entered
	time.Sleep(20 * time.Millisecond)
	close(src.release)
	wg.Wait()

	if got := src.calls.Load(); got != 1 {
		t.Fatalf("gateway fetched %d times for %d identical concurrent requests, want 1", got, n)
	}
	// Every consumer must own its detail: mutating one must not be
	// visible through another (flight followers receive clones).
	seen := map[*event.Detail]bool{}
	for i, d := range results {
		if d == nil {
			t.Fatalf("results[%d] missing", i)
		}
		if seen[d] {
			t.Fatal("two consumers share one *event.Detail instance")
		}
		seen[d] = true
	}
}

func TestPrefetchWarmsDecisionCache(t *testing.T) {
	f := newFixture(t)
	cc := observeInto(f.enf)
	f.addPolicy(t, "patient-id", "hemoglobin")
	if err := f.enf.Prefetch(f.request()); err != nil {
		t.Fatalf("Prefetch: %v", err)
	}
	if _, out, err := f.enf.GetEventDetails(f.request()); err != nil || out.Decision != event.Permit {
		t.Fatalf("post-prefetch request: err=%v out=%+v", err, out)
	}
	if h := cc.hit("pdp.decision"); h != 1 {
		t.Errorf("decision hits after prefetch = %d, want 1 (prefetch warmed it)", h)
	}
}

func TestPrefetchDeniesLikeTheRealPath(t *testing.T) {
	f := newFixture(t)
	if err := f.enf.Prefetch(f.request()); !errors.Is(err, ErrDenied) {
		t.Errorf("prefetch without policy: err = %v, want ErrDenied", err)
	}
}

// TestNoStalePermitUnderPolicyChurn storms GetEventDetails while a
// mutator adds and revokes the authorizing policy, and proves
// deny-by-default survives the decision cache: a permit observed in a
// window where the policy was provably absent is a stale-cache bug.
//
// The seq protocol makes the detector sound under concurrency: seq is
// bumped to odd BEFORE AddPolicy starts (a policy may exist from here
// on) and to even only AFTER RemovePolicy returned (provably no policy,
// and no add started). A request that begins and ends at the same even
// seq ran entirely inside a no-policy window, so a permit there can only
// come from a stale cache entry.
func TestNoStalePermitUnderPolicyChurn(t *testing.T) {
	f := newFixture(t)
	template := &policy.Policy{
		Producer: "hospital",
		Actor:    "family-doctor",
		Class:    "hospital.blood-test",
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "hemoglobin"},
	}

	var seq atomic.Uint64
	stop := make(chan struct{})
	var mutations atomic.Int64
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq.Add(1) // odd: a policy may exist from now on
			p, err := f.enf.AddPolicy(template.Clone())
			if err != nil {
				t.Error(err)
				return
			}
			if err := f.enf.RemovePolicy(p.ID); err != nil {
				t.Error(err)
				return
			}
			seq.Add(1) // even: provably no policy installed
			mutations.Add(1)
		}
	}()

	const workers = 4
	const perWorker = 4000
	var permits, denies atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := f.request()
			for i := 0; i < perWorker; i++ {
				s1 := seq.Load()
				_, out, err := f.enf.GetEventDetails(r)
				switch {
				case err == nil && out.Decision == event.Permit:
					permits.Add(1)
					if s2 := seq.Load(); s1 == s2 && s1%2 == 0 {
						t.Errorf("stale permit: served at even seq %d (no policy installed)", s1)
						return
					}
				case errors.Is(err, ErrDenied):
					denies.Add(1)
				default:
					t.Errorf("unexpected outcome: err=%v out=%+v", err, out)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	mutWG.Wait()
	t.Logf("churn: %d mutation cycles, %d permits, %d denies", mutations.Load(), permits.Load(), denies.Load())
	if mutations.Load() == 0 || permits.Load() == 0 || denies.Load() == 0 {
		t.Log("warning: churn test saw a degenerate interleaving (one outcome never occurred)")
	}
}
