package enforcer

import (
	"errors"
	"testing"

	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/idmap"
	"repro/internal/policy"
	"repro/internal/store"
)

// fixture wires an enforcer with one gateway holding one blood test.
type fixture struct {
	enf *Enforcer
	ids *idmap.Map
	gw  *gateway.Gateway
	gid event.GlobalID
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ids := idmap.New(store.OpenMemory())
	enf, err := New(policy.NewRepository(), ids)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := gateway.New("hospital", store.OpenMemory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := enf.AttachGateway("hospital", gw); err != nil {
		t.Fatal(err)
	}
	d := event.NewDetail("hospital.blood-test", "src-1", "hospital").
		Set("patient-id", "PRS-1").
		Set("hemoglobin", "13.5").
		Set("aids-test", "negative")
	if err := gw.Persist(d); err != nil {
		t.Fatal(err)
	}
	gid, err := ids.Assign("hospital", "src-1", "hospital.blood-test")
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{enf: enf, ids: ids, gw: gw, gid: gid}
}

func (f *fixture) addPolicy(t *testing.T, fields ...event.FieldName) *policy.Policy {
	t.Helper()
	p, err := f.enf.AddPolicy(&policy.Policy{
		Producer: "hospital",
		Actor:    "family-doctor",
		Class:    "hospital.blood-test",
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   fields,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (f *fixture) request() *event.DetailRequest {
	return &event.DetailRequest{
		Requester: "family-doctor",
		Class:     "hospital.blood-test",
		EventID:   f.gid,
		Purpose:   event.PurposeHealthcareTreatment,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, idmap.New(store.OpenMemory())); err == nil {
		t.Error("nil repo accepted")
	}
	if _, err := New(policy.NewRepository(), nil); err == nil {
		t.Error("nil id map accepted")
	}
}

func TestAlgorithm1Permit(t *testing.T) {
	f := newFixture(t)
	p := f.addPolicy(t, "patient-id", "hemoglobin")
	d, out, err := f.enf.GetEventDetails(f.request())
	if err != nil {
		t.Fatalf("GetEventDetails: %v", err)
	}
	if out.Decision != event.Permit || out.PolicyID != string(p.ID) {
		t.Errorf("outcome = %+v", out)
	}
	if out.Producer != "hospital" || out.Source != "src-1" {
		t.Errorf("origin = %s/%s", out.Producer, out.Source)
	}
	if v, _ := d.Get("hemoglobin"); v != "13.5" {
		t.Errorf("hemoglobin = %q", v)
	}
	if _, leaked := d.Get("aids-test"); leaked {
		t.Error("aids-test leaked")
	}
	if !d.ExposesOnly(out.Fields) {
		t.Error("response not privacy safe for outcome fields")
	}
}

func TestAlgorithm1DenyByDefault(t *testing.T) {
	f := newFixture(t)
	// No policy at all.
	d, out, err := f.enf.GetEventDetails(f.request())
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	if d != nil || out.Decision != event.Deny {
		t.Errorf("deny returned detail %v, outcome %+v", d, out)
	}
}

func TestAlgorithm1DenyOnMismatches(t *testing.T) {
	f := newFixture(t)
	f.addPolicy(t, "patient-id")
	cases := map[string]func(*event.DetailRequest){
		"wrong actor":   func(r *event.DetailRequest) { r.Requester = "insurance-co" },
		"wrong purpose": func(r *event.DetailRequest) { r.Purpose = event.PurposeStatisticalAnalysis },
	}
	for name, mutate := range cases {
		r := f.request()
		mutate(r)
		if _, out, err := f.enf.GetEventDetails(r); !errors.Is(err, ErrDenied) || out.Decision != event.Deny {
			t.Errorf("%s: err=%v outcome=%+v", name, err, out)
		}
	}
}

func TestAlgorithm1UnknownEvent(t *testing.T) {
	f := newFixture(t)
	f.addPolicy(t, "patient-id")
	r := f.request()
	r.EventID = "evt-never-assigned"
	if _, _, err := f.enf.GetEventDetails(r); !errors.Is(err, ErrUnknownEvent) {
		t.Errorf("err = %v, want ErrUnknownEvent", err)
	}
}

func TestAlgorithm1ClassMismatch(t *testing.T) {
	f := newFixture(t)
	// Define a policy for the *claimed* class so the denial can only come
	// from the PIP cross-check.
	if _, err := f.enf.AddPolicy(&policy.Policy{
		Producer: "hospital",
		Actor:    "family-doctor",
		Class:    "hospital.discharge",
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id"},
	}); err != nil {
		t.Fatal(err)
	}
	r := f.request()
	r.Class = "hospital.discharge" // real class of f.gid is blood-test
	if _, _, err := f.enf.GetEventDetails(r); !errors.Is(err, ErrClassMismatch) {
		t.Errorf("err = %v, want ErrClassMismatch", err)
	}
}

func TestAlgorithm1NoGateway(t *testing.T) {
	ids := idmap.New(store.OpenMemory())
	enf, _ := New(policy.NewRepository(), ids)
	gid, _ := ids.Assign("orphan-producer", "src-1", "c.x")
	if _, err := enf.AddPolicy(&policy.Policy{
		Producer: "orphan-producer",
		Actor:    "a",
		Class:    "c.x",
		Purposes: []event.Purpose{"s"},
		Fields:   []event.FieldName{"f"},
	}); err != nil {
		t.Fatal(err)
	}
	r := &event.DetailRequest{Requester: "a", Class: "c.x", EventID: gid, Purpose: "s"}
	if _, _, err := enf.GetEventDetails(r); !errors.Is(err, ErrNoGateway) {
		t.Errorf("err = %v, want ErrNoGateway", err)
	}
}

func TestAlgorithm1GatewayMiss(t *testing.T) {
	f := newFixture(t)
	f.addPolicy(t, "patient-id")
	// Assign an id for a source the gateway never persisted.
	gid, _ := f.ids.Assign("hospital", "src-ghost", "hospital.blood-test")
	r := f.request()
	r.EventID = gid
	if _, _, err := f.enf.GetEventDetails(r); !errors.Is(err, gateway.ErrNotFound) {
		t.Errorf("err = %v, want gateway.ErrNotFound", err)
	}
}

func TestAlgorithm1InvalidRequest(t *testing.T) {
	f := newFixture(t)
	f.addPolicy(t, "patient-id")
	r := f.request()
	r.Purpose = ""
	if _, out, err := f.enf.GetEventDetails(r); err == nil || out.Decision != event.Deny {
		t.Error("invalid request accepted")
	}
}

// unsafeSource violates Algorithm 2 by returning everything.
type unsafeSource struct{ d *event.Detail }

func (u unsafeSource) GetResponse(event.SourceID, []event.FieldName) (*event.Detail, error) {
	return u.d, nil
}

func TestDefenseInDepthAgainstUnsafeGateway(t *testing.T) {
	ids := idmap.New(store.OpenMemory())
	enf, _ := New(policy.NewRepository(), ids)
	full := event.NewDetail("c.x", "src-1", "rogue").
		Set("allowed", "ok").
		Set("secret", "leak!")
	enf.AttachGateway("rogue", unsafeSource{full})
	gid, _ := ids.Assign("rogue", "src-1", "c.x")
	enf.AddPolicy(&policy.Policy{
		Producer: "rogue", Actor: "a", Class: "c.x",
		Purposes: []event.Purpose{"s"}, Fields: []event.FieldName{"allowed"},
	})
	r := &event.DetailRequest{Requester: "a", Class: "c.x", EventID: gid, Purpose: "s"}
	d, out, err := enf.GetEventDetails(r)
	if !errors.Is(err, ErrUnsafeResponse) {
		t.Fatalf("err = %v, want ErrUnsafeResponse", err)
	}
	if d != nil || out.Decision != event.Deny {
		t.Error("unsafe response was forwarded")
	}
}

func TestAddPolicyRollbackOnCompileConflict(t *testing.T) {
	f := newFixture(t)
	p := f.addPolicy(t, "patient-id")
	// Adding a policy with the same explicit ID hits the repository
	// duplicate check.
	dup := &policy.Policy{
		ID: p.ID, Producer: "hospital", Actor: "x", Class: "c.x",
		Purposes: []event.Purpose{"s"}, Fields: []event.FieldName{"f"},
	}
	if _, err := f.enf.AddPolicy(dup); err == nil {
		t.Error("duplicate policy id accepted")
	}
	if f.enf.Repository().Len() != 1 {
		t.Errorf("repository len = %d after failed add", f.enf.Repository().Len())
	}
}

func TestRemovePolicy(t *testing.T) {
	f := newFixture(t)
	p := f.addPolicy(t, "patient-id")
	if _, _, err := f.enf.GetEventDetails(f.request()); err != nil {
		t.Fatalf("pre-revocation request failed: %v", err)
	}
	if err := f.enf.RemovePolicy(p.ID); err != nil {
		t.Fatalf("RemovePolicy: %v", err)
	}
	if _, _, err := f.enf.GetEventDetails(f.request()); !errors.Is(err, ErrDenied) {
		t.Errorf("post-revocation err = %v, want ErrDenied", err)
	}
	if err := f.enf.RemovePolicy(p.ID); err == nil {
		t.Error("double revocation succeeded")
	}
}

func TestAttachGatewayValidation(t *testing.T) {
	f := newFixture(t)
	if err := f.enf.AttachGateway("", f.gw); err == nil {
		t.Error("empty producer accepted")
	}
	if err := f.enf.AttachGateway("p", nil); err == nil {
		t.Error("nil gateway accepted")
	}
}

func TestMostSpecificPolicyGovernsFields(t *testing.T) {
	// Two policies match the request: an org-level one with a narrow
	// field set and a department-level one with a wider set. Algorithm 1
	// must enforce the department policy (most specific actor), whatever
	// the definition order — the property the system-level quick test
	// guards.
	f := newFixture(t)
	if _, err := f.enf.AddPolicy(&policy.Policy{
		Producer: "hospital", Actor: "family-doctor",
		Class:    "hospital.blood-test",
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.enf.AddPolicy(&policy.Policy{
		Producer: "hospital", Actor: "family-doctor/north",
		Class:    "hospital.blood-test",
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "hemoglobin"},
	}); err != nil {
		t.Fatal(err)
	}
	r := f.request()
	r.Requester = "family-doctor/north"
	d, out, err := f.enf.GetEventDetails(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Fields) != 2 {
		t.Errorf("enforced fields = %v, want the department policy's 2", out.Fields)
	}
	if _, ok := d.Get("hemoglobin"); !ok {
		t.Error("department policy's field missing from response")
	}
}
