// Package idmap maintains the mapping between the controller-assigned
// global event identifiers and the producer-local ones. It backs the PIP
// lookup of Algorithm 1 step 1: "the event identifier distributed in the
// notification messages (eID) is a global artificial identifier generated
// by the data controller to identify the events independently from their
// data producers", so resolving a detail request starts by mapping the
// global eID back to the producer and its local src_eID.
package idmap

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/event"
	"repro/internal/store"
)

// ErrNotFound reports an unknown global identifier.
var ErrNotFound = errors.New("idmap: not found")

// Mapping ties a global event ID to its origin.
type Mapping struct {
	Global   event.GlobalID
	Producer event.ProducerID
	Source   event.SourceID
	Class    event.ClassID
}

// Map assigns and resolves global event identifiers. It is safe for
// concurrent use (the underlying store serializes access) and durable
// when backed by a persistent store.
type Map struct {
	mu sync.Mutex // serializes Assign's check-then-mint
	st *store.Store
}

// New creates a Map backed by st. The map uses the key prefixes "g/"
// (global → origin) and "r/" (origin → global) within the store.
func New(st *store.Store) *Map {
	return &Map{st: st}
}

// Assign generates a fresh global identifier for the event identified by
// (producer, source, class) and records the mapping. Assign is
// idempotent: re-registering the same (producer, source) returns the
// previously assigned global ID, so publish retries do not mint
// duplicate events.
func (m *Map) Assign(producer event.ProducerID, source event.SourceID, class event.ClassID) (event.GlobalID, error) {
	if producer == "" || source == "" {
		return "", errors.New("idmap: empty producer or source id")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rkey := reverseKey(producer, source)
	if v, ok, err := m.st.Get(rkey); err != nil {
		return "", err
	} else if ok {
		return event.GlobalID(v), nil
	}
	gid, err := newGlobalID()
	if err != nil {
		return "", err
	}
	// Both directions of the mapping commit as one batch: a single lock
	// acquisition and WAL frame (instead of two, each with its own fsync
	// in SyncEvery mode), and no crash window in which a global id exists
	// without its reverse entry — which would let a publish retry mint a
	// second global id for the same source event.
	b := batchPool.Get().(*store.Batch)
	b.Reset()
	b.PutOwned(globalKey(gid), appendMapping(nil, producer, source, class))
	b.PutOwned(rkey, []byte(gid))
	err = m.st.Apply(b)
	batchPool.Put(b)
	if err != nil {
		return "", err
	}
	return gid, nil
}

// batchPool recycles the batch (and its ops slice) across assignments.
var batchPool = sync.Pool{New: func() any { return new(store.Batch) }}

// Resolve returns the origin of a global identifier.
func (m *Map) Resolve(gid event.GlobalID) (Mapping, error) {
	if gid == "" {
		return Mapping{}, errors.New("idmap: empty global id")
	}
	v, ok, err := m.st.Get(globalKey(gid))
	if err != nil {
		return Mapping{}, err
	}
	if !ok {
		return Mapping{}, fmt.Errorf("%w: %s", ErrNotFound, gid)
	}
	producer, source, class, err := decodeMapping(string(v))
	if err != nil {
		return Mapping{}, err
	}
	return Mapping{Global: gid, Producer: producer, Source: source, Class: class}, nil
}

// Len returns the number of assigned global identifiers.
func (m *Map) Len() (int, error) {
	n := 0
	err := m.st.AscendPrefix("g/", func(string, []byte) bool {
		n++
		return true
	})
	return n, err
}

func globalKey(gid event.GlobalID) string { return "g/" + string(gid) }

func reverseKey(p event.ProducerID, s event.SourceID) string {
	return "r/" + string(p) + "\x00" + string(s)
}

// newGlobalID mints a 128-bit random identifier with a readable prefix.
// The id is assembled on the stack and converted once, instead of the
// hex.EncodeToString + concatenation pair (two allocations per mint).
func newGlobalID() (event.GlobalID, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("idmap: generate id: %w", err)
	}
	var out [4 + 32]byte
	out[0], out[1], out[2], out[3] = 'e', 'v', 't', '-'
	hex.Encode(out[4:], b[:])
	return event.GlobalID(out[:]), nil
}

// appendMapping packs origin fields with NUL separators (none of the id
// types admits NUL) into one exactly-sized byte slice — the value is
// handed to the store as owned bytes, so building it as a string first
// would just add a conversion copy.
func appendMapping(dst []byte, p event.ProducerID, s event.SourceID, c event.ClassID) []byte {
	if dst == nil {
		dst = make([]byte, 0, len(p)+len(s)+len(c)+2)
	}
	dst = append(dst, p...)
	dst = append(dst, 0)
	dst = append(dst, s...)
	dst = append(dst, 0)
	dst = append(dst, c...)
	return dst
}

func decodeMapping(v string) (event.ProducerID, event.SourceID, event.ClassID, error) {
	parts := strings.SplitN(v, "\x00", 3)
	if len(parts) != 3 {
		return "", "", "", errors.New("idmap: corrupt mapping record")
	}
	return event.ProducerID(parts[0]), event.SourceID(parts[1]), event.ClassID(parts[2]), nil
}
