// Reshard handoff support: exporting both directions of the id
// mapping for the global ids that move shard, so the recipient can
// resolve detail requests (g/ lookup) and keep publish retries
// idempotent (r/ lookup) for the adopted events.
package idmap

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/store"
)

// ExportFor builds one batch holding the g/ and r/ entries of the
// given global ids. Unknown ids are an error: the index and the id
// map are written in the same publish flow, so a gid present in the
// index but absent here means a corrupt shard.
func (m *Map) ExportFor(gids []event.GlobalID) (*store.Batch, error) {
	var b store.Batch
	for _, gid := range gids {
		v, ok, err := m.st.Get(globalKey(gid))
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("%w: %s (index/id-map divergence)", ErrNotFound, gid)
		}
		producer, source, _, err := decodeMapping(string(v))
		if err != nil {
			return nil, err
		}
		b.Put(globalKey(gid), v)
		b.Put(reverseKey(producer, source), []byte(gid))
	}
	return &b, nil
}

// ApplyHandoff applies a batch shipped by a donor's ExportFor.
// Idempotent: the entries are immutable once minted.
func (m *Map) ApplyHandoff(b *store.Batch) error {
	return m.st.Apply(b)
}

// SweepFor deletes both directions of the mapping for the given global
// ids — the donor's post-flip cleanup. Missing entries are skipped
// (the sweep may retry).
func (m *Map) SweepFor(gids []event.GlobalID) (int, error) {
	var b store.Batch
	swept := 0
	for _, gid := range gids {
		v, ok, err := m.st.Get(globalKey(gid))
		if err != nil {
			return 0, err
		}
		if !ok {
			continue
		}
		producer, source, _, err := decodeMapping(string(v))
		if err != nil {
			return 0, err
		}
		b.Delete(globalKey(gid))
		b.Delete(reverseKey(producer, source))
		swept++
	}
	if b.Len() == 0 {
		return 0, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.st.Apply(&b); err != nil {
		return 0, err
	}
	return swept, nil
}
