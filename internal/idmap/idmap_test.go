package idmap

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/store"
)

func newMap(t *testing.T) *Map {
	t.Helper()
	return New(store.OpenMemory())
}

func TestAssignResolveRoundTrip(t *testing.T) {
	m := newMap(t)
	gid, err := m.Assign("hospital", "src-1", "hospital.blood-test")
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if gid == "" {
		t.Fatal("empty global id")
	}
	got, err := m.Resolve(gid)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if got.Producer != "hospital" || got.Source != "src-1" || got.Class != "hospital.blood-test" || got.Global != gid {
		t.Errorf("Resolve = %+v", got)
	}
}

func TestAssignIsIdempotent(t *testing.T) {
	m := newMap(t)
	a, _ := m.Assign("p", "s", "c.x")
	b, _ := m.Assign("p", "s", "c.x")
	if a != b {
		t.Errorf("retry minted a new id: %s vs %s", a, b)
	}
	if n, _ := m.Len(); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
}

func TestDistinctEventsGetDistinctIDs(t *testing.T) {
	m := newMap(t)
	a, _ := m.Assign("p", "s1", "c.x")
	b, _ := m.Assign("p", "s2", "c.x")
	c, _ := m.Assign("q", "s1", "c.x")
	if a == b || a == c || b == c {
		t.Errorf("collisions: %s %s %s", a, b, c)
	}
	if n, _ := m.Len(); n != 3 {
		t.Errorf("Len = %d", n)
	}
}

func TestResolveUnknown(t *testing.T) {
	m := newMap(t)
	if _, err := m.Resolve("evt-nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Resolve(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := m.Resolve(""); err == nil {
		t.Error("Resolve(empty) accepted")
	}
}

func TestAssignValidation(t *testing.T) {
	m := newMap(t)
	if _, err := m.Assign("", "s", "c.x"); err == nil {
		t.Error("empty producer accepted")
	}
	if _, err := m.Assign("p", "", "c.x"); err == nil {
		t.Error("empty source accepted")
	}
}

func TestDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idmap.wal")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(st)
	gid, _ := m.Assign("p", "s", "c.x")
	st.Close()

	st2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2 := New(st2)
	got, err := m2.Resolve(gid)
	if err != nil || got.Source != "s" {
		t.Errorf("Resolve after reopen = %+v, %v", got, err)
	}
	// Idempotency must survive restarts too.
	again, _ := m2.Assign("p", "s", "c.x")
	if again != gid {
		t.Errorf("Assign after reopen minted new id")
	}
}

func TestConcurrentAssign(t *testing.T) {
	m := newMap(t)
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[string]bool{}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				gid, err := m.Assign("p", "shared-source", "c.x")
				if err != nil {
					t.Errorf("Assign: %v", err)
					return
				}
				mu.Lock()
				seen[string(gid)] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Assign is atomic: all racing callers must agree on one id.
	if len(seen) != 1 {
		t.Errorf("racing Assign minted %d distinct ids", len(seen))
	}
	if n, _ := m.Len(); n != 1 {
		t.Errorf("Len = %d", n)
	}
}
