package audit

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

func openLog(t *testing.T) *Log {
	t.Helper()
	l, err := Open(store.OpenMemory())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func sample(kind Kind, actor, outcome string) Record {
	return Record{
		Kind:    kind,
		Actor:   actor,
		EventID: "evt-1",
		Class:   "c.x",
		Purpose: "care",
		Outcome: outcome,
	}
}

func TestAppendAssignsChainFields(t *testing.T) {
	l := openLog(t)
	r1, err := l.Append(sample(KindDetailRequest, "doctor", "permit"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if r1.Seq != 1 || r1.Hash == "" || r1.PrevHash != genesisHash || r1.At.IsZero() {
		t.Errorf("first record: %+v", r1)
	}
	r2, err := l.Append(sample(KindDetailRequest, "doctor", "deny"))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Seq != 2 || r2.PrevHash != r1.Hash {
		t.Errorf("second record not chained: %+v", r2)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestAppendValidation(t *testing.T) {
	l := openLog(t)
	bad := []Record{
		{Actor: "a", Outcome: "permit"},    // no kind
		{Kind: KindPublish, Outcome: "ok"}, // no actor
		{Kind: KindPublish, Actor: "a"},    // no outcome
	}
	for i, r := range bad {
		if _, err := l.Append(r); err == nil {
			t.Errorf("case %d: invalid record accepted", i)
		}
	}
}

func TestVerifyCleanChain(t *testing.T) {
	l := openLog(t)
	for i := 0; i < 50; i++ {
		if _, err := l.Append(sample(KindDetailRequest, fmt.Sprintf("actor-%d", i), "permit")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Verify(); err != nil {
		t.Errorf("Verify(clean) = %v", err)
	}
}

func TestVerifyDetectsContentTampering(t *testing.T) {
	st := store.OpenMemory()
	l, _ := Open(st)
	l.Append(sample(KindDetailRequest, "doctor", "deny"))
	l.Append(sample(KindDetailRequest, "nurse", "permit"))

	// Rewrite record 1 to claim it was permitted.
	v, ok, _ := st.Get(key(1))
	if !ok {
		t.Fatal("record 1 missing")
	}
	var r Record
	json.Unmarshal(v, &r)
	r.Outcome = "permit"
	mut, _ := json.Marshal(&r)
	st.Put(key(1), mut)

	if err := l.Verify(); !errors.Is(err, ErrTampered) {
		t.Errorf("Verify after tamper = %v, want ErrTampered", err)
	}
}

func TestVerifyDetectsDeletionAndTruncation(t *testing.T) {
	st := store.OpenMemory()
	l, _ := Open(st)
	for i := 0; i < 5; i++ {
		l.Append(sample(KindPublish, "prod", "ok"))
	}
	// Delete a middle record: gap.
	st.Delete(key(3))
	if err := l.Verify(); !errors.Is(err, ErrTampered) {
		t.Errorf("Verify after deletion = %v", err)
	}

	// Truncation: delete the last records.
	st2 := store.OpenMemory()
	l2, _ := Open(st2)
	for i := 0; i < 5; i++ {
		l2.Append(sample(KindPublish, "prod", "ok"))
	}
	st2.Delete(key(5))
	if err := l2.Verify(); !errors.Is(err, ErrTampered) {
		t.Errorf("Verify after truncation = %v", err)
	}
}

func TestRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.wal")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := Open(st)
	var last Record
	for i := 0; i < 10; i++ {
		last, _ = l.Append(sample(KindSubscribe, "consumer", "permit"))
	}
	st.Close()

	st2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	l2, err := Open(st2)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 10 {
		t.Errorf("recovered Len = %d", l2.Len())
	}
	// The chain must continue from the recovered head, not restart.
	r11, err := l2.Append(sample(KindSubscribe, "consumer", "deny"))
	if err != nil {
		t.Fatal(err)
	}
	if r11.Seq != 11 || r11.PrevHash != last.Hash {
		t.Errorf("chain not continued after recovery: %+v (want prev %s)", r11, last.Hash)
	}
	if err := l2.Verify(); err != nil {
		t.Errorf("Verify after recovery = %v", err)
	}
}

func TestSearch(t *testing.T) {
	l := openLog(t)
	base := time.Date(2010, 6, 1, 10, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		r := sample(KindDetailRequest, "doctor", "permit")
		if i%2 == 1 {
			r.Actor = "nurse"
			r.Outcome = "deny"
		}
		if i >= 5 {
			r.Kind = KindIndexInquiry
			r.Class = "c.y"
		}
		r.At = base.Add(time.Duration(i) * time.Hour)
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name string
		q    Query
		want int
	}{
		{"all", Query{}, 10},
		{"by kind", Query{Kind: KindDetailRequest}, 5},
		{"by actor", Query{Actor: "nurse"}, 5},
		{"by outcome", Query{Outcome: "deny"}, 5},
		{"by class", Query{Class: "c.y"}, 5},
		{"by event", Query{EventID: "evt-1"}, 10},
		{"by absent event", Query{EventID: "evt-404"}, 0},
		{"time from", Query{From: base.Add(5 * time.Hour)}, 5},
		{"time to", Query{To: base.Add(4 * time.Hour)}, 5},
		{"window", Query{From: base.Add(2 * time.Hour), To: base.Add(4 * time.Hour)}, 3},
		{"limit", Query{Limit: 3}, 3},
		{"combined", Query{Kind: KindDetailRequest, Actor: "doctor"}, 3},
	}
	for _, tc := range cases {
		got, err := l.Search(tc.q)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if len(got) != tc.want {
			t.Errorf("%s: %d records, want %d", tc.name, len(got), tc.want)
		}
	}
	// Results must come back in chain order.
	all, _ := l.Search(Query{})
	for i := 1; i < len(all); i++ {
		if all[i].Seq != all[i-1].Seq+1 {
			t.Errorf("out of order at %d", i)
		}
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := openLog(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := l.Append(sample(KindPublish, "prod", "ok")); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if l.Len() != 400 {
		t.Errorf("Len = %d", l.Len())
	}
	if err := l.Verify(); err != nil {
		t.Errorf("Verify after concurrent appends = %v", err)
	}
}
