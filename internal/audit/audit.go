// Package audit implements the access log of the data controller: "the
// data controller ... maintains logs of the access request for auditing
// purposes" (paper §4), answering "who did the request and why/for which
// purpose" (§1) for the privacy guarantor or the data subject herself.
//
// The log is append-only and hash-chained: every record carries the hash
// of its predecessor, so truncation or in-place tampering is detectable
// by Verify. Records are persisted through the embedded store.
package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/store"
)

// Kind classifies an audited interaction.
type Kind string

// Audited interaction kinds.
const (
	// KindPublish: a producer published a notification.
	KindPublish Kind = "publish"
	// KindSubscribe: a consumer asked to subscribe to an event class.
	KindSubscribe Kind = "subscribe"
	// KindDetailRequest: a consumer asked for the details of an event.
	KindDetailRequest Kind = "detail-request"
	// KindIndexInquiry: a consumer queried the events index.
	KindIndexInquiry Kind = "index-inquiry"
)

// Record is one audited interaction. Outcome is "permit" or "deny"
// (or "ok" for publishes); PolicyID names the deciding policy when one
// matched.
type Record struct {
	// Seq is the 1-based position in the chain.
	Seq uint64 `json:"seq"`
	// At is when the interaction was logged.
	At time.Time `json:"at"`
	// Kind classifies the interaction.
	Kind Kind `json:"kind"`
	// Actor is who performed it (consumer actor or producer id).
	Actor string `json:"actor"`
	// EventID is the global event id, when the interaction names one.
	EventID event.GlobalID `json:"eventId,omitempty"`
	// Class is the event class involved.
	Class event.ClassID `json:"class,omitempty"`
	// Purpose is the declared purpose of use, when stated.
	Purpose event.Purpose `json:"purpose,omitempty"`
	// Outcome is the decision: "permit", "deny" or "ok".
	Outcome string `json:"outcome"`
	// PolicyID names the policy that determined the outcome, if any.
	PolicyID string `json:"policyId,omitempty"`
	// Note carries free-form diagnostic detail (e.g. the denial reason).
	Note string `json:"note,omitempty"`
	// Trace is the correlation identifier of the flow this record belongs
	// to (minted at the originating publish or detail request). It links
	// the audit trail to the runtime telemetry: the same id appears on
	// wire messages, spans and logs, and it is covered by the chain hash.
	Trace string `json:"trace,omitempty"`
	// PrevHash/Hash chain the record to its predecessor.
	PrevHash string `json:"prevHash"`
	Hash     string `json:"hash"`
}

// ErrTampered reports a chain verification failure.
var ErrTampered = errors.New("audit: chain verification failed")

// Log is the hash-chained audit log. Safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	st   *store.Store
	seq  uint64
	last string // hash of the newest record
}

// genesisHash anchors the chain.
const genesisHash = "css-audit-genesis"

// Open creates a log on st, recovering the chain head from persisted
// records. The log uses keys with prefix "a/" in the store.
func Open(st *store.Store) (*Log, error) {
	l := &Log{st: st, last: genesisHash}
	var innerErr error
	err := st.AscendPrefix("a/", func(k string, v []byte) bool {
		var r Record
		if err := json.Unmarshal(v, &r); err != nil {
			innerErr = fmt.Errorf("audit: corrupt record %s: %w", k, err)
			return false
		}
		if r.Seq > l.seq {
			l.seq = r.Seq
			l.last = r.Hash
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if innerErr != nil {
		return nil, innerErr
	}
	return l, nil
}

// Append adds a record to the chain. Seq, PrevHash and Hash are assigned
// by the log; the caller fills the descriptive fields. The stored record
// is returned.
func (l *Log) Append(r Record) (Record, error) {
	if r.Kind == "" || r.Actor == "" || r.Outcome == "" {
		return Record{}, errors.New("audit: record missing kind, actor or outcome")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	r.Seq = l.seq + 1
	if r.At.IsZero() {
		r.At = time.Now()
	}
	r.PrevHash = l.last
	r.Hash = hashRecord(&r)
	data, err := json.Marshal(&r)
	if err != nil {
		return Record{}, fmt.Errorf("audit: encode: %w", err)
	}
	if err := l.st.Put(key(r.Seq), data); err != nil {
		return Record{}, err
	}
	l.seq = r.Seq
	l.last = r.Hash
	return r, nil
}

// hashRecord computes the chained hash over the record's content fields
// and its PrevHash. The Hash field itself is excluded.
func hashRecord(r *Record) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d|%s|%s|%s|%s|%s|%s|%s|%s|%s|%s|%s",
		r.Seq, r.At.UTC().Format(time.RFC3339Nano), r.Kind, r.Actor,
		r.EventID, r.Class, r.Purpose, r.Outcome, r.PolicyID, r.Note, r.Trace, r.PrevHash)
	return hex.EncodeToString(h.Sum(nil))
}

// key renders a sequence number as a sortable store key.
func key(seq uint64) string { return fmt.Sprintf("a/%020d", seq) }

// Len returns the number of records.
func (l *Log) Len() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Verify walks the whole chain and checks every link. It returns
// ErrTampered (wrapped with the offending sequence number) if a record
// was modified, reordered or removed.
func (l *Log) Verify() error {
	l.mu.Lock()
	seq := l.seq
	l.mu.Unlock()
	prev := genesisHash
	var want uint64 = 1
	var verr error
	err := l.st.AscendPrefix("a/", func(k string, v []byte) bool {
		var r Record
		if err := json.Unmarshal(v, &r); err != nil {
			verr = fmt.Errorf("%w: undecodable record at %s", ErrTampered, k)
			return false
		}
		if r.Seq != want {
			verr = fmt.Errorf("%w: gap at seq %d (found %d)", ErrTampered, want, r.Seq)
			return false
		}
		if r.PrevHash != prev {
			verr = fmt.Errorf("%w: broken link at seq %d", ErrTampered, r.Seq)
			return false
		}
		if hashRecord(&r) != r.Hash {
			verr = fmt.Errorf("%w: content hash mismatch at seq %d", ErrTampered, r.Seq)
			return false
		}
		prev = r.Hash
		want++
		return true
	})
	if err != nil {
		return err
	}
	if verr != nil {
		return verr
	}
	if want != seq+1 {
		return fmt.Errorf("%w: chain shorter than expected (%d < %d)", ErrTampered, want-1, seq)
	}
	return nil
}

// Query filters the audit trail. Zero-valued fields match anything.
type Query struct {
	Kind    Kind
	Actor   string
	EventID event.GlobalID
	Class   event.ClassID
	Outcome string
	Trace   string
	From    time.Time
	To      time.Time
	Limit   int
}

// Search returns the records matching q, in chain order.
func (l *Log) Search(q Query) ([]Record, error) {
	var out []Record
	var derr error
	err := l.st.AscendPrefix("a/", func(k string, v []byte) bool {
		var r Record
		if err := json.Unmarshal(v, &r); err != nil {
			derr = fmt.Errorf("audit: corrupt record %s: %w", k, err)
			return false
		}
		if q.Kind != "" && r.Kind != q.Kind {
			return true
		}
		if q.Actor != "" && r.Actor != q.Actor {
			return true
		}
		if q.EventID != "" && r.EventID != q.EventID {
			return true
		}
		if q.Class != "" && r.Class != q.Class {
			return true
		}
		if q.Outcome != "" && r.Outcome != q.Outcome {
			return true
		}
		if q.Trace != "" && r.Trace != q.Trace {
			return true
		}
		if !q.From.IsZero() && r.At.Before(q.From) {
			return true
		}
		if !q.To.IsZero() && r.At.After(q.To) {
			return true
		}
		out = append(out, r)
		return q.Limit <= 0 || len(out) < q.Limit
	})
	if err != nil {
		return nil, err
	}
	return out, derr
}
