// Package audit implements the access log of the data controller: "the
// data controller ... maintains logs of the access request for auditing
// purposes" (paper §4), answering "who did the request and why/for which
// purpose" (§1) for the privacy guarantor or the data subject herself.
//
// The log is append-only and hash-chained: every record carries the hash
// of its predecessor, so truncation or in-place tampering is detectable
// by Verify. Records are persisted through the embedded store.
package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/jsonx"
	"repro/internal/store"
)

// Kind classifies an audited interaction.
type Kind string

// Audited interaction kinds.
const (
	// KindPublish: a producer published a notification.
	KindPublish Kind = "publish"
	// KindSubscribe: a consumer asked to subscribe to an event class.
	KindSubscribe Kind = "subscribe"
	// KindDetailRequest: a consumer asked for the details of an event.
	KindDetailRequest Kind = "detail-request"
	// KindIndexInquiry: a consumer queried the events index.
	KindIndexInquiry Kind = "index-inquiry"
)

// Record is one audited interaction. Outcome is "permit" or "deny"
// (or "ok" for publishes); PolicyID names the deciding policy when one
// matched.
type Record struct {
	// Seq is the 1-based position in the chain.
	Seq uint64 `json:"seq"`
	// At is when the interaction was logged.
	At time.Time `json:"at"`
	// Kind classifies the interaction.
	Kind Kind `json:"kind"`
	// Actor is who performed it (consumer actor or producer id).
	Actor string `json:"actor"`
	// EventID is the global event id, when the interaction names one.
	EventID event.GlobalID `json:"eventId,omitempty"`
	// Class is the event class involved.
	Class event.ClassID `json:"class,omitempty"`
	// Purpose is the declared purpose of use, when stated.
	Purpose event.Purpose `json:"purpose,omitempty"`
	// Outcome is the decision: "permit", "deny" or "ok".
	Outcome string `json:"outcome"`
	// PolicyID names the policy that determined the outcome, if any.
	PolicyID string `json:"policyId,omitempty"`
	// Note carries free-form diagnostic detail (e.g. the denial reason).
	Note string `json:"note,omitempty"`
	// Trace is the correlation identifier of the flow this record belongs
	// to (minted at the originating publish or detail request). It links
	// the audit trail to the runtime telemetry: the same id appears on
	// wire messages, spans and logs, and it is covered by the chain hash.
	Trace string `json:"trace,omitempty"`
	// PrevHash/Hash chain the record to its predecessor.
	PrevHash string `json:"prevHash"`
	Hash     string `json:"hash"`
}

// ErrTampered reports a chain verification failure.
var ErrTampered = errors.New("audit: chain verification failed")

// Log is the hash-chained audit log. Safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	st   *store.Store
	seq  uint64
	last string // hash of the newest record
}

// genesisHash anchors the chain.
const genesisHash = "css-audit-genesis"

// Open creates a log on st, recovering the chain head from persisted
// records. The log uses keys with prefix "a/" in the store.
func Open(st *store.Store) (*Log, error) {
	l := &Log{st: st, last: genesisHash}
	var innerErr error
	err := st.AscendPrefix("a/", func(k string, v []byte) bool {
		var r Record
		if err := json.Unmarshal(v, &r); err != nil {
			innerErr = fmt.Errorf("audit: corrupt record %s: %w", k, err)
			return false
		}
		if r.Seq > l.seq {
			l.seq = r.Seq
			l.last = r.Hash
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if innerErr != nil {
		return nil, innerErr
	}
	return l, nil
}

// Recover advances the in-memory chain head over records that reached
// the store behind the log's back — a read replica's audit store is fed
// by the replication stream, not by Append. It scans only forward from
// the current head ("a0" is the first key past the "a/" prefix), so
// calling it after every applied segment stays cheap; promotion calls it
// once more before the node starts appending.
func (l *Log) Recover() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var innerErr error
	err := l.st.AscendRange(key(l.seq+1), "a0", func(k string, v []byte) bool {
		var r Record
		if err := json.Unmarshal(v, &r); err != nil {
			innerErr = fmt.Errorf("audit: corrupt record %s: %w", k, err)
			return false
		}
		if r.Seq > l.seq {
			l.seq = r.Seq
			l.last = r.Hash
		}
		return true
	})
	if err != nil {
		return err
	}
	return innerErr
}

// bufPool recycles the scratch buffer used to build hash inputs and the
// JSON body, so a steady-state append does not allocate for either.
var bufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// Append adds a record to the chain. Seq, PrevHash and Hash are assigned
// by the log; the caller fills the descriptive fields. The stored record
// is returned. Append is AppendStaged followed immediately by the commit
// barrier.
func (l *Log) Append(r Record) (Record, error) {
	rec, c, err := l.AppendStaged(r)
	if err != nil {
		return Record{}, err
	}
	return rec, c.Wait()
}

// AppendStaged adds a record to the chain but returns before the store's
// fsync barrier: the record is in memory and in the WAL, and the
// returned Commit's Wait makes it durable. Callers overlap the fsync
// with downstream work (the controller runs bus fan-out meanwhile) and
// must Wait before acknowledging the audited interaction.
//
// The expensive work — JSON-encoding the record body and SHA-hashing it
// — happens before the chain mutex is taken; the lock covers only the
// seq/prev-hash assignment, a small finalizing hash, the splice of the
// chain fields around the prebuilt body, and the store append (which
// must stay inside the lock so the persisted order matches the chain
// order).
func (l *Log) AppendStaged(r Record) (Record, store.Commit, error) {
	if r.Kind == "" || r.Actor == "" || r.Outcome == "" {
		return Record{}, store.Commit{}, errors.New("audit: record missing kind, actor or outcome")
	}
	if r.At.IsZero() {
		r.At = time.Now()
	}
	sum := hashBody(&r)
	bp := bufPool.Get().(*[]byte)
	body := appendBodyJSON((*bp)[:0], &r)

	l.mu.Lock()
	r.Seq = l.seq + 1
	r.PrevHash = l.last
	r.Hash = chainHash(r.Seq, r.PrevHash, sum)
	out := make([]byte, 0, len(body)+len(r.PrevHash)+len(r.Hash)+48)
	out = append(out, `{"seq":`...)
	out = strconv.AppendUint(out, r.Seq, 10)
	out = append(out, ',')
	out = append(out, body...)
	out = append(out, `,"prevHash":"`...)
	out = append(out, r.PrevHash...)
	out = append(out, `","hash":"`...)
	out = append(out, r.Hash...)
	out = append(out, `"}`...)
	c, err := l.st.StagePut(key(r.Seq), out)
	if err != nil {
		l.mu.Unlock()
		return Record{}, store.Commit{}, err
	}
	l.seq = r.Seq
	l.last = r.Hash
	l.mu.Unlock()

	*bp = body[:0]
	bufPool.Put(bp)
	return r, c, nil
}

// appendBodyJSON renders the descriptive fields (everything but the
// chain fields) as a brace-less JSON fragment with the same tags and
// omitempty behavior encoding/json produced historically, so records
// written by older builds and by this one unmarshal identically.
func appendBodyJSON(dst []byte, r *Record) []byte {
	dst = append(dst, `"at":"`...)
	dst = r.At.UTC().AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, `","kind":`...)
	dst = jsonx.AppendString(dst, string(r.Kind))
	dst = append(dst, `,"actor":`...)
	dst = jsonx.AppendString(dst, r.Actor)
	if r.EventID != "" {
		dst = append(dst, `,"eventId":`...)
		dst = jsonx.AppendString(dst, string(r.EventID))
	}
	if r.Class != "" {
		dst = append(dst, `,"class":`...)
		dst = jsonx.AppendString(dst, string(r.Class))
	}
	if r.Purpose != "" {
		dst = append(dst, `,"purpose":`...)
		dst = jsonx.AppendString(dst, string(r.Purpose))
	}
	dst = append(dst, `,"outcome":`...)
	dst = jsonx.AppendString(dst, r.Outcome)
	if r.PolicyID != "" {
		dst = append(dst, `,"policyId":`...)
		dst = jsonx.AppendString(dst, r.PolicyID)
	}
	if r.Note != "" {
		dst = append(dst, `,"note":`...)
		dst = jsonx.AppendString(dst, r.Note)
	}
	if r.Trace != "" {
		dst = append(dst, `,"trace":`...)
		dst = jsonx.AppendString(dst, r.Trace)
	}
	return dst
}

// hashBody digests the record's descriptive fields (everything the
// caller supplies). It needs no chain state, so Append computes it
// outside the mutex. The digest input is the '|'-joined field list the
// log has always used, so existing chains keep verifying.
func hashBody(r *Record) [sha256.Size]byte {
	bp := bufPool.Get().(*[]byte)
	buf := r.At.UTC().AppendFormat((*bp)[:0], time.RFC3339Nano)
	buf = append(buf, '|')
	buf = append(buf, r.Kind...)
	buf = append(buf, '|')
	buf = append(buf, r.Actor...)
	buf = append(buf, '|')
	buf = append(buf, r.EventID...)
	buf = append(buf, '|')
	buf = append(buf, r.Class...)
	buf = append(buf, '|')
	buf = append(buf, r.Purpose...)
	buf = append(buf, '|')
	buf = append(buf, r.Outcome...)
	buf = append(buf, '|')
	buf = append(buf, r.PolicyID...)
	buf = append(buf, '|')
	buf = append(buf, r.Note...)
	buf = append(buf, '|')
	buf = append(buf, r.Trace...)
	sum := sha256.Sum256(buf)
	*bp = buf[:0]
	bufPool.Put(bp)
	return sum
}

// chainSum finalizes a record digest from its chain position, the
// predecessor hash and the body digest. The input is
// "<seq>|<prevHash>|<lowercase hex body>", unchanged across versions.
func chainSum(seq uint64, prevHash string, body [sha256.Size]byte) [sha256.Size]byte {
	var hexBody [2 * sha256.Size]byte
	hex.Encode(hexBody[:], body[:])
	bp := bufPool.Get().(*[]byte)
	buf := strconv.AppendUint((*bp)[:0], seq, 10)
	buf = append(buf, '|')
	buf = append(buf, prevHash...)
	buf = append(buf, '|')
	buf = append(buf, hexBody[:]...)
	sum := sha256.Sum256(buf)
	*bp = buf[:0]
	bufPool.Put(bp)
	return sum
}

// chainHash is chainSum rendered as the hex string stored in Hash. It is
// the only hashing done under the chain mutex. The hex digits go through
// a stack buffer so the only heap allocation is the returned string.
func chainHash(seq uint64, prevHash string, body [sha256.Size]byte) string {
	sum := chainSum(seq, prevHash, body)
	var hx [2 * sha256.Size]byte
	hex.Encode(hx[:], sum[:])
	return string(hx[:])
}

// recordHashMatches recomputes the chained hash of a fully-assigned
// record and compares it to the stored Hash without materializing the
// hex string on the heap (Verify calls this once per record).
func recordHashMatches(r *Record) bool {
	sum := chainSum(r.Seq, r.PrevHash, hashBody(r))
	var hx [2 * sha256.Size]byte
	hex.Encode(hx[:], sum[:])
	return string(hx[:]) == r.Hash
}

// key renders a sequence number as a sortable store key ("a/%020d").
func key(seq uint64) string {
	var b [22]byte
	b[0], b[1] = 'a', '/'
	for i := len(b) - 1; i >= 2; i-- {
		b[i] = byte('0' + seq%10)
		seq /= 10
	}
	return string(b[:])
}

// Len returns the number of records.
func (l *Log) Len() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Verify walks the whole chain and checks every link. It returns
// ErrTampered (wrapped with the offending sequence number) if a record
// was modified, reordered or removed.
//
// The walk streams: records are decoded one at a time from the store's
// internal value slices under a single read transaction (no per-record
// value copy, no accumulated slice) and the recomputed hash is compared
// in place, so verifying a large chain costs O(1) extra memory. Each
// link still needs its predecessor's hash only, which the walk carries
// in two reusable buffers.
func (l *Log) Verify() error {
	l.mu.Lock()
	seq := l.seq
	l.mu.Unlock()
	prev := genesisHash
	var want uint64 = 1
	var verr error
	var r Record
	err := l.st.View(func(tx store.Tx) error {
		tx.AscendPrefix("a/", func(k string, v []byte) bool {
			r = Record{}
			if err := json.Unmarshal(v, &r); err != nil {
				verr = fmt.Errorf("%w: undecodable record at %s", ErrTampered, k)
				return false
			}
			if r.Seq != want {
				verr = fmt.Errorf("%w: gap at seq %d (found %d)", ErrTampered, want, r.Seq)
				return false
			}
			if r.PrevHash != prev {
				verr = fmt.Errorf("%w: broken link at seq %d", ErrTampered, r.Seq)
				return false
			}
			if !recordHashMatches(&r) {
				verr = fmt.Errorf("%w: content hash mismatch at seq %d", ErrTampered, r.Seq)
				return false
			}
			prev = r.Hash // fresh string from Unmarshal, safe to retain
			want++
			return true
		})
		return nil
	})
	if err != nil {
		return err
	}
	if verr != nil {
		return verr
	}
	if want != seq+1 {
		return fmt.Errorf("%w: chain shorter than expected (%d < %d)", ErrTampered, want-1, seq)
	}
	return nil
}

// Query filters the audit trail. Zero-valued fields match anything.
type Query struct {
	Kind    Kind
	Actor   string
	EventID event.GlobalID
	Class   event.ClassID
	Outcome string
	Trace   string
	From    time.Time
	To      time.Time
	Limit   int
}

// Search returns the records matching q, in chain order. Like Verify it
// streams under one read transaction: non-matching records cost a decode
// but no value copy.
func (l *Log) Search(q Query) ([]Record, error) {
	var out []Record
	var derr error
	err := l.st.View(func(tx store.Tx) error {
		tx.AscendPrefix("a/", func(k string, v []byte) bool {
			var r Record
			if err := json.Unmarshal(v, &r); err != nil {
				derr = fmt.Errorf("audit: corrupt record %s: %w", k, err)
				return false
			}
			if q.Kind != "" && r.Kind != q.Kind {
				return true
			}
			if q.Actor != "" && r.Actor != q.Actor {
				return true
			}
			if q.EventID != "" && r.EventID != q.EventID {
				return true
			}
			if q.Class != "" && r.Class != q.Class {
				return true
			}
			if q.Outcome != "" && r.Outcome != q.Outcome {
				return true
			}
			if q.Trace != "" && r.Trace != q.Trace {
				return true
			}
			if !q.From.IsZero() && r.At.Before(q.From) {
				return true
			}
			if !q.To.IsZero() && r.At.After(q.To) {
				return true
			}
			out = append(out, r)
			return q.Limit <= 0 || len(out) < q.Limit
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, derr
}
