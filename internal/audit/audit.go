// Package audit implements the access log of the data controller: "the
// data controller ... maintains logs of the access request for auditing
// purposes" (paper §4), answering "who did the request and why/for which
// purpose" (§1) for the privacy guarantor or the data subject herself.
//
// The log is append-only and hash-chained: every record carries the hash
// of its predecessor, so truncation or in-place tampering is detectable
// by Verify. Records are persisted through the embedded store.
package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/store"
)

// Kind classifies an audited interaction.
type Kind string

// Audited interaction kinds.
const (
	// KindPublish: a producer published a notification.
	KindPublish Kind = "publish"
	// KindSubscribe: a consumer asked to subscribe to an event class.
	KindSubscribe Kind = "subscribe"
	// KindDetailRequest: a consumer asked for the details of an event.
	KindDetailRequest Kind = "detail-request"
	// KindIndexInquiry: a consumer queried the events index.
	KindIndexInquiry Kind = "index-inquiry"
)

// Record is one audited interaction. Outcome is "permit" or "deny"
// (or "ok" for publishes); PolicyID names the deciding policy when one
// matched.
type Record struct {
	// Seq is the 1-based position in the chain.
	Seq uint64 `json:"seq"`
	// At is when the interaction was logged.
	At time.Time `json:"at"`
	// Kind classifies the interaction.
	Kind Kind `json:"kind"`
	// Actor is who performed it (consumer actor or producer id).
	Actor string `json:"actor"`
	// EventID is the global event id, when the interaction names one.
	EventID event.GlobalID `json:"eventId,omitempty"`
	// Class is the event class involved.
	Class event.ClassID `json:"class,omitempty"`
	// Purpose is the declared purpose of use, when stated.
	Purpose event.Purpose `json:"purpose,omitempty"`
	// Outcome is the decision: "permit", "deny" or "ok".
	Outcome string `json:"outcome"`
	// PolicyID names the policy that determined the outcome, if any.
	PolicyID string `json:"policyId,omitempty"`
	// Note carries free-form diagnostic detail (e.g. the denial reason).
	Note string `json:"note,omitempty"`
	// Trace is the correlation identifier of the flow this record belongs
	// to (minted at the originating publish or detail request). It links
	// the audit trail to the runtime telemetry: the same id appears on
	// wire messages, spans and logs, and it is covered by the chain hash.
	Trace string `json:"trace,omitempty"`
	// PrevHash/Hash chain the record to its predecessor.
	PrevHash string `json:"prevHash"`
	Hash     string `json:"hash"`
}

// ErrTampered reports a chain verification failure.
var ErrTampered = errors.New("audit: chain verification failed")

// Log is the hash-chained audit log. Safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	st   *store.Store
	seq  uint64
	last string // hash of the newest record
}

// genesisHash anchors the chain.
const genesisHash = "css-audit-genesis"

// Open creates a log on st, recovering the chain head from persisted
// records. The log uses keys with prefix "a/" in the store.
func Open(st *store.Store) (*Log, error) {
	l := &Log{st: st, last: genesisHash}
	var innerErr error
	err := st.AscendPrefix("a/", func(k string, v []byte) bool {
		var r Record
		if err := json.Unmarshal(v, &r); err != nil {
			innerErr = fmt.Errorf("audit: corrupt record %s: %w", k, err)
			return false
		}
		if r.Seq > l.seq {
			l.seq = r.Seq
			l.last = r.Hash
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if innerErr != nil {
		return nil, innerErr
	}
	return l, nil
}

// recordBody mirrors the descriptive fields of Record — everything
// except the chain fields (Seq, PrevHash, Hash) — with identical JSON
// tags, so its encoding can be produced before the chain position is
// known and spliced into the persisted record under the lock.
type recordBody struct {
	At       time.Time      `json:"at"`
	Kind     Kind           `json:"kind"`
	Actor    string         `json:"actor"`
	EventID  event.GlobalID `json:"eventId,omitempty"`
	Class    event.ClassID  `json:"class,omitempty"`
	Purpose  event.Purpose  `json:"purpose,omitempty"`
	Outcome  string         `json:"outcome"`
	PolicyID string         `json:"policyId,omitempty"`
	Note     string         `json:"note,omitempty"`
	Trace    string         `json:"trace,omitempty"`
}

// Append adds a record to the chain. Seq, PrevHash and Hash are assigned
// by the log; the caller fills the descriptive fields. The stored record
// is returned.
//
// The expensive work — JSON-encoding the record body and SHA-hashing it
// — happens before the chain mutex is taken; the lock covers only the
// seq/prev-hash assignment, a small finalizing hash, the splice of the
// chain fields into the prebuilt JSON, and the store append (which must
// stay inside the lock so the persisted order matches the chain order).
func (l *Log) Append(r Record) (Record, error) {
	if r.Kind == "" || r.Actor == "" || r.Outcome == "" {
		return Record{}, errors.New("audit: record missing kind, actor or outcome")
	}
	if r.At.IsZero() {
		r.At = time.Now()
	}
	body, err := json.Marshal(&recordBody{
		At: r.At, Kind: r.Kind, Actor: r.Actor, EventID: r.EventID,
		Class: r.Class, Purpose: r.Purpose, Outcome: r.Outcome,
		PolicyID: r.PolicyID, Note: r.Note, Trace: r.Trace,
	})
	if err != nil {
		return Record{}, fmt.Errorf("audit: encode: %w", err)
	}
	sum := hashBody(&r)

	l.mu.Lock()
	defer l.mu.Unlock()
	r.Seq = l.seq + 1
	r.PrevHash = l.last
	r.Hash = chainHash(r.Seq, r.PrevHash, sum)
	if err := l.st.Put(key(r.Seq), spliceChainFields(body, r.Seq, r.PrevHash, r.Hash)); err != nil {
		return Record{}, err
	}
	l.seq = r.Seq
	l.last = r.Hash
	return r, nil
}

// spliceChainFields assembles the persisted JSON from the pre-encoded
// body and the chain fields assigned under the lock. Seq is a number and
// the hashes are hex strings (or the genesis constant), so no JSON
// escaping is needed; unmarshaling into Record is field-order agnostic.
func spliceChainFields(body []byte, seq uint64, prevHash, hash string) []byte {
	out := make([]byte, 0, len(body)+len(prevHash)+len(hash)+48)
	out = append(out, `{"seq":`...)
	out = strconv.AppendUint(out, seq, 10)
	out = append(out, ',')
	out = append(out, body[1:len(body)-1]...) // body fields, braces stripped
	out = append(out, `,"prevHash":"`...)
	out = append(out, prevHash...)
	out = append(out, `","hash":"`...)
	out = append(out, hash...)
	out = append(out, `"}`...)
	return out
}

// hashBody digests the record's descriptive fields (everything the
// caller supplies). It needs no chain state, so Append computes it
// outside the mutex.
func hashBody(r *Record) [sha256.Size]byte {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s|%s|%s|%s|%s|%s|%s|%s",
		r.At.UTC().Format(time.RFC3339Nano), r.Kind, r.Actor,
		r.EventID, r.Class, r.Purpose, r.Outcome, r.PolicyID, r.Note, r.Trace)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// chainHash finalizes a record hash from its chain position, the
// predecessor hash and the body digest. It is the only hashing done
// under the chain mutex.
func chainHash(seq uint64, prevHash string, body [sha256.Size]byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d|%s|%x", seq, prevHash, body)
	return hex.EncodeToString(h.Sum(nil))
}

// hashRecord recomputes the chained hash of a fully-assigned record
// (used by Verify). The Hash field itself is excluded.
func hashRecord(r *Record) string {
	return chainHash(r.Seq, r.PrevHash, hashBody(r))
}

// key renders a sequence number as a sortable store key.
func key(seq uint64) string { return fmt.Sprintf("a/%020d", seq) }

// Len returns the number of records.
func (l *Log) Len() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Verify walks the whole chain and checks every link. It returns
// ErrTampered (wrapped with the offending sequence number) if a record
// was modified, reordered or removed.
func (l *Log) Verify() error {
	l.mu.Lock()
	seq := l.seq
	l.mu.Unlock()
	prev := genesisHash
	var want uint64 = 1
	var verr error
	err := l.st.AscendPrefix("a/", func(k string, v []byte) bool {
		var r Record
		if err := json.Unmarshal(v, &r); err != nil {
			verr = fmt.Errorf("%w: undecodable record at %s", ErrTampered, k)
			return false
		}
		if r.Seq != want {
			verr = fmt.Errorf("%w: gap at seq %d (found %d)", ErrTampered, want, r.Seq)
			return false
		}
		if r.PrevHash != prev {
			verr = fmt.Errorf("%w: broken link at seq %d", ErrTampered, r.Seq)
			return false
		}
		if hashRecord(&r) != r.Hash {
			verr = fmt.Errorf("%w: content hash mismatch at seq %d", ErrTampered, r.Seq)
			return false
		}
		prev = r.Hash
		want++
		return true
	})
	if err != nil {
		return err
	}
	if verr != nil {
		return verr
	}
	if want != seq+1 {
		return fmt.Errorf("%w: chain shorter than expected (%d < %d)", ErrTampered, want-1, seq)
	}
	return nil
}

// Query filters the audit trail. Zero-valued fields match anything.
type Query struct {
	Kind    Kind
	Actor   string
	EventID event.GlobalID
	Class   event.ClassID
	Outcome string
	Trace   string
	From    time.Time
	To      time.Time
	Limit   int
}

// Search returns the records matching q, in chain order.
func (l *Log) Search(q Query) ([]Record, error) {
	var out []Record
	var derr error
	err := l.st.AscendPrefix("a/", func(k string, v []byte) bool {
		var r Record
		if err := json.Unmarshal(v, &r); err != nil {
			derr = fmt.Errorf("audit: corrupt record %s: %w", k, err)
			return false
		}
		if q.Kind != "" && r.Kind != q.Kind {
			return true
		}
		if q.Actor != "" && r.Actor != q.Actor {
			return true
		}
		if q.EventID != "" && r.EventID != q.EventID {
			return true
		}
		if q.Class != "" && r.Class != q.Class {
			return true
		}
		if q.Outcome != "" && r.Outcome != q.Outcome {
			return true
		}
		if q.Trace != "" && r.Trace != q.Trace {
			return true
		}
		if !q.From.IsZero() && r.At.Before(q.From) {
			return true
		}
		if !q.To.IsZero() && r.At.After(q.To) {
			return true
		}
		out = append(out, r)
		return q.Limit <= 0 || len(out) < q.Limit
	})
	if err != nil {
		return nil, err
	}
	return out, derr
}
