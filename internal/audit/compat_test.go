package audit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/store"
)

// referenceHash is the original fmt-based hash implementation. The
// hand-rolled hot path must produce byte-identical digests or existing
// persisted chains would stop verifying.
func referenceHash(r *Record) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s|%s|%s|%s|%s|%s|%s|%s",
		r.At.UTC().Format(time.RFC3339Nano), r.Kind, r.Actor,
		r.EventID, r.Class, r.Purpose, r.Outcome, r.PolicyID, r.Note, r.Trace)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	h2 := sha256.New()
	fmt.Fprintf(h2, "%d|%s|%x", r.Seq, r.PrevHash, sum)
	return fmt.Sprintf("%x", h2.Sum(nil))
}

func TestHashMatchesReferenceImplementation(t *testing.T) {
	records := []Record{
		{Seq: 1, At: time.Date(2026, 8, 7, 1, 2, 3, 456789, time.UTC),
			Kind: KindPublish, Actor: "hospital", EventID: "evt-1",
			Class: "hospital.blood-test", Outcome: "ok",
			Trace: "4bf92f3577b34da6", PrevHash: genesisHash},
		{Seq: 1234567, At: time.Now(), Kind: KindDetailRequest,
			Actor: "municipality", Purpose: "care", Outcome: "deny",
			PolicyID: "p-9", Note: `denied: "no policy" | reason`,
			PrevHash: "ab" + genesisHash},
		{Seq: 2, At: time.Date(1999, 12, 31, 23, 59, 59, 999999999, time.FixedZone("CET", 3600)),
			Kind: KindSubscribe, Actor: "a|b|c", Outcome: "permit",
			PrevHash: "0000000000000000000000000000000000000000000000000000000000000000"},
	}
	for i, r := range records {
		got := chainHash(r.Seq, r.PrevHash, hashBody(&r))
		if want := referenceHash(&r); got != want {
			t.Fatalf("record %d: hash diverged from reference: %s vs %s", i, got, want)
		}
		r.Hash = got
		if !recordHashMatches(&r) {
			t.Fatalf("record %d: recordHashMatches rejects its own hash", i)
		}
	}
}

func TestKeyMatchesReferenceFormat(t *testing.T) {
	for _, seq := range []uint64{0, 1, 42, 99999, 1<<63 + 11} {
		if got, want := key(seq), fmt.Sprintf("a/%020d", seq); got != want {
			t.Fatalf("key(%d) = %q, want %q", seq, got, want)
		}
	}
}

// The hand-rolled record JSON must stay loadable by encoding/json with
// the exact field set the struct tags declare, including escaping.
func TestAppendedJSONRoundTrips(t *testing.T) {
	st := store.OpenMemory()
	l, err := Open(st)
	if err != nil {
		t.Fatal(err)
	}
	in := Record{
		Kind:  KindIndexInquiry,
		Actor: `evil "actor"` + "\n\t\\" + string(rune(0x01)),
		Class: "a.b", Purpose: "care", Outcome: "permit",
		PolicyID: "p-1", Note: "n<&>" + string(rune(0x1f)),
		Trace:   "deadbeef00000000",
		EventID: "evt-x",
	}
	stored, err := l.Append(in)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok, err := st.Get(key(stored.Seq))
	if err != nil || !ok {
		t.Fatalf("record not stored: ok=%v err=%v", ok, err)
	}
	if !json.Valid(raw) {
		t.Fatalf("stored record is not valid JSON: %s", raw)
	}
	var got Record
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("stored record does not unmarshal: %v\n%s", err, raw)
	}
	if got.Actor != in.Actor || got.Note != in.Note || got.Kind != in.Kind ||
		got.Class != in.Class || got.Purpose != in.Purpose || got.Outcome != in.Outcome ||
		got.PolicyID != in.PolicyID || got.Trace != in.Trace || got.EventID != in.EventID {
		t.Fatalf("round trip mismatch:\n in: %+v\ngot: %+v", in, got)
	}
	if got.Seq != stored.Seq || got.PrevHash != stored.PrevHash || got.Hash != stored.Hash {
		t.Fatalf("chain fields mismatch: %+v vs %+v", stored, got)
	}
	if !got.At.Equal(stored.At) {
		t.Fatalf("At mismatch: %v vs %v", stored.At, got.At)
	}
	// A chain of such records must verify, and reopening must recover it.
	if _, err := l.Append(Record{Kind: KindPublish, Actor: "a", Outcome: "ok"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	re, err := Open(st)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reopened length %d, want 2", re.Len())
	}
	if err := re.Verify(); err != nil {
		t.Fatalf("verify after reopen: %v", err)
	}
}

// AppendStaged must expose the record before the barrier and keep the
// chain intact across a staged append mixed with plain appends.
func TestAppendStagedChain(t *testing.T) {
	st := store.OpenMemory()
	l, err := Open(st)
	if err != nil {
		t.Fatal(err)
	}
	r1, c1, err := l.AppendStaged(Record{Kind: KindPublish, Actor: "h", Outcome: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seq != 1 || r1.PrevHash != genesisHash {
		t.Fatalf("bad first record: %+v", r1)
	}
	if _, err := l.Append(Record{Kind: KindPublish, Actor: "h", Outcome: "ok"}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("verify with staged append: %v", err)
	}
}
