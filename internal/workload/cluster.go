package workload

import "repro/internal/core"

// ProvisionCluster provisions every shard of a controller cluster with
// the full scenario roster and the standard policy set. Membership
// state — producers, consumers, event classes, policies — is per-shard
// (only the events index and id map are partitioned by the shard map),
// so every member must carry the complete roster for publishes and
// inquiries to be answerable wherever the ring routes them.
func ProvisionCluster(ctrls ...*core.Controller) ([]*Platform, error) {
	out := make([]*Platform, 0, len(ctrls))
	for _, c := range ctrls {
		p, err := Provision(c)
		if err != nil {
			return nil, err
		}
		if _, err := p.StandardPolicies(); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
