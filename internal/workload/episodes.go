package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/event"
	"repro/internal/schema"
)

// Care episodes: beyond the IID event stream of Generator, the episode
// generator produces *correlated* sequences per person — the actual shape
// of the processes the platform monitors (paper §4: "the composition of
// data events on the same person produced by different sources gives her
// social and health profile"). An episode starts with a hospital
// discharge and, with configurable drop and delay probabilities,
// continues with home-care activation and a first nursing intervention —
// the post-discharge pathway of the examples and of experiment E15.

// EpisodeConfig parameterizes an EpisodeGenerator.
type EpisodeConfig struct {
	// Seed makes the stream deterministic.
	Seed int64
	// People is the population size (default 500).
	People int
	// HomeCareDropRate is the probability that home care never follows a
	// discharge (default 0.1).
	HomeCareDropRate float64
	// HomeCareLateRate is the probability that home care follows but
	// beyond the 7-day deadline (default 0.1).
	HomeCareLateRate float64
	// NursingDropRate / NursingLateRate likewise for the nursing stage
	// relative to its 14-day deadline (defaults 0.1 / 0.1).
	NursingDropRate float64
	NursingLateRate float64
	// Noise is the number of unrelated events (blood tests, meals)
	// interleaved per episode (default 2).
	Noise int
}

func (c *EpisodeConfig) defaults() {
	if c.People <= 0 {
		c.People = 500
	}
	if c.HomeCareDropRate == 0 {
		c.HomeCareDropRate = 0.1
	}
	if c.HomeCareLateRate == 0 {
		c.HomeCareLateRate = 0.1
	}
	if c.NursingDropRate == 0 {
		c.NursingDropRate = 0.1
	}
	if c.NursingLateRate == 0 {
		c.NursingLateRate = 0.1
	}
	if c.Noise == 0 {
		c.Noise = 2
	}
}

// EpisodeOutcome classifies a generated episode (ground truth for
// validating monitors).
type EpisodeOutcome int

const (
	// EpisodeComplete: both stages on time.
	EpisodeComplete EpisodeOutcome = iota
	// EpisodeHomeCareDropped: home care never happens.
	EpisodeHomeCareDropped
	// EpisodeHomeCareLate: home care beyond the 7-day deadline (and no
	// nursing follows in this model).
	EpisodeHomeCareLate
	// EpisodeNursingDropped: home care on time, nursing never happens.
	EpisodeNursingDropped
	// EpisodeNursingLate: nursing beyond its 14-day deadline — the
	// pathway stalls and then completes late.
	EpisodeNursingLate
)

// Episode is one generated care episode with its ground-truth outcome.
type Episode struct {
	PersonID string
	Start    time.Time
	Outcome  EpisodeOutcome
	// Events are the episode's notifications plus noise, time-ordered.
	Events []*event.Notification
}

// EpisodeGenerator produces correlated care episodes.
type EpisodeGenerator struct {
	cfg      EpisodeConfig
	rnd      *rand.Rand
	people   []Person
	seq      int // event counter
	episodes int // episode counter (drives person round-robin)
	clock    time.Time
}

// NewEpisodeGenerator builds a generator.
func NewEpisodeGenerator(cfg EpisodeConfig) *EpisodeGenerator {
	cfg.defaults()
	rnd := rand.New(rand.NewSource(cfg.Seed))
	return &EpisodeGenerator{
		cfg:    cfg,
		rnd:    rnd,
		people: makePeople(rnd, cfg.People),
		clock:  time.Date(2010, 1, 4, 9, 0, 0, 0, time.UTC),
	}
}

func (g *EpisodeGenerator) notif(class event.ClassID, producer event.ProducerID, person Person, at time.Time) *event.Notification {
	g.seq++
	return &event.Notification{
		ID:         event.GlobalID(fmt.Sprintf("ep-evt-%08d", g.seq)),
		SourceID:   event.SourceID(fmt.Sprintf("ep-src-%08d", g.seq)),
		Class:      class,
		PersonID:   person.ID,
		Summary:    string(class),
		OccurredAt: at,
		Producer:   producer,
	}
}

// Next generates one episode. Episodes start a few hours apart, so a
// stream of episodes interleaves naturally in time. Persons are assigned
// round-robin, so up to len(people) concurrent episodes never collide on
// a person (a person's second episode only begins after the population
// cycled).
func (g *EpisodeGenerator) Next() Episode {
	person := g.people[g.episodes%len(g.people)]
	g.episodes++
	start := g.clock
	g.clock = g.clock.Add(time.Duration(1+g.rnd.Intn(6)) * time.Hour)

	ep := Episode{PersonID: person.ID, Start: start, Outcome: EpisodeComplete}
	ep.Events = append(ep.Events, g.notif(schema.ClassDischarge, "hospital-s-maria", person, start))

	day := 24 * time.Hour
	// Stage 1: home care within 7 days, late, or never.
	var homeCareAt time.Time
	switch {
	case g.rnd.Float64() < g.cfg.HomeCareDropRate:
		ep.Outcome = EpisodeHomeCareDropped
	case g.rnd.Float64() < g.cfg.HomeCareLateRate:
		ep.Outcome = EpisodeHomeCareLate
		homeCareAt = start.Add(time.Duration(8+g.rnd.Intn(14)) * day)
	default:
		homeCareAt = start.Add(time.Duration(1+g.rnd.Intn(6)) * day)
	}
	if !homeCareAt.IsZero() {
		ep.Events = append(ep.Events, g.notif(schema.ClassHomeCare, "municipality-trento", person, homeCareAt))
	}

	// Stage 2 only matters if stage 1 happened on time.
	if ep.Outcome == EpisodeComplete {
		switch {
		case g.rnd.Float64() < g.cfg.NursingDropRate:
			ep.Outcome = EpisodeNursingDropped
		case g.rnd.Float64() < g.cfg.NursingLateRate:
			ep.Outcome = EpisodeNursingLate
			ep.Events = append(ep.Events, g.notif(schema.ClassNursingService, "social-services", person,
				homeCareAt.Add(time.Duration(15+g.rnd.Intn(14))*day)))
		default:
			ep.Events = append(ep.Events, g.notif(schema.ClassNursingService, "social-services", person,
				homeCareAt.Add(time.Duration(1+g.rnd.Intn(13))*day)))
		}
	}

	// Interleave unrelated noise.
	noiseClasses := []struct {
		class    event.ClassID
		producer event.ProducerID
	}{
		{schema.ClassBloodTest, "hospital-s-maria"},
		{schema.ClassFoodDelivery, "municipality-trento"},
		{schema.ClassTelecare, "telecare-co"},
	}
	for i := 0; i < g.cfg.Noise; i++ {
		nc := noiseClasses[g.rnd.Intn(len(noiseClasses))]
		at := start.Add(time.Duration(g.rnd.Intn(20*24)) * time.Hour)
		ep.Events = append(ep.Events, g.notif(nc.class, nc.producer, person, at))
	}

	sort.Slice(ep.Events, func(i, j int) bool {
		return ep.Events[i].OccurredAt.Before(ep.Events[j].OccurredAt)
	})
	return ep
}

// Stream generates n episodes and returns all their events merged in
// global time order, together with the ground-truth outcome counts.
func (g *EpisodeGenerator) Stream(n int) ([]*event.Notification, map[EpisodeOutcome]int) {
	var all []*event.Notification
	truth := map[EpisodeOutcome]int{}
	for i := 0; i < n; i++ {
		ep := g.Next()
		truth[ep.Outcome]++
		all = append(all, ep.Events...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].OccurredAt.Before(all[j].OccurredAt) })
	return all, truth
}
