package workload

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/store"
)

// date maps an event sequence number into the simulation year, one event
// every few minutes starting January 1st.
func date(year, seq int) time.Time {
	return time.Date(year, 1, 1, 8, 0, 0, 0, time.UTC).Add(time.Duration(seq) * 7 * time.Minute)
}

// Platform is a fully provisioned CSS deployment for tests and benches:
// a controller with all scenario producers registered (each with an
// in-memory gateway), all consumers admitted, and optionally the standard
// policy set installed.
type Platform struct {
	Controller *core.Controller
	Gateways   map[event.ProducerID]*gateway.Gateway
}

// Provision registers the scenario roster on the controller and attaches
// one in-memory gateway per producer.
func Provision(c *core.Controller) (*Platform, error) {
	p := &Platform{Controller: c, Gateways: make(map[event.ProducerID]*gateway.Gateway)}
	for _, spec := range Producers() {
		if err := c.RegisterProducer(spec.ID, spec.Name); err != nil {
			return nil, err
		}
		for _, s := range spec.Classes {
			if err := c.DeclareClass(spec.ID, s); err != nil {
				return nil, err
			}
		}
		gw, err := gateway.New(spec.ID, store.OpenMemory(), c.Catalog())
		if err != nil {
			return nil, err
		}
		if err := c.AttachGateway(spec.ID, gw); err != nil {
			return nil, err
		}
		p.Gateways[spec.ID] = gw
	}
	for _, spec := range Consumers() {
		if err := c.RegisterConsumer(spec.Actor, spec.Name); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Produce persists the detail at the producing gateway and publishes the
// notification, returning the assigned global id — one full producer-side
// cycle.
func (p *Platform) Produce(n *event.Notification, d *event.Detail) (event.GlobalID, error) {
	gw, ok := p.Gateways[n.Producer]
	if !ok {
		return "", fmt.Errorf("workload: no gateway for producer %s", n.Producer)
	}
	if err := gw.Persist(d); err != nil {
		return "", err
	}
	return p.Controller.Publish(n)
}

// StandardPolicies elicits the scenario's baseline policy set:
//
//   - the family doctor reads every class for healthcare treatment, with
//     the sensitive aids-test and lab-notes of blood tests obfuscated
//     (the §5 example);
//   - the home-care unit of the social welfare department reads the
//     socio-assistive classes for social assistance;
//   - the national statistics department reads age/sex/autonomy-score of
//     autonomy tests for statistical analysis (the Definition 2 example);
//   - the private caring cooperative reads identity fields of home-care
//     events for social assistance.
//
// It returns the stored policies.
func (p *Platform) StandardPolicies() ([]*policy.Policy, error) {
	var out []*policy.Policy
	add := func(pols []*policy.Policy, err error) error {
		if err != nil {
			return err
		}
		for _, pol := range pols {
			stored, err := p.Controller.DefinePolicy(pol)
			if err != nil {
				return err
			}
			out = append(out, stored)
		}
		return nil
	}

	for _, spec := range Producers() {
		for _, s := range spec.Classes {
			// Family doctor: everything except the canonical obfuscations.
			b := policy.NewBuilder(spec.ID, s)
			if s.Class() == schema.ClassBloodTest {
				b.SelectAllFieldsExcept("aids-test", "lab-notes")
			} else {
				b.SelectAllFieldsExcept()
			}
			if err := add(b.
				SelectConsumers("family-doctor").
				SelectPurposes(event.PurposeHealthcareTreatment).
				Label(fmt.Sprintf("family doctor on %s", s.Class()), "").
				Build()); err != nil {
				return nil, err
			}
		}
	}

	// Home-care unit on the municipality's socio-assistive classes.
	for _, s := range []*schema.Schema{schema.HomeCare(), schema.FoodDelivery(), schema.HouseCleaning()} {
		if err := add(policy.NewBuilder("municipality-trento", s).
			SelectAllFieldsExcept().
			SelectConsumers("social-welfare/home-care").
			SelectPurposes(event.PurposeSocialAssistance, event.PurposeAdministration).
			Label(fmt.Sprintf("home-care unit on %s", s.Class()), "").
			Build()); err != nil {
			return nil, err
		}
	}

	// National statistics: the Definition 2 example.
	if err := add(policy.NewBuilder("social-services", schema.AutonomyTest()).
		SelectFields("age", "sex", "autonomy-score").
		SelectConsumers("national-governance/statistics").
		SelectPurposes(event.PurposeStatisticalAnalysis).
		Label("autonomy statistics", "needs of elderly people").
		Build()); err != nil {
		return nil, err
	}

	// Private cooperative: identity fields of home care only.
	if err := add(policy.NewBuilder("municipality-trento", schema.HomeCare()).
		SelectFields("patient-id", "name", "surname", "service-type").
		SelectConsumers("caring-coop").
		SelectPurposes(event.PurposeSocialAssistance).
		Label("cooperative on home care", "identity and service type only").
		Build()); err != nil {
		return nil, err
	}

	return out, nil
}
