package workload

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/schema"
)

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(Config{Seed: 42, People: 100})
	b := NewGenerator(Config{Seed: 42, People: 100})
	for i := 0; i < 50; i++ {
		na, da := a.Next()
		nb, db := b.Next()
		if na.SourceID != nb.SourceID || na.PersonID != nb.PersonID || na.Class != nb.Class {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, na, nb)
		}
		if len(da.Fields) != len(db.Fields) {
			t.Fatalf("details diverge at %d", i)
		}
	}
	c := NewGenerator(Config{Seed: 43, People: 100})
	nc, _ := c.Next()
	na2, _ := NewGenerator(Config{Seed: 42, People: 100}).Next()
	if nc.PersonID == na2.PersonID && nc.Class == na2.Class && nc.Summary == na2.Summary {
		t.Log("note: different seeds produced identical first event (unlikely but possible)")
	}
}

func TestGeneratedEventsAreSchemaValid(t *testing.T) {
	g := NewGenerator(Config{Seed: 7, People: 50})
	schemas := map[event.ClassID]*schema.Schema{}
	for _, s := range schema.Domain() {
		schemas[s.Class()] = s
	}
	for i := 0; i < 200; i++ {
		n, d := g.Next()
		if err := n.Validate(); err != nil {
			t.Fatalf("event %d: invalid notification: %v", i, err)
		}
		s, ok := schemas[d.Class]
		if !ok {
			t.Fatalf("event %d: unknown class %s", i, d.Class)
		}
		if err := s.Validate(d); err != nil {
			t.Fatalf("event %d: schema-invalid detail: %v", i, err)
		}
		if n.SourceID != d.SourceID || n.Class != d.Class || n.Producer != d.Producer {
			t.Fatalf("event %d: notification/detail mismatch", i)
		}
		if v, _ := d.Get("patient-id"); v != n.PersonID {
			t.Fatalf("event %d: person mismatch %q != %q", i, v, n.PersonID)
		}
	}
}

func TestGeneratorTimeAdvances(t *testing.T) {
	g := NewGenerator(Config{Seed: 1, People: 10})
	n1, _ := g.Next()
	n2, _ := g.Next()
	if !n2.OccurredAt.After(n1.OccurredAt) {
		t.Error("occurrence time does not advance")
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewGenerator(Config{Seed: 9, People: 1000, ZipfS: 1.5})
	counts := map[string]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		ev, _ := g.Next()
		counts[ev.PersonID]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// With strong skew the hottest person must dominate far beyond the
	// uniform expectation (n/1000 = 5).
	if max < 50 {
		t.Errorf("hottest person has %d events; Zipf skew not effective", max)
	}
	// And the population coverage must still be partial.
	if len(counts) == 1000 {
		t.Error("all people active; skew looks uniform")
	}
}

func TestRostersAreConsistent(t *testing.T) {
	seenClass := map[event.ClassID]bool{}
	for _, p := range Producers() {
		if p.ID == "" || len(p.Classes) == 0 {
			t.Errorf("bad producer spec %+v", p)
		}
		for _, s := range p.Classes {
			if seenClass[s.Class()] {
				t.Errorf("class %s declared by two producers", s.Class())
			}
			seenClass[s.Class()] = true
		}
	}
	// Every domain class must have an owner.
	for _, s := range schema.Domain() {
		if !seenClass[s.Class()] {
			t.Errorf("domain class %s has no producer", s.Class())
		}
	}
	if len(Consumers()) < 3 {
		t.Error("too few consumers for the scenario")
	}
}

func TestProvisionAndStandardPolicies(t *testing.T) {
	c, err := core.New(core.Config{DefaultConsent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, err := Provision(c)
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if len(p.Gateways) != len(Producers()) {
		t.Errorf("gateways = %d", len(p.Gateways))
	}
	policies, err := p.StandardPolicies()
	if err != nil {
		t.Fatalf("StandardPolicies: %v", err)
	}
	if len(policies) < 10 {
		t.Errorf("standard policy set = %d policies", len(policies))
	}

	// Drive a small stream end to end through the provisioned platform.
	g := NewGenerator(Config{Seed: 3, People: 20})
	var autonomyGID event.GlobalID
	for i := 0; i < 100; i++ {
		n, d := g.Next()
		gid, err := p.Produce(n, d)
		if err != nil {
			t.Fatalf("Produce %d (%s): %v", i, n.Class, err)
		}
		if n.Class == schema.ClassAutonomyTest && autonomyGID == "" {
			autonomyGID = gid
		}
	}
	if total, _ := c.InquireIndex("family-doctor", index.Inquiry{}); len(total) != 100 {
		t.Errorf("family doctor sees %d notifications, want 100", len(total))
	}

	if autonomyGID != "" {
		// The statistics department gets exactly its three fields.
		d, err := c.RequestDetails(&event.DetailRequest{
			Requester: "national-governance/statistics",
			Class:     schema.ClassAutonomyTest,
			EventID:   autonomyGID,
			Purpose:   event.PurposeStatisticalAnalysis,
		})
		if err != nil {
			t.Fatalf("statistics detail request: %v", err)
		}
		if !d.ExposesOnly([]event.FieldName{"age", "sex", "autonomy-score"}) {
			t.Errorf("statistics response over-exposes: %v", d.FieldNames())
		}
		if _, ok := d.Get("patient-id"); ok {
			t.Error("statistics response identifies the patient")
		}
	} else {
		t.Log("no autonomy test in the sampled stream")
	}
}

func TestProvisionClusterMirrorsRosterOnEveryShard(t *testing.T) {
	key := bytes.Repeat([]byte{4}, 32)
	shards := []cluster.ShardInfo{
		{ID: 0, Addr: "http://shard-0"},
		{ID: 1, Addr: "http://shard-1"},
	}
	m, err := cluster.NewMap(1, 0, shards)
	if err != nil {
		t.Fatal(err)
	}
	ctrls := make([]*core.Controller, len(shards))
	for i := range ctrls {
		c, err := core.New(core.Config{
			DefaultConsent: true, MasterKey: key,
			ShardID: cluster.ShardID(i), ShardMap: m,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ctrls[i] = c
	}
	platforms, err := ProvisionCluster(ctrls...)
	if err != nil {
		t.Fatal(err)
	}
	if len(platforms) != len(ctrls) {
		t.Fatalf("got %d platforms, want %d", len(platforms), len(ctrls))
	}
	// Every shard must carry the identical membership state: same class
	// catalog, same gateway roster.
	want := len(ctrls[0].Catalog().Classes())
	if want == 0 {
		t.Fatal("shard 0 has an empty catalog")
	}
	for i, c := range ctrls {
		if got := len(c.Catalog().Classes()); got != want {
			t.Errorf("shard %d catalog holds %d classes, shard 0 holds %d", i, got, want)
		}
		if got := len(platforms[i].Gateways); got != len(Producers()) {
			t.Errorf("shard %d has %d gateways, want %d", i, got, len(Producers()))
		}
	}
}
