package workload

import (
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/process"
	"repro/internal/schema"
)

func TestEpisodeGeneratorDeterminism(t *testing.T) {
	a := NewEpisodeGenerator(EpisodeConfig{Seed: 5})
	b := NewEpisodeGenerator(EpisodeConfig{Seed: 5})
	for i := 0; i < 20; i++ {
		ea, eb := a.Next(), b.Next()
		if ea.PersonID != eb.PersonID || ea.Outcome != eb.Outcome || len(ea.Events) != len(eb.Events) {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestEpisodeShape(t *testing.T) {
	g := NewEpisodeGenerator(EpisodeConfig{Seed: 6, Noise: 3})
	for i := 0; i < 50; i++ {
		ep := g.Next()
		if ep.Events[0].OccurredAt.After(ep.Events[len(ep.Events)-1].OccurredAt) {
			t.Fatal("events not time-ordered")
		}
		// Exactly one discharge per episode, always present.
		discharges := 0
		for _, n := range ep.Events {
			if n.Class == schema.ClassDischarge {
				discharges++
			}
			if n.PersonID != ep.PersonID {
				t.Fatal("foreign person in episode")
			}
			if err := n.Validate(); err == nil && n.ID == "" {
				t.Fatal("event without id")
			}
		}
		if discharges != 1 {
			t.Fatalf("episode has %d discharges", discharges)
		}
		switch ep.Outcome {
		case EpisodeComplete, EpisodeNursingLate:
			if !hasClass(ep, schema.ClassHomeCare) || !hasClass(ep, schema.ClassNursingService) {
				t.Fatal("episode missing a stage it should have")
			}
		case EpisodeHomeCareDropped:
			if hasClass(ep, schema.ClassHomeCare) {
				t.Fatal("dropped home care present")
			}
		case EpisodeHomeCareLate, EpisodeNursingDropped:
			if hasClass(ep, schema.ClassNursingService) {
				t.Fatal("unexpected nursing event")
			}
		}
	}
}

func hasClass(ep Episode, c event.ClassID) bool {
	for _, n := range ep.Events {
		if n.Class == c {
			return true
		}
	}
	return false
}

// TestEpisodesValidateMonitor is the calibration loop: the monitor's
// classification of a generated stream must match the generator's ground
// truth in aggregate.
func TestEpisodesValidateMonitor(t *testing.T) {
	const episodes = 300
	g := NewEpisodeGenerator(EpisodeConfig{Seed: 7, People: 400,
		HomeCareDropRate: 0.15, HomeCareLateRate: 0.1,
		NursingDropRate: 0.1, NursingLateRate: 0.1})
	stream, truth := g.Stream(episodes)

	m, err := process.NewMonitor(&process.Pathway{
		Name:    "post-discharge care",
		Trigger: schema.ClassDischarge,
		Stages: []process.Stage{
			{Name: "home care", Class: schema.ClassHomeCare, Within: 7 * 24 * time.Hour},
			{Name: "nursing", Class: schema.ClassNursingService, Within: 14 * 24 * time.Hour},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range stream {
		m.Observe(n)
	}
	// Review far past every deadline.
	last := stream[len(stream)-1].OccurredAt
	report := m.Snapshot(last.Add(60 * 24 * time.Hour))

	// The monitor is observational: a late nursing event still advances
	// and completes the instance (the stall WAS visible while pending),
	// so at end-of-stream the monitor's completed set is {on time} ∪
	// {nursing late}, and its stalled set is everything still open.
	wantCompleted := truth[EpisodeComplete] + truth[EpisodeNursingLate]
	wantStalled := truth[EpisodeHomeCareDropped] + truth[EpisodeHomeCareLate] + truth[EpisodeNursingDropped]
	if len(report.Completed) != wantCompleted {
		t.Errorf("monitor completed = %d, ground truth %d", len(report.Completed), wantCompleted)
	}
	gotStalled := len(report.Stalled) + len(report.Active)
	if gotStalled != wantStalled {
		t.Errorf("monitor stalled(+active) = %d, ground truth %d", gotStalled, wantStalled)
	}
	if len(report.Active) != 0 {
		t.Errorf("instances still active past every deadline: %d", len(report.Active))
	}
	if report.Unrelated == 0 {
		t.Error("noise events not counted as unrelated")
	}
}
