// Package workload generates the synthetic social-and-health workload
// used by tests, examples and the benchmark harness: a population of
// citizens, the producer organizations of the Trentino scenario with
// their event classes, a consumer roster, standard policy sets, and
// deterministic event streams with Zipf-skewed per-person activity.
//
// The paper validated the platform "with sample data given by the data
// providers"; this package is the synthetic equivalent exercising the
// same code paths (DESIGN.md, substitution table).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/event"
	"repro/internal/schema"
)

// Person is one citizen of the synthetic population.
type Person struct {
	ID      string
	Name    string
	Surname string
	Age     int
	Sex     string
}

// ProducerSpec describes one data source and the classes it declares.
type ProducerSpec struct {
	ID      event.ProducerID
	Name    string
	Classes []*schema.Schema
}

// ConsumerSpec describes one consumer organization.
type ConsumerSpec struct {
	Actor event.Actor
	Name  string
}

// Producers returns the producer roster of the scenario with their
// domain event classes.
func Producers() []ProducerSpec {
	return []ProducerSpec{
		{
			ID: "hospital-s-maria", Name: "Hospital S. Maria",
			Classes: []*schema.Schema{schema.BloodTest(), schema.Discharge(), schema.Psychology()},
		},
		{
			ID: "municipality-trento", Name: "Municipality of Trento",
			Classes: []*schema.Schema{schema.HomeCare(), schema.FoodDelivery(), schema.HouseCleaning()},
		},
		{
			ID: "social-services", Name: "Provincial social services",
			Classes: []*schema.Schema{schema.AutonomyTest(), schema.NursingService()},
		},
		{
			ID: "telecare-co", Name: "Telecare provider",
			Classes: []*schema.Schema{schema.Telecare()},
		},
	}
}

// Consumers returns the consumer roster of the scenario.
func Consumers() []ConsumerSpec {
	return []ConsumerSpec{
		{Actor: "family-doctor", Name: "Family doctors network"},
		{Actor: "social-welfare", Name: "Social welfare department"},
		{Actor: "social-welfare/home-care", Name: "Home care unit"},
		{Actor: "national-governance/statistics", Name: "National statistics department"},
		{Actor: "hospital-s-maria/ward", Name: "Hospital ward"},
		{Actor: "caring-coop", Name: "Private caring cooperative"},
	}
}

// Config parameterizes a Generator.
type Config struct {
	// Seed makes the stream deterministic.
	Seed int64
	// People is the population size (default 1000).
	People int
	// ZipfS skews per-person activity (default 1.2; 0 disables skew).
	ZipfS float64
	// Classes are the event classes to draw from (default: all domain
	// classes).
	Classes []*schema.Schema
}

// Generator produces a deterministic stream of events.
type Generator struct {
	rnd      *rand.Rand
	zipf     *rand.Zipf
	people   []Person
	classes  []*schema.Schema
	ownerOf  map[event.ClassID]event.ProducerID
	seq      int
	baseYear int
}

// NewGenerator builds a generator.
func NewGenerator(cfg Config) *Generator {
	if cfg.People <= 0 {
		cfg.People = 1000
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.2
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = schema.Domain()
	}
	rnd := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{
		rnd:      rnd,
		classes:  cfg.Classes,
		ownerOf:  make(map[event.ClassID]event.ProducerID),
		baseYear: 2010,
	}
	if cfg.ZipfS > 1 {
		g.zipf = rand.NewZipf(rnd, cfg.ZipfS, 1, uint64(cfg.People-1))
	}
	for _, p := range Producers() {
		for _, s := range p.Classes {
			g.ownerOf[s.Class()] = p.ID
		}
	}
	g.people = makePeople(rnd, cfg.People)
	return g
}

var (
	firstNames = []string{"Anna", "Bruno", "Carla", "Dario", "Elena", "Fabio", "Giulia", "Hugo", "Irene", "Luca", "Maria", "Nino", "Olga", "Paolo", "Rita", "Sergio", "Teresa", "Ugo", "Vera", "Walter"}
	surnames   = []string{"Rossi", "Bianchi", "Ferrari", "Russo", "Gallo", "Costa", "Fontana", "Conti", "Ricci", "Bruno", "Moretti", "Greco", "Rizzo", "Lombardi", "Colombo", "Marini"}
	words      = []string{"stable", "improving", "routine", "follow-up", "acute", "chronic", "referred", "monitored", "assisted", "observed", "scheduled", "completed"}
)

func makePeople(rnd *rand.Rand, n int) []Person {
	people := make([]Person, n)
	for i := range people {
		sex := "f"
		if rnd.Intn(2) == 0 {
			sex = "m"
		}
		people[i] = Person{
			ID:      fmt.Sprintf("PRS-%06d", i+1),
			Name:    firstNames[rnd.Intn(len(firstNames))],
			Surname: surnames[rnd.Intn(len(surnames))],
			Age:     60 + rnd.Intn(40), // elderly care population
			Sex:     sex,
		}
	}
	return people
}

// People returns the synthetic population.
func (g *Generator) People() []Person {
	out := make([]Person, len(g.people))
	copy(out, g.people)
	return out
}

// pickPerson draws a person index with the configured skew.
func (g *Generator) pickPerson() Person {
	if g.zipf != nil {
		return g.people[int(g.zipf.Uint64())]
	}
	return g.people[g.rnd.Intn(len(g.people))]
}

// Next produces the next event of the stream: a notification and its
// matching full detail message. The producer is the owner of the drawn
// class; OccurredAt advances monotonically through the simulation year.
func (g *Generator) Next() (*event.Notification, *event.Detail) {
	g.seq++
	s := g.classes[g.rnd.Intn(len(g.classes))]
	person := g.pickPerson()
	producer := g.ownerOf[s.Class()]
	if producer == "" {
		producer = "unknown-producer"
	}
	src := event.SourceID(fmt.Sprintf("%s-src-%08d", producer, g.seq))
	occurred := date(g.baseYear, g.seq)

	n := &event.Notification{
		SourceID:   src,
		Class:      s.Class(),
		PersonID:   person.ID,
		Summary:    fmt.Sprintf("%s for %s %s", s.Doc(), person.Name, person.Surname),
		OccurredAt: occurred,
		Producer:   producer,
	}
	d := event.NewDetail(s.Class(), src, producer)
	for _, f := range s.Fields() {
		d.Set(f.Name, g.value(f, person))
	}
	return n, d
}

// value synthesizes a schema-valid value for a field.
func (g *Generator) value(f schema.Field, p Person) string {
	switch f.Name {
	case "patient-id":
		return p.ID
	case "name":
		return p.Name
	case "surname":
		return p.Surname
	case "age":
		return fmt.Sprintf("%d", p.Age)
	case "sex":
		return p.Sex
	}
	switch f.Type {
	case schema.Int:
		return fmt.Sprintf("%d", g.rnd.Intn(100))
	case schema.Float:
		return fmt.Sprintf("%.1f", 5+g.rnd.Float64()*20)
	case schema.Bool:
		if g.rnd.Intn(2) == 0 {
			return "false"
		}
		return "true"
	case schema.Date:
		return date(g.baseYear, g.seq).Format("2006-01-02")
	case schema.DateTime:
		return date(g.baseYear, g.seq).Format("2006-01-02T15:04:05Z")
	case schema.Code:
		return f.Codes[g.rnd.Intn(len(f.Codes))]
	default:
		return words[g.rnd.Intn(len(words))] + " " + words[g.rnd.Intn(len(words))]
	}
}
