package schema

import (
	"encoding/xml"
	"fmt"
	"strings"

	"repro/internal/event"
)

// The XML form mirrors the role of the per-class XSD artifacts installed
// in the paper's event catalog: a serializable structure declaration that
// candidate consumers can browse and the elicitation tool can read.

type schemaXML struct {
	XMLName xml.Name      `xml:"eventSchema"`
	Class   event.ClassID `xml:"class,attr"`
	Version int           `xml:"version,attr"`
	Doc     string        `xml:"doc,omitempty"`
	Fields  []fieldXML    `xml:"field"`
}

type fieldXML struct {
	Name        event.FieldName `xml:"name,attr"`
	Type        string          `xml:"type,attr"`
	Required    bool            `xml:"required,attr,omitempty"`
	Sensitivity string          `xml:"sensitivity,attr"`
	Doc         string          `xml:"doc,omitempty"`
	Codes       string          `xml:"codes,omitempty"`
}

// Encode serializes the schema to its XML wire form.
func Encode(s *Schema) ([]byte, error) {
	w := schemaXML{
		Class:   s.class,
		Version: s.version,
		Doc:     s.doc,
		Fields:  make([]fieldXML, len(s.fields)),
	}
	for i, f := range s.fields {
		w.Fields[i] = fieldXML{
			Name:        f.Name,
			Type:        f.Type.String(),
			Required:    f.Required,
			Sensitivity: f.Sensitivity.String(),
			Doc:         f.Doc,
			Codes:       strings.Join(f.Codes, "|"),
		}
	}
	return xml.MarshalIndent(w, "", "  ")
}

// Decode parses a schema from its XML wire form and re-validates it
// through New, so a decoded schema obeys the same integrity rules as a
// constructed one.
func Decode(data []byte) (*Schema, error) {
	var w schemaXML
	if err := xml.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("schema: decode: %w", err)
	}
	fields := make([]Field, len(w.Fields))
	for i, f := range w.Fields {
		t, err := ParseFieldType(f.Type)
		if err != nil {
			return nil, err
		}
		sens, err := ParseSensitivity(f.Sensitivity)
		if err != nil {
			return nil, err
		}
		var codes []string
		if f.Codes != "" {
			codes = strings.Split(f.Codes, "|")
		}
		fields[i] = Field{
			Name:        f.Name,
			Type:        t,
			Required:    f.Required,
			Sensitivity: sens,
			Doc:         f.Doc,
			Codes:       codes,
		}
	}
	return New(w.Class, w.Version, w.Doc, fields...)
}
