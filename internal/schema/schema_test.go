package schema

import (
	"strings"
	"testing"

	"repro/internal/event"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := New("test.exam", 1, "a test exam",
		Field{Name: "patient-id", Type: String, Required: true, Sensitivity: Identifying},
		Field{Name: "score", Type: Int, Required: true, Sensitivity: Sensitive},
		Field{Name: "ratio", Type: Float},
		Field{Name: "flag", Type: Bool},
		Field{Name: "when", Type: Date},
		Field{Name: "stamp", Type: DateTime},
		Field{Name: "outcome", Type: Code, Codes: []string{"ok", "ko"}},
		Field{Name: "notes", Type: String, Sensitivity: Sensitive},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewRejectsBadSchemas(t *testing.T) {
	cases := []struct {
		name   string
		class  event.ClassID
		ver    int
		fields []Field
	}{
		{"bad class", "Bad Class", 1, []Field{{Name: "a"}}},
		{"zero version", "c.x", 0, []Field{{Name: "a"}}},
		{"no fields", "c.x", 1, nil},
		{"empty field name", "c.x", 1, []Field{{Name: ""}}},
		{"duplicate field", "c.x", 1, []Field{{Name: "a"}, {Name: "a"}}},
		{"code without codes", "c.x", 1, []Field{{Name: "a", Type: Code}}},
		{"codes on non-code", "c.x", 1, []Field{{Name: "a", Type: Int, Codes: []string{"x"}}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.class, tc.ver, "", tc.fields...); err == nil {
			t.Errorf("%s: New accepted invalid schema", tc.name)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on invalid schema")
		}
	}()
	MustNew("c.x", 1, "")
}

func TestAccessors(t *testing.T) {
	s := testSchema(t)
	if s.Class() != "test.exam" || s.Version() != 1 || s.Doc() != "a test exam" {
		t.Errorf("accessors: %s v%d %q", s.Class(), s.Version(), s.Doc())
	}
	if len(s.Fields()) != 8 || len(s.FieldNames()) != 8 {
		t.Errorf("Fields()=%d FieldNames()=%d, want 8", len(s.Fields()), len(s.FieldNames()))
	}
	if f, ok := s.Field("score"); !ok || f.Type != Int || !f.Required {
		t.Errorf("Field(score) = %+v, %v", f, ok)
	}
	if _, ok := s.Field("nope"); ok {
		t.Error("Field(nope) reported present")
	}
	if !s.Has("ratio") || s.Has("nope") {
		t.Error("Has misreports")
	}
	// Fields() must return a copy.
	s.Fields()[0].Name = "mutated"
	if s.FieldNames()[0] != "patient-id" {
		t.Error("Fields() exposes internal slice")
	}
}

func TestFieldsWith(t *testing.T) {
	s := testSchema(t)
	sens := s.FieldsWith(Sensitive)
	if len(sens) != 2 || sens[0] != "score" || sens[1] != "notes" {
		t.Errorf("FieldsWith(Sensitive) = %v", sens)
	}
	if ids := s.FieldsWith(Identifying); len(ids) != 1 || ids[0] != "patient-id" {
		t.Errorf("FieldsWith(Identifying) = %v", ids)
	}
}

func TestCheckFields(t *testing.T) {
	s := testSchema(t)
	if err := s.CheckFields([]event.FieldName{"score", "notes"}); err != nil {
		t.Errorf("CheckFields(valid) = %v", err)
	}
	if err := s.CheckFields([]event.FieldName{"score", "bogus"}); err == nil {
		t.Error("CheckFields accepted unknown field")
	}
}

func validDetail() *event.Detail {
	return event.NewDetail("test.exam", "s-1", "prod").
		Set("patient-id", "PRS-1").
		Set("score", "42").
		Set("ratio", "0.5").
		Set("flag", "true").
		Set("when", "2010-06-01").
		Set("stamp", "2010-06-01T10:00:00Z").
		Set("outcome", "ok").
		Set("notes", "fine")
}

func TestValidateAcceptsFullDetail(t *testing.T) {
	if err := testSchema(t).Validate(validDetail()); err != nil {
		t.Errorf("Validate(full) = %v", err)
	}
}

func TestValidateTypeErrors(t *testing.T) {
	s := testSchema(t)
	bad := map[event.FieldName]string{
		"score":   "not-an-int",
		"ratio":   "x",
		"flag":    "yes",
		"when":    "01/06/2010",
		"stamp":   "2010-06-01",
		"outcome": "maybe",
	}
	for f, v := range bad {
		d := validDetail().Set(f, v)
		err := s.Validate(d)
		if err == nil {
			t.Errorf("Validate accepted %s=%q", f, v)
			continue
		}
		if !strings.Contains(err.Error(), string(f)) {
			t.Errorf("error for %s does not name the field: %v", f, err)
		}
	}
}

func TestValidateRequired(t *testing.T) {
	s := testSchema(t)
	d := validDetail()
	delete(d.Fields, "score")
	if err := s.Validate(d); err == nil {
		t.Error("Validate accepted detail missing required field")
	}
	d2 := validDetail().Set("score", "")
	if err := s.Validate(d2); err == nil {
		t.Error("Validate accepted empty required field")
	}
	// ValidatePartial tolerates missing/blank required fields.
	if err := s.ValidatePartial(d); err != nil {
		t.Errorf("ValidatePartial(filtered) = %v", err)
	}
	if err := s.ValidatePartial(d2); err != nil {
		t.Errorf("ValidatePartial(blanked) = %v", err)
	}
}

func TestValidateRejectsUndeclaredAndWrongClass(t *testing.T) {
	s := testSchema(t)
	d := validDetail().Set("extra", "v")
	if err := s.Validate(d); err == nil {
		t.Error("Validate accepted undeclared field")
	}
	wrong := validDetail()
	wrong.Class = "other.class"
	if err := s.Validate(wrong); err == nil {
		t.Error("Validate accepted wrong class")
	}
	if err := s.ValidatePartial(nil); err == nil {
		t.Error("ValidatePartial accepted nil detail")
	}
}

func TestFieldTypeAndSensitivityNames(t *testing.T) {
	for _, ft := range []FieldType{String, Int, Float, Bool, Date, DateTime, Code} {
		got, err := ParseFieldType(ft.String())
		if err != nil || got != ft {
			t.Errorf("ParseFieldType(%v.String()) = %v, %v", ft, got, err)
		}
	}
	if _, err := ParseFieldType("nonsense"); err == nil {
		t.Error("ParseFieldType accepted nonsense")
	}
	if FieldType(99).String() == "" {
		t.Error("unknown FieldType has empty String()")
	}
	for _, sv := range []Sensitivity{Ordinary, Identifying, Sensitive} {
		got, err := ParseSensitivity(sv.String())
		if err != nil || got != sv {
			t.Errorf("ParseSensitivity(%v.String()) = %v, %v", sv, got, err)
		}
	}
	if _, err := ParseSensitivity("nonsense"); err == nil {
		t.Error("ParseSensitivity accepted nonsense")
	}
	if Sensitivity(99).String() == "" {
		t.Error("unknown Sensitivity has empty String()")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	for _, s := range Domain() {
		data, err := Encode(s)
		if err != nil {
			t.Fatalf("Encode(%s): %v", s.Class(), err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("Decode(%s): %v", s.Class(), err)
		}
		if got.Class() != s.Class() || got.Version() != s.Version() || got.Doc() != s.Doc() {
			t.Errorf("%s: header mismatch after round trip", s.Class())
		}
		want, gotFields := s.Fields(), got.Fields()
		if len(want) != len(gotFields) {
			t.Fatalf("%s: field count %d != %d", s.Class(), len(gotFields), len(want))
		}
		for i := range want {
			w, g := want[i], gotFields[i]
			if w.Name != g.Name || w.Type != g.Type || w.Required != g.Required ||
				w.Sensitivity != g.Sensitivity || w.Doc != g.Doc || len(w.Codes) != len(g.Codes) {
				t.Errorf("%s: field %s mismatch: %+v != %+v", s.Class(), w.Name, g, w)
			}
		}
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Error("Decode accepted garbage")
	}
	// Structurally valid XML but failing New's integrity rules.
	bad := `<eventSchema class="c.x" version="1"><field name="a" type="int" sensitivity="ordinary"></field><field name="a" type="int" sensitivity="ordinary"></field></eventSchema>`
	if _, err := Decode([]byte(bad)); err == nil {
		t.Error("Decode accepted duplicate fields")
	}
	badType := `<eventSchema class="c.x" version="1"><field name="a" type="weird" sensitivity="ordinary"></field></eventSchema>`
	if _, err := Decode([]byte(badType)); err == nil {
		t.Error("Decode accepted unknown type")
	}
	badSens := `<eventSchema class="c.x" version="1"><field name="a" type="int" sensitivity="weird"></field></eventSchema>`
	if _, err := Decode([]byte(badSens)); err == nil {
		t.Error("Decode accepted unknown sensitivity")
	}
}

func TestDomainSchemasAreWellFormed(t *testing.T) {
	seen := map[event.ClassID]bool{}
	for _, s := range Domain() {
		if seen[s.Class()] {
			t.Errorf("duplicate domain class %s", s.Class())
		}
		seen[s.Class()] = true
		if !s.Has("patient-id") {
			t.Errorf("%s: missing patient-id field", s.Class())
		}
		if len(s.FieldsWith(Sensitive)) == 0 && s.Class() != ClassFoodDelivery {
			// every clinical/assistive class should carry sensitive payload
			t.Logf("note: %s has no sensitive fields", s.Class())
		}
	}
	if len(seen) != 9 {
		t.Errorf("Domain() returned %d classes, want 9", len(seen))
	}
}
