// Package schema defines the structure of event details classes.
//
// In the paper, the structure of each event class is specified by an XML
// Schema (XSD) installed in the event catalog; privacy policies then
// select subsets of the schema's fields. Here schemas are first-class Go
// values with typed, documented fields, a sensitivity label per field,
// and an XML export in the spirit of the paper's XSD artifacts.
package schema

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/event"
)

// FieldType enumerates the value syntaxes a detail field can take.
type FieldType int

const (
	// String accepts any value.
	String FieldType = iota
	// Int accepts a base-10 integer.
	Int
	// Float accepts a decimal number.
	Float
	// Bool accepts "true" or "false".
	Bool
	// Date accepts an ISO date (2006-01-02).
	Date
	// DateTime accepts an RFC 3339 timestamp.
	DateTime
	// Code accepts one value out of the field's enumerated Codes.
	Code
)

var fieldTypeNames = map[FieldType]string{
	String:   "string",
	Int:      "int",
	Float:    "float",
	Bool:     "bool",
	Date:     "date",
	DateTime: "dateTime",
	Code:     "code",
}

// String returns the lowercase name of the field type.
func (t FieldType) String() string {
	if s, ok := fieldTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("FieldType(%d)", int(t))
}

// ParseFieldType resolves a type name produced by FieldType.String.
func ParseFieldType(s string) (FieldType, error) {
	for t, name := range fieldTypeNames {
		if name == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("schema: unknown field type %q", s)
}

// Sensitivity classifies how delicate a field's content is. It guides
// policy elicitation (the tool highlights sensitive fields) and the
// exposure metrics of the benchmark harness; it is not itself an access
// control decision — policies are.
type Sensitivity int

const (
	// Ordinary data: neither identifying nor sensitive.
	Ordinary Sensitivity = iota
	// Identifying data: identifies the data subject (name, tax code).
	Identifying
	// Sensitive data in the sense of the privacy code: health status,
	// test results, psychological reports.
	Sensitive
)

var sensitivityNames = map[Sensitivity]string{
	Ordinary:    "ordinary",
	Identifying: "identifying",
	Sensitive:   "sensitive",
}

// String returns the lowercase name of the sensitivity class.
func (s Sensitivity) String() string {
	if n, ok := sensitivityNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Sensitivity(%d)", int(s))
}

// ParseSensitivity resolves a name produced by Sensitivity.String.
func ParseSensitivity(s string) (Sensitivity, error) {
	for v, name := range sensitivityNames {
		if name == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("schema: unknown sensitivity %q", s)
}

// Field describes one field of an event details class.
type Field struct {
	// Name is the field identifier used in details and policies.
	Name event.FieldName
	// Type constrains the value syntax.
	Type FieldType
	// Required fields must be present and non-empty in a full detail
	// message as produced by the source (enforcement may later blank them
	// for specific consumers).
	Required bool
	// Sensitivity classifies the field's content.
	Sensitivity Sensitivity
	// Doc is the human-readable description shown by the elicitation tool.
	Doc string
	// Codes enumerates the admissible values for Code-typed fields.
	Codes []string
}

// checkValue validates a single value against the field's type.
func (f *Field) checkValue(v string) error {
	switch f.Type {
	case String:
		return nil
	case Int:
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			return fmt.Errorf("schema: field %s: %q is not an integer", f.Name, v)
		}
	case Float:
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			return fmt.Errorf("schema: field %s: %q is not a number", f.Name, v)
		}
	case Bool:
		if v != "true" && v != "false" {
			return fmt.Errorf("schema: field %s: %q is not a boolean", f.Name, v)
		}
	case Date:
		if _, err := time.Parse("2006-01-02", v); err != nil {
			return fmt.Errorf("schema: field %s: %q is not a date", f.Name, v)
		}
	case DateTime:
		if _, err := time.Parse(time.RFC3339, v); err != nil {
			return fmt.Errorf("schema: field %s: %q is not a timestamp", f.Name, v)
		}
	case Code:
		for _, c := range f.Codes {
			if v == c {
				return nil
			}
		}
		return fmt.Errorf("schema: field %s: %q is not one of %s", f.Name, v, strings.Join(f.Codes, "|"))
	default:
		return fmt.Errorf("schema: field %s has invalid type %v", f.Name, f.Type)
	}
	return nil
}

// Schema is the structure declaration of an event details class: the
// ordered list of fields e = {f1, ..., fk} of the paper's event model.
type Schema struct {
	class   event.ClassID
	version int
	doc     string
	fields  []Field
	byName  map[event.FieldName]int
}

// New builds a schema for the given class. Field names must be unique and
// non-empty; Code fields must enumerate at least one admissible value.
func New(class event.ClassID, version int, doc string, fields ...Field) (*Schema, error) {
	if err := class.Validate(); err != nil {
		return nil, err
	}
	if version < 1 {
		return nil, fmt.Errorf("schema: class %s: version %d < 1", class, version)
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("schema: class %s has no fields", class)
	}
	s := &Schema{
		class:   class,
		version: version,
		doc:     doc,
		fields:  make([]Field, len(fields)),
		byName:  make(map[event.FieldName]int, len(fields)),
	}
	copy(s.fields, fields)
	for i, f := range s.fields {
		if f.Name == "" {
			return nil, fmt.Errorf("schema: class %s: field %d has empty name", class, i)
		}
		if _, dup := s.byName[f.Name]; dup {
			return nil, fmt.Errorf("schema: class %s: duplicate field %s", class, f.Name)
		}
		if f.Type == Code && len(f.Codes) == 0 {
			return nil, fmt.Errorf("schema: class %s: code field %s has no codes", class, f.Name)
		}
		if f.Type != Code && len(f.Codes) > 0 {
			return nil, fmt.Errorf("schema: class %s: non-code field %s enumerates codes", class, f.Name)
		}
		s.byName[f.Name] = i
	}
	return s, nil
}

// MustNew is New that panics on error, for statically known schemas.
func MustNew(class event.ClassID, version int, doc string, fields ...Field) *Schema {
	s, err := New(class, version, doc, fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Class returns the event class this schema describes.
func (s *Schema) Class() event.ClassID { return s.class }

// Version returns the schema version (monotonically increasing per class).
func (s *Schema) Version() int { return s.version }

// Doc returns the human-readable description of the class.
func (s *Schema) Doc() string { return s.doc }

// Fields returns a copy of the field declarations in declaration order.
func (s *Schema) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// Field returns the declaration of the named field.
func (s *Schema) Field(name event.FieldName) (Field, bool) {
	i, ok := s.byName[name]
	if !ok {
		return Field{}, false
	}
	return s.fields[i], true
}

// Has reports whether the schema declares the named field.
func (s *Schema) Has(name event.FieldName) bool {
	_, ok := s.byName[name]
	return ok
}

// FieldNames returns all field names in declaration order.
func (s *Schema) FieldNames() []event.FieldName {
	out := make([]event.FieldName, len(s.fields))
	for i, f := range s.fields {
		out[i] = f.Name
	}
	return out
}

// FieldsWith returns the names of the fields with the given sensitivity,
// in declaration order.
func (s *Schema) FieldsWith(sens Sensitivity) []event.FieldName {
	var out []event.FieldName
	for _, f := range s.fields {
		if f.Sensitivity == sens {
			out = append(out, f.Name)
		}
	}
	return out
}

// CheckFields verifies that every name in names is declared by the
// schema. Policy elicitation uses it to reject field sets that mention
// unknown fields.
func (s *Schema) CheckFields(names []event.FieldName) error {
	for _, n := range names {
		if !s.Has(n) {
			return fmt.Errorf("schema: class %s declares no field %s", s.class, n)
		}
	}
	return nil
}

// Validate checks a full detail message as produced by the source:
// the class must match, every populated field must be declared and typed
// correctly, and every required field must be present and non-empty.
func (s *Schema) Validate(d *event.Detail) error {
	if err := s.validateValues(d); err != nil {
		return err
	}
	for _, f := range s.fields {
		if !f.Required {
			continue
		}
		if v, ok := d.Fields[f.Name]; !ok || v == "" {
			return fmt.Errorf("schema: class %s: required field %s missing", s.class, f.Name)
		}
	}
	return nil
}

// ValidatePartial checks a (possibly policy-filtered) detail message:
// declared fields must be typed correctly, but required fields may be
// absent, since enforcement blanks unauthorized fields.
func (s *Schema) ValidatePartial(d *event.Detail) error {
	return s.validateValues(d)
}

func (s *Schema) validateValues(d *event.Detail) error {
	if d == nil {
		return errors.New("schema: nil detail")
	}
	if d.Class != s.class {
		return fmt.Errorf("schema: detail class %s does not match schema class %s", d.Class, s.class)
	}
	// Iterate in sorted order for deterministic first-error reporting.
	names := make([]string, 0, len(d.Fields))
	for n := range d.Fields {
		names = append(names, string(n))
	}
	sort.Strings(names)
	for _, n := range names {
		name := event.FieldName(n)
		i, ok := s.byName[name]
		if !ok {
			return fmt.Errorf("schema: class %s declares no field %s", s.class, name)
		}
		v := d.Fields[name]
		if v == "" {
			continue // blanked by enforcement, or intentionally empty
		}
		if err := s.fields[i].checkValue(v); err != nil {
			return err
		}
	}
	return nil
}
