package schema

import "repro/internal/event"

// Domain schemas for the social and health scenario of the paper. These
// are the event classes used throughout the examples, tests and the
// benchmark workload generator: home-care service events (the Fig. 8
// example), clinical exams (the blood test of §5, whose AIDS-test result
// is the canonical field to obfuscate), the autonomy test of the
// Definition 2 example, and the socio-assistive services named in the
// introduction (telecare, food delivery, house cleaning).

// Event class identifiers of the domain schemas.
const (
	ClassHomeCare       event.ClassID = "social.home-care-service"
	ClassBloodTest      event.ClassID = "hospital.blood-test"
	ClassAutonomyTest   event.ClassID = "social.autonomy-test"
	ClassTelecare       event.ClassID = "telecare.activation"
	ClassFoodDelivery   event.ClassID = "social.food-delivery"
	ClassDischarge      event.ClassID = "hospital.discharge"
	ClassPsychology     event.ClassID = "hospital.psychological-analysis"
	ClassHouseCleaning  event.ClassID = "social.house-cleaning"
	ClassNursingService event.ClassID = "social.nursing-service"
)

// HomeCare is the HomeCareServiceEvent of the paper's Fig. 8 policy
// example: the family doctor may access only PatientId, Name and Surname.
func HomeCare() *Schema {
	return MustNew(ClassHomeCare, 1, "Home care service delivered to a patient",
		Field{Name: "patient-id", Type: String, Required: true, Sensitivity: Identifying, Doc: "Regional patient identifier"},
		Field{Name: "name", Type: String, Required: true, Sensitivity: Identifying, Doc: "Patient first name"},
		Field{Name: "surname", Type: String, Required: true, Sensitivity: Identifying, Doc: "Patient family name"},
		Field{Name: "service-type", Type: Code, Required: true, Sensitivity: Ordinary, Doc: "Kind of home care service",
			Codes: []string{"nursing", "cleaning", "meal", "companionship", "physiotherapy"}},
		Field{Name: "operator", Type: String, Sensitivity: Ordinary, Doc: "Operator who delivered the service"},
		Field{Name: "duration-minutes", Type: Int, Sensitivity: Ordinary, Doc: "Duration of the intervention"},
		Field{Name: "care-notes", Type: String, Sensitivity: Sensitive, Doc: "Clinical notes recorded during the visit"},
		Field{Name: "health-status", Type: String, Sensitivity: Sensitive, Doc: "Observed health status"},
	)
}

// BloodTest is the clinical exam class of §5: a hospital laboratory
// result whose aids-test outcome should be obfuscated for most consumers.
func BloodTest() *Schema {
	return MustNew(ClassBloodTest, 1, "Blood test completed by a hospital laboratory",
		Field{Name: "patient-id", Type: String, Required: true, Sensitivity: Identifying, Doc: "Regional patient identifier"},
		Field{Name: "name", Type: String, Sensitivity: Identifying, Doc: "Patient first name"},
		Field{Name: "surname", Type: String, Sensitivity: Identifying, Doc: "Patient family name"},
		Field{Name: "exam-date", Type: Date, Required: true, Sensitivity: Ordinary, Doc: "Date the sample was analyzed"},
		Field{Name: "hemoglobin", Type: Float, Sensitivity: Sensitive, Doc: "Hemoglobin g/dL"},
		Field{Name: "glucose", Type: Float, Sensitivity: Sensitive, Doc: "Fasting glucose mg/dL"},
		Field{Name: "cholesterol", Type: Float, Sensitivity: Sensitive, Doc: "Total cholesterol mg/dL"},
		Field{Name: "aids-test", Type: Code, Sensitivity: Sensitive, Doc: "AIDS test outcome (to be obfuscated for most consumers)",
			Codes: []string{"negative", "positive", "inconclusive"}},
		Field{Name: "lab-notes", Type: String, Sensitivity: Sensitive, Doc: "Free-text laboratory notes"},
	)
}

// AutonomyTest is the autonomy assessment of the Definition 2 example:
// the national governance statistics department may access age, sex and
// autonomy-score for statistical analysis of the needs of elderly people.
func AutonomyTest() *Schema {
	return MustNew(ClassAutonomyTest, 1, "Autonomy assessment of an elderly person",
		Field{Name: "patient-id", Type: String, Required: true, Sensitivity: Identifying, Doc: "Regional patient identifier"},
		Field{Name: "name", Type: String, Sensitivity: Identifying, Doc: "Patient first name"},
		Field{Name: "surname", Type: String, Sensitivity: Identifying, Doc: "Patient family name"},
		Field{Name: "age", Type: Int, Required: true, Sensitivity: Ordinary, Doc: "Age in years"},
		Field{Name: "sex", Type: Code, Required: true, Sensitivity: Ordinary, Doc: "Sex", Codes: []string{"f", "m"}},
		Field{Name: "autonomy-score", Type: Int, Required: true, Sensitivity: Sensitive, Doc: "Autonomy score 0-100"},
		Field{Name: "assessor", Type: String, Sensitivity: Ordinary, Doc: "Social worker who performed the assessment"},
		Field{Name: "assessment-notes", Type: String, Sensitivity: Sensitive, Doc: "Free-text assessment"},
	)
}

// Telecare is a telecare service activation event.
func Telecare() *Schema {
	return MustNew(ClassTelecare, 1, "Telecare service activated for a citizen",
		Field{Name: "patient-id", Type: String, Required: true, Sensitivity: Identifying, Doc: "Regional patient identifier"},
		Field{Name: "device-id", Type: String, Required: true, Sensitivity: Ordinary, Doc: "Installed device identifier"},
		Field{Name: "activation-date", Type: Date, Required: true, Sensitivity: Ordinary, Doc: "Service activation date"},
		Field{Name: "service-level", Type: Code, Sensitivity: Ordinary, Doc: "Contracted level", Codes: []string{"basic", "extended", "full"}},
		Field{Name: "medical-conditions", Type: String, Sensitivity: Sensitive, Doc: "Conditions that motivated the activation"},
	)
}

// FoodDelivery is a meals-at-home service event.
func FoodDelivery() *Schema {
	return MustNew(ClassFoodDelivery, 1, "Meal delivered at home by a service provider",
		Field{Name: "patient-id", Type: String, Required: true, Sensitivity: Identifying, Doc: "Regional patient identifier"},
		Field{Name: "delivery-date", Type: Date, Required: true, Sensitivity: Ordinary, Doc: "Delivery date"},
		Field{Name: "diet", Type: Code, Sensitivity: Sensitive, Doc: "Prescribed diet", Codes: []string{"standard", "diabetic", "hypoproteic", "blended"}},
		Field{Name: "provider-notes", Type: String, Sensitivity: Ordinary, Doc: "Delivery notes"},
	)
}

// Discharge is a hospital discharge letter event.
func Discharge() *Schema {
	return MustNew(ClassDischarge, 1, "Patient discharged from a hospital ward",
		Field{Name: "patient-id", Type: String, Required: true, Sensitivity: Identifying, Doc: "Regional patient identifier"},
		Field{Name: "ward", Type: String, Required: true, Sensitivity: Ordinary, Doc: "Discharging ward"},
		Field{Name: "admission-date", Type: Date, Required: true, Sensitivity: Ordinary, Doc: "Admission date"},
		Field{Name: "discharge-date", Type: Date, Required: true, Sensitivity: Ordinary, Doc: "Discharge date"},
		Field{Name: "diagnosis", Type: String, Sensitivity: Sensitive, Doc: "Primary diagnosis"},
		Field{Name: "therapy", Type: String, Sensitivity: Sensitive, Doc: "Prescribed therapy"},
		Field{Name: "follow-up", Type: String, Sensitivity: Sensitive, Doc: "Follow-up indications for the family doctor"},
	)
}

// Psychology is the psychological analysis report named in §4.
func Psychology() *Schema {
	return MustNew(ClassPsychology, 1, "Report of a psychological analysis",
		Field{Name: "patient-id", Type: String, Required: true, Sensitivity: Identifying, Doc: "Regional patient identifier"},
		Field{Name: "session-date", Type: Date, Required: true, Sensitivity: Ordinary, Doc: "Session date"},
		Field{Name: "psychologist", Type: String, Sensitivity: Ordinary, Doc: "Treating psychologist"},
		Field{Name: "report", Type: String, Sensitivity: Sensitive, Doc: "Full report text"},
		Field{Name: "risk-level", Type: Code, Sensitivity: Sensitive, Doc: "Assessed risk", Codes: []string{"low", "medium", "high"}},
	)
}

// HouseCleaning is a house cleaning assistance event.
func HouseCleaning() *Schema {
	return MustNew(ClassHouseCleaning, 1, "House cleaning service delivered",
		Field{Name: "patient-id", Type: String, Required: true, Sensitivity: Identifying, Doc: "Regional patient identifier"},
		Field{Name: "service-date", Type: Date, Required: true, Sensitivity: Ordinary, Doc: "Service date"},
		Field{Name: "hours", Type: Float, Sensitivity: Ordinary, Doc: "Hours of service"},
		Field{Name: "living-conditions", Type: String, Sensitivity: Sensitive, Doc: "Observed living conditions"},
	)
}

// NursingService is an out-of-hospital nursing intervention.
func NursingService() *Schema {
	return MustNew(ClassNursingService, 1, "Nursing intervention outside the hospital",
		Field{Name: "patient-id", Type: String, Required: true, Sensitivity: Identifying, Doc: "Regional patient identifier"},
		Field{Name: "intervention-date", Type: Date, Required: true, Sensitivity: Ordinary, Doc: "Intervention date"},
		Field{Name: "nurse", Type: String, Sensitivity: Ordinary, Doc: "Intervening nurse"},
		Field{Name: "treatment", Type: String, Sensitivity: Sensitive, Doc: "Administered treatment"},
		Field{Name: "vital-signs", Type: String, Sensitivity: Sensitive, Doc: "Recorded vital signs"},
	)
}

// Domain returns every domain schema, in a stable order.
func Domain() []*Schema {
	return []*Schema{
		HomeCare(), BloodTest(), AutonomyTest(), Telecare(), FoodDelivery(),
		Discharge(), Psychology(), HouseCleaning(), NursingService(),
	}
}
