// Package process implements the care-process monitoring layer that
// motivates the CSS platform (paper §1: e-government projects "monitor,
// control and trace the clinical and assistive processes"; §4: "the
// clinical and assistive processes to be monitored ... capture the
// business processes executed and the bits of data they produce").
//
// A Pathway declares the expected stages of a multi-organization care
// process as an ordered sequence of event classes with deadlines (e.g.
// hospital discharge → home-care activation within 7 days → first nursing
// intervention within 14 days). The Monitor consumes notification
// messages — the only data the privacy architecture routes freely — and
// tracks one instance per (pathway, person), reporting progress, stalls
// and completions. Monitoring thus works exactly on the paper's premise:
// the "visible effects of the business processes captured by data
// events", with no access to sensitive details.
package process

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/event"
)

// Stage is one expected step of a pathway.
type Stage struct {
	// Name labels the stage for reports.
	Name string
	// Class is the event class whose notification completes the stage.
	Class event.ClassID
	// Within bounds the time from the previous stage's completion (from
	// the triggering event for the first stage). Zero means no deadline.
	Within time.Duration
}

// Pathway is a declared care process.
type Pathway struct {
	// Name identifies the pathway.
	Name string
	// Trigger is the event class that opens an instance for a person.
	Trigger event.ClassID
	// Stages are the expected steps after the trigger, in order.
	Stages []Stage
}

// Validate checks structural integrity of the pathway declaration.
func (p *Pathway) Validate() error {
	if p.Name == "" {
		return errors.New("process: pathway without name")
	}
	if err := p.Trigger.Validate(); err != nil {
		return fmt.Errorf("process: pathway %s: %w", p.Name, err)
	}
	if len(p.Stages) == 0 {
		return fmt.Errorf("process: pathway %s has no stages", p.Name)
	}
	for i, s := range p.Stages {
		if s.Name == "" {
			return fmt.Errorf("process: pathway %s: stage %d without name", p.Name, i)
		}
		if err := s.Class.Validate(); err != nil {
			return fmt.Errorf("process: pathway %s stage %s: %w", p.Name, s.Name, err)
		}
		if s.Within < 0 {
			return fmt.Errorf("process: pathway %s stage %s: negative deadline", p.Name, s.Name)
		}
	}
	return nil
}

// State classifies a pathway instance.
type State int

const (
	// Active: the instance progresses within its deadlines.
	Active State = iota
	// Stalled: the next stage's deadline has passed without its event.
	Stalled
	// Completed: every stage occurred in order.
	Completed
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case Completed:
		return "completed"
	case Stalled:
		return "stalled"
	default:
		return "active"
	}
}

// Instance is the monitored progress of one person through one pathway.
type Instance struct {
	// Pathway names the declaration this instance follows.
	Pathway string
	// PersonID is the data subject.
	PersonID string
	// StartedAt is the occurrence time of the triggering event.
	StartedAt time.Time
	// NextStage indexes the awaited stage in the declaration (== number
	// of completed stages).
	NextStage int
	// LastEventAt is the occurrence time of the latest counted event.
	LastEventAt time.Time
	// CompletedAt is set when the instance completes.
	CompletedAt time.Time
	// Deadline is when the awaited stage stalls (zero: no deadline).
	Deadline time.Time
	// Events are the global ids of the counted events, trigger first.
	Events []event.GlobalID
}

// StateAt classifies the instance at the given instant.
func (i *Instance) StateAt(now time.Time) State {
	if !i.CompletedAt.IsZero() {
		return Completed
	}
	if !i.Deadline.IsZero() && now.After(i.Deadline) {
		return Stalled
	}
	return Active
}
