package process

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/schema"
)

// dischargePathway: hospital discharge → home care within 7 days →
// nursing within 14 days of the home-care start.
func dischargePathway() *Pathway {
	return &Pathway{
		Name:    "post-discharge care",
		Trigger: schema.ClassDischarge,
		Stages: []Stage{
			{Name: "home care activated", Class: schema.ClassHomeCare, Within: 7 * 24 * time.Hour},
			{Name: "first nursing visit", Class: schema.ClassNursingService, Within: 14 * 24 * time.Hour},
		},
	}
}

var pt0 = time.Date(2010, 3, 1, 10, 0, 0, 0, time.UTC)

func notif(id string, person string, class event.ClassID, at time.Time) *event.Notification {
	return &event.Notification{
		ID: event.GlobalID(id), Class: class, PersonID: person,
		OccurredAt: at, Producer: "p", SourceID: "s",
	}
}

func TestPathwayValidate(t *testing.T) {
	if err := dischargePathway().Validate(); err != nil {
		t.Fatalf("valid pathway rejected: %v", err)
	}
	cases := []func(*Pathway){
		func(p *Pathway) { p.Name = "" },
		func(p *Pathway) { p.Trigger = "Bad Class" },
		func(p *Pathway) { p.Stages = nil },
		func(p *Pathway) { p.Stages[0].Name = "" },
		func(p *Pathway) { p.Stages[0].Class = "bad class" },
		func(p *Pathway) { p.Stages[0].Within = -time.Hour },
	}
	for i, mutate := range cases {
		p := dischargePathway()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewMonitor(); err == nil {
		t.Error("monitor without pathways accepted")
	}
	if _, err := NewMonitor(dischargePathway(), dischargePathway()); err == nil {
		t.Error("duplicate pathway accepted")
	}
}

func TestHappyPathCompletion(t *testing.T) {
	m, err := NewMonitor(dischargePathway())
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(notif("e1", "P1", schema.ClassDischarge, pt0))
	m.Observe(notif("e2", "P1", schema.ClassHomeCare, pt0.Add(3*24*time.Hour)))
	m.Observe(notif("e3", "P1", schema.ClassNursingService, pt0.Add(10*24*time.Hour)))

	r := m.Snapshot(pt0.Add(11 * 24 * time.Hour))
	if len(r.Completed) != 1 || len(r.Active) != 0 || len(r.Stalled) != 0 {
		t.Fatalf("report = %d/%d/%d", len(r.Active), len(r.Stalled), len(r.Completed))
	}
	c := r.Completed[0]
	if c.PersonID != "P1" || c.NextStage != 2 || len(c.Events) != 3 {
		t.Errorf("completed instance = %+v", c)
	}
	if !c.CompletedAt.Equal(pt0.Add(10 * 24 * time.Hour)) {
		t.Errorf("CompletedAt = %v", c.CompletedAt)
	}
	if c.StateAt(pt0.Add(100*24*time.Hour)) != Completed {
		t.Error("completed instance can stall")
	}
}

func TestStallDetection(t *testing.T) {
	m, _ := NewMonitor(dischargePathway())
	m.Observe(notif("e1", "P1", schema.ClassDischarge, pt0))

	// Within the 7-day window: active.
	if got := m.Stalled(pt0.Add(6 * 24 * time.Hour)); len(got) != 0 {
		t.Errorf("stalled too early: %+v", got)
	}
	// Past it: stalled, awaiting stage 0.
	got := m.Stalled(pt0.Add(8 * 24 * time.Hour))
	if len(got) != 1 || got[0].NextStage != 0 {
		t.Fatalf("stalled = %+v", got)
	}
	// The late event still advances the instance (observational monitor).
	m.Observe(notif("e2", "P1", schema.ClassHomeCare, pt0.Add(9*24*time.Hour)))
	if got := m.Stalled(pt0.Add(10 * 24 * time.Hour)); len(got) != 0 {
		t.Errorf("still stalled after late advance: %+v", got)
	}
	// Second deadline counts from the advancing event.
	if got := m.Stalled(pt0.Add((9 + 15) * 24 * time.Hour)); len(got) != 1 {
		t.Errorf("second-stage stall missed: %+v", got)
	}
}

func TestUnrelatedAndOutOfOrderEvents(t *testing.T) {
	m, _ := NewMonitor(dischargePathway())
	// Nursing before any discharge: no instance, counted unrelated.
	m.Observe(notif("e0", "P1", schema.ClassNursingService, pt0))
	// Blood test: unrelated class.
	m.Observe(notif("e1", "P1", schema.ClassBloodTest, pt0))
	m.Observe(notif("e2", "P1", schema.ClassDischarge, pt0.Add(time.Hour)))
	// Nursing while home care is awaited: does not advance.
	m.Observe(notif("e3", "P1", schema.ClassNursingService, pt0.Add(2*time.Hour)))

	r := m.Snapshot(pt0.Add(3 * time.Hour))
	if len(r.Active) != 1 || r.Active[0].NextStage != 0 {
		t.Fatalf("active = %+v", r.Active)
	}
	if r.Unrelated != 3 {
		t.Errorf("unrelated = %d, want 3", r.Unrelated)
	}
}

func TestInstancesArePerPersonAndPerPathway(t *testing.T) {
	second := &Pathway{
		Name:    "telecare follow-up",
		Trigger: schema.ClassDischarge,
		Stages:  []Stage{{Name: "telecare", Class: schema.ClassTelecare, Within: 30 * 24 * time.Hour}},
	}
	m, err := NewMonitor(dischargePathway(), second)
	if err != nil {
		t.Fatal(err)
	}
	// One discharge opens an instance in BOTH pathways.
	m.Observe(notif("e1", "P1", schema.ClassDischarge, pt0))
	m.Observe(notif("e2", "P2", schema.ClassDischarge, pt0))
	r := m.Snapshot(pt0.Add(time.Hour))
	if len(r.Active) != 4 {
		t.Fatalf("active = %d, want 4 (2 persons × 2 pathways)", len(r.Active))
	}
	// P1 completes telecare only.
	m.Observe(notif("e3", "P1", schema.ClassTelecare, pt0.Add(24*time.Hour)))
	r = m.Snapshot(pt0.Add(2 * 24 * time.Hour))
	if len(r.Completed) != 1 || r.Completed[0].Pathway != "telecare follow-up" {
		t.Errorf("completed = %+v", r.Completed)
	}
	if len(r.Active) != 3 {
		t.Errorf("active = %d", len(r.Active))
	}
}

func TestRetriggerAfterCompletionOpensNewInstance(t *testing.T) {
	p := &Pathway{
		Name:    "short",
		Trigger: schema.ClassDischarge,
		Stages:  []Stage{{Name: "home care", Class: schema.ClassHomeCare}},
	}
	m, _ := NewMonitor(p)
	m.Observe(notif("e1", "P1", schema.ClassDischarge, pt0))
	m.Observe(notif("e2", "P1", schema.ClassHomeCare, pt0.Add(time.Hour)))
	// A second discharge opens a fresh instance.
	m.Observe(notif("e3", "P1", schema.ClassDischarge, pt0.Add(48*time.Hour)))
	r := m.Snapshot(pt0.Add(49 * time.Hour))
	if len(r.Completed) != 1 || len(r.Active) != 1 {
		t.Errorf("report = completed %d, active %d", len(r.Completed), len(r.Active))
	}
	// Zero deadline stage never stalls.
	if got := m.Stalled(pt0.Add(1000 * time.Hour)); len(got) != 0 {
		t.Errorf("deadline-less stage stalled: %+v", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	m, _ := NewMonitor(dischargePathway())
	m.Observe(notif("e1", "P1", schema.ClassDischarge, pt0))
	r := m.Snapshot(pt0)
	r.Active[0].Events[0] = "mutated"
	r2 := m.Snapshot(pt0)
	if r2.Active[0].Events[0] != "e1" {
		t.Error("Snapshot exposes internal state")
	}
}

func TestConcurrentObserve(t *testing.T) {
	m, _ := NewMonitor(dischargePathway())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				person := fmt.Sprintf("P-%d-%d", g, i)
				m.Observe(notif(fmt.Sprintf("d-%d-%d", g, i), person, schema.ClassDischarge, pt0))
				m.Observe(notif(fmt.Sprintf("h-%d-%d", g, i), person, schema.ClassHomeCare, pt0.Add(time.Hour)))
				m.Snapshot(pt0.Add(2 * time.Hour))
			}
		}(g)
	}
	wg.Wait()
	r := m.Snapshot(pt0.Add(2 * time.Hour))
	if len(r.Active) != 400 {
		t.Errorf("active = %d, want 400", len(r.Active))
	}
}
