package process

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/event"
)

// Monitor tracks pathway instances from notification messages. It is
// transport-agnostic: feed it notifications from controller
// subscriptions, index inquiries, or replays. Safe for concurrent use.
//
// Semantics: a trigger event opens a new instance for its person unless
// one is already open (re-triggering while active is counted into the
// open instance only if the trigger class is also the awaited stage).
// An event advances an instance exactly when its class matches the
// awaited stage; out-of-order or unrelated events are counted but do not
// advance (the paper's monitoring is observational, not prescriptive).
type Monitor struct {
	mu        sync.Mutex
	pathways  map[string]*Pathway
	instances map[instanceKey]*Instance
	closedOut []*Instance // completed instances, in completion order

	unrelated uint64 // events that matched no pathway activity
}

type instanceKey struct {
	pathway string
	person  string
}

// NewMonitor creates a monitor for the given pathway declarations.
func NewMonitor(pathways ...*Pathway) (*Monitor, error) {
	m := &Monitor{
		pathways:  make(map[string]*Pathway),
		instances: make(map[instanceKey]*Instance),
	}
	for _, p := range pathways {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if _, dup := m.pathways[p.Name]; dup {
			return nil, fmt.Errorf("process: duplicate pathway %q", p.Name)
		}
		cp := *p
		cp.Stages = append([]Stage(nil), p.Stages...)
		m.pathways[p.Name] = &cp
	}
	if len(m.pathways) == 0 {
		return nil, errors.New("process: no pathways")
	}
	return m, nil
}

// Observe feeds one notification into the monitor.
func (m *Monitor) Observe(n *event.Notification) {
	m.mu.Lock()
	defer m.mu.Unlock()
	touched := false
	for _, p := range m.pathways {
		if m.observeFor(p, n) {
			touched = true
		}
	}
	if !touched {
		m.unrelated++
	}
}

// observeFor applies one notification to one pathway; reports whether it
// affected (opened or advanced) an instance.
func (m *Monitor) observeFor(p *Pathway, n *event.Notification) bool {
	k := instanceKey{p.Name, n.PersonID}
	inst := m.instances[k]

	// Advance an open instance when the event matches the awaited stage.
	if inst != nil {
		stage := p.Stages[inst.NextStage]
		if n.Class != stage.Class {
			return false
		}
		inst.NextStage++
		inst.LastEventAt = n.OccurredAt
		inst.Events = append(inst.Events, n.ID)
		if inst.NextStage == len(p.Stages) {
			inst.CompletedAt = n.OccurredAt
			inst.Deadline = time.Time{}
			m.closedOut = append(m.closedOut, inst)
			delete(m.instances, k)
		} else {
			inst.Deadline = deadlineFor(p.Stages[inst.NextStage], n.OccurredAt)
		}
		return true
	}

	// Open a new instance on the trigger.
	if n.Class != p.Trigger {
		return false
	}
	inst = &Instance{
		Pathway:     p.Name,
		PersonID:    n.PersonID,
		StartedAt:   n.OccurredAt,
		LastEventAt: n.OccurredAt,
		Deadline:    deadlineFor(p.Stages[0], n.OccurredAt),
		Events:      []event.GlobalID{n.ID},
	}
	m.instances[k] = inst
	return true
}

func deadlineFor(s Stage, from time.Time) time.Time {
	if s.Within == 0 {
		return time.Time{}
	}
	return from.Add(s.Within)
}

// Report is a snapshot of the monitor at an instant.
type Report struct {
	At        time.Time
	Active    []Instance
	Stalled   []Instance
	Completed []Instance
	// Unrelated counts observed events that matched no pathway.
	Unrelated uint64
}

// Snapshot classifies every instance at the given instant. Instances are
// sorted by person then pathway for stable reports.
func (m *Monitor) Snapshot(now time.Time) Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := Report{At: now, Unrelated: m.unrelated}
	for _, inst := range m.instances {
		cp := *inst
		cp.Events = append([]event.GlobalID(nil), inst.Events...)
		switch inst.StateAt(now) {
		case Stalled:
			r.Stalled = append(r.Stalled, cp)
		default:
			r.Active = append(r.Active, cp)
		}
	}
	for _, inst := range m.closedOut {
		cp := *inst
		cp.Events = append([]event.GlobalID(nil), inst.Events...)
		r.Completed = append(r.Completed, cp)
	}
	for _, list := range [][]Instance{r.Active, r.Stalled, r.Completed} {
		sort.Slice(list, func(i, j int) bool {
			if list[i].PersonID != list[j].PersonID {
				return list[i].PersonID < list[j].PersonID
			}
			return list[i].Pathway < list[j].Pathway
		})
	}
	return r
}

// Stalled returns the instances whose awaited stage is overdue at now —
// the monitoring alarms a governing body acts on.
func (m *Monitor) Stalled(now time.Time) []Instance {
	return m.Snapshot(now).Stalled
}
