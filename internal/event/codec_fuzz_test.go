package event

import (
	"bytes"
	"testing"
)

// The binary decoders face untrusted network input, so beyond "never
// panic" they must never size an allocation from a claimed length that
// the payload cannot back (length bombs). Each fuzz target asserts both
// properties plus round-trip stability. Seed frames live under
// testdata/fuzz/<Target>/ alongside the f.Add seeds below.

func FuzzBinaryNotification(f *testing.F) {
	good, err := Binary.EncodeNotification(sampleNotification())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])                                                 // truncated mid-field
	f.Add([]byte{0xC5, 0x5F, 0x01, 0x01})                                     // header only
	f.Add([]byte{0xC5, 0x5F, 0x01, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // length bomb
	f.Add([]byte{0xC5, 0x5F, 0x02, 0x01})                                     // future version
	f.Add([]byte("<notification/>"))                                          // XML where binary expected
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		n, err := Binary.DecodeNotification(in)
		if err != nil {
			return
		}
		re, err := Binary.EncodeNotification(n)
		if err != nil {
			t.Fatalf("decoded notification does not re-encode: %v", err)
		}
		again, err := Binary.DecodeNotification(re)
		if err != nil {
			t.Fatalf("re-encoded notification does not decode: %v", err)
		}
		re2, err := Binary.EncodeNotification(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("binary notification encoding is not canonical")
		}
	})
}

func FuzzBinaryDetail(f *testing.F) {
	seed := NewDetail("c.x", "src-1", "prod").Set("a", "1").Set("b", "<&>\"'")
	good, err := Binary.EncodeDetail(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-3]) // truncated inside last field
	// Claimed field count far beyond what the remaining bytes can hold.
	bomb := AppendFrameHeader(nil, FrameDetail)
	bomb = AppendFrameString(bomb, "s")
	bomb = AppendFrameString(bomb, "c.x")
	bomb = AppendFrameString(bomb, "p")
	bomb = append(bomb, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F)
	f.Add(bomb)
	f.Add([]byte{0xC5, 0x5F, 0x01, 0x02})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		d, err := Binary.DecodeDetail(in)
		if err != nil {
			return
		}
		// Over-allocation guard: every decoded field consumed at least two
		// input bytes, so the map can never out-size the input.
		if len(d.Fields) > len(in) {
			t.Fatalf("decoder materialized %d fields from %d input bytes", len(d.Fields), len(in))
		}
		re, err := Binary.EncodeDetail(d)
		if err != nil {
			t.Fatalf("decoded detail does not re-encode: %v", err)
		}
		d2, err := Binary.DecodeDetail(re)
		if err != nil {
			t.Fatalf("re-encoded detail does not decode: %v", err)
		}
		if len(d2.Fields) != len(d.Fields) || d2.Class != d.Class || d2.SourceID != d.SourceID {
			t.Fatalf("round trip unstable: %+v vs %+v", d, d2)
		}
		re2, _ := Binary.EncodeDetail(d2)
		if !bytes.Equal(re, re2) {
			t.Fatal("binary detail encoding is not canonical")
		}
	})
}

func FuzzBinaryDetailRequest(f *testing.F) {
	good, err := Binary.EncodeDetailRequest(&DetailRequest{
		Requester: "municipality", Class: "c.x", EventID: "evt-1",
		Purpose: "care", Trace: "deadbeef00000000",
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:5])
	f.Add([]byte{0xC5, 0x5F, 0x01, 0x03, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		r, err := Binary.DecodeDetailRequest(in)
		if err != nil {
			return
		}
		re, err := Binary.EncodeDetailRequest(r)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		r2, err := Binary.DecodeDetailRequest(re)
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if r2.Requester != r.Requester || r2.EventID != r.EventID || !r2.At.Equal(r.At) {
			t.Fatalf("round trip unstable: %+v vs %+v", r, r2)
		}
	})
}
