package event

import (
	"encoding/xml"
	"sort"
)

// detailXML is the wire form of a Detail message. Field values are
// rendered as a stable, name-sorted sequence of <field> elements so that
// the same detail always serializes to the same bytes.
type detailXML struct {
	XMLName  xml.Name   `xml:"eventDetails"`
	SourceID SourceID   `xml:"sourceId,attr"`
	Class    ClassID    `xml:"class,attr"`
	Producer ProducerID `xml:"producer,attr"`
	Fields   []fieldXML `xml:"field"`
}

type fieldXML struct {
	Name  FieldName `xml:"name,attr"`
	Value string    `xml:",chardata"`
}

// MarshalXML implements xml.Marshaler with deterministic field ordering.
func (d *Detail) MarshalXML(e *xml.Encoder, start xml.StartElement) error {
	w := detailXML{
		SourceID: d.SourceID,
		Class:    d.Class,
		Producer: d.Producer,
		Fields:   make([]fieldXML, 0, len(d.Fields)),
	}
	for name, value := range d.Fields {
		w.Fields = append(w.Fields, fieldXML{Name: name, Value: value})
	}
	sort.Slice(w.Fields, func(i, j int) bool { return w.Fields[i].Name < w.Fields[j].Name })
	return e.EncodeElement(w, xml.StartElement{Name: xml.Name{Local: "eventDetails"}})
}

// UnmarshalXML implements xml.Unmarshaler.
func (d *Detail) UnmarshalXML(dec *xml.Decoder, start xml.StartElement) error {
	var w detailXML
	if err := dec.DecodeElement(&w, &start); err != nil {
		return err
	}
	d.SourceID = w.SourceID
	d.Class = w.Class
	d.Producer = w.Producer
	d.Fields = make(map[FieldName]string, len(w.Fields))
	for _, f := range w.Fields {
		d.Fields[f.Name] = f.Value
	}
	return nil
}

// EncodeDetail serializes a detail message to its XML wire form.
func EncodeDetail(d *Detail) ([]byte, error) {
	return xml.Marshal(d)
}

// DecodeDetail parses a detail message from its XML wire form.
func DecodeDetail(data []byte) (*Detail, error) {
	var d Detail
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// EncodeNotification serializes a notification to its XML wire form.
func EncodeNotification(n *Notification) ([]byte, error) {
	type wire Notification // strip methods; plain struct tags apply
	return xml.Marshal((*wire)(n))
}

// DecodeNotification parses a notification from its XML wire form.
func DecodeNotification(data []byte) (*Notification, error) {
	type wire Notification
	var w wire
	if err := xml.Unmarshal(data, &w); err != nil {
		return nil, err
	}
	n := Notification(w)
	return &n, nil
}

// EncodeDetailRequest serializes a detail request to its XML wire form.
func EncodeDetailRequest(r *DetailRequest) ([]byte, error) {
	return xml.Marshal(r)
}

// DecodeDetailRequest parses a detail request from its XML wire form.
func DecodeDetailRequest(data []byte) (*DetailRequest, error) {
	var r DetailRequest
	if err := xml.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// xmlCodec adapts the package-level XML encode/decode functions to the
// Codec interface. It lives in this file so that codec.go — part of the
// binary hot path — never imports encoding/xml (enforced by lint-hotpath).
type xmlCodec struct{}

func (xmlCodec) Name() string        { return "xml" }
func (xmlCodec) ContentType() string { return ContentTypeXML }

func (xmlCodec) EncodeNotification(n *Notification) ([]byte, error) { return EncodeNotification(n) }
func (xmlCodec) DecodeNotification(data []byte) (*Notification, error) {
	return DecodeNotification(data)
}
func (xmlCodec) EncodeDetail(d *Detail) ([]byte, error)    { return EncodeDetail(d) }
func (xmlCodec) DecodeDetail(data []byte) (*Detail, error) { return DecodeDetail(data) }
func (xmlCodec) EncodeDetailRequest(r *DetailRequest) ([]byte, error) {
	return EncodeDetailRequest(r)
}
func (xmlCodec) DecodeDetailRequest(data []byte) (*DetailRequest, error) {
	return DecodeDetailRequest(data)
}
