// Binary wire codec and the Codec abstraction over wire formats.
//
// The platform's canonical wire format is XML (paper §5: notifications and
// event details travel as XML documents between web services). XML keeps
// the paper-fidelity interface for external integrations, but its encoder
// dominates the controller's publish path. This file adds a compact
// length-prefixed binary framing ("application/x-css-frame") that clients
// negotiate per request via standard HTTP content negotiation; both
// formats implement the same Codec interface so core and transport are
// format-agnostic.
//
// Frame layout (all integers are unsigned varints unless noted):
//
//	0xC5 0x5F          magic
//	0x01               frame version
//	type               one FrameType byte
//	...                type-specific fields, in fixed order
//
// Strings are uvarint(len) + raw bytes. Times are a presence byte
// (0 = zero time) followed, when present, by the zigzag-varint UnixNano.
// Maps are uvarint(count) + count (name, value) string pairs, written in
// sorted name order so identical payloads yield identical bytes (matching
// the deterministic XML form).
//
// The decoder is hardened against hostile input: every claimed length is
// validated against the bytes actually remaining before any allocation is
// sized from it, so truncated frames and length-bombs fail cleanly without
// over-allocating (fuzzed in codec_fuzz_test.go).
package event

import (
	"encoding/binary"
	"errors"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Content types exchanged in Accept / Content-Type headers.
const (
	// ContentTypeXML is the default, paper-faithful XML wire format.
	ContentTypeXML = "application/xml"
	// ContentTypeBinary is the negotiated compact binary framing.
	ContentTypeBinary = "application/x-css-frame"
)

// Codec serializes the three wire message kinds that travel between
// producers, the data controller and consumers. Implementations must be
// safe for concurrent use.
type Codec interface {
	// Name is the short label used in flags, bench output and logs
	// ("xml" or "binary").
	Name() string
	// ContentType is the HTTP media type announced for this codec.
	ContentType() string

	EncodeNotification(*Notification) ([]byte, error)
	DecodeNotification([]byte) (*Notification, error)
	EncodeDetail(*Detail) ([]byte, error)
	DecodeDetail([]byte) (*Detail, error)
	EncodeDetailRequest(*DetailRequest) ([]byte, error)
	DecodeDetailRequest([]byte) (*DetailRequest, error)
}

// CodecByName resolves a -codec flag value.
func CodecByName(name string) (Codec, error) {
	switch name {
	case "", "xml":
		return XML, nil
	case "binary":
		return Binary, nil
	}
	return nil, errors.New("event: unknown codec " + strconv.Quote(name) + " (want xml or binary)")
}

// FrameType tags the payload kind of a binary frame. Types 1-3 are the
// event-layer messages; the transport layer claims higher values for its
// control envelopes (faults, publish/subscribe responses).
type FrameType byte

const (
	FrameNotification    FrameType = 1
	FrameDetail          FrameType = 2
	FrameDetailRequest   FrameType = 3
	FrameFault           FrameType = 4
	FramePublishResponse FrameType = 5
	FrameSubscribeReq    FrameType = 6
	FrameSubscribeResp   FrameType = 7
)

const (
	frameMagic0  = 0xC5
	frameMagic1  = 0x5F
	frameVersion = 0x01
	// FrameHeaderLen is the fixed prefix length of every binary frame.
	FrameHeaderLen = 4
)

var (
	errFrameShort   = errors.New("event: binary frame truncated")
	errFrameMagic   = errors.New("event: not a css binary frame (bad magic)")
	errFrameVersion = errors.New("event: unsupported binary frame version")
	errFrameLength  = errors.New("event: binary frame length exceeds payload")
	errFrameVarint  = errors.New("event: binary frame has malformed varint")
	errFrameBomb    = errors.New("event: binary frame claims more entries than payload can hold")
	errFrameTrail   = errors.New("event: binary frame has trailing garbage")
)

type frameTypeError struct{ want, got FrameType }

func (e *frameTypeError) Error() string {
	return "event: binary frame type mismatch: want " +
		strconv.Itoa(int(e.want)) + ", got " + strconv.Itoa(int(e.got))
}

// IsBinaryFrame reports whether data starts with the binary frame magic.
// Transport uses it to sniff fault bodies when a middleware answered in a
// format other than the one the client negotiated.
func IsBinaryFrame(data []byte) bool {
	return len(data) >= 2 && data[0] == frameMagic0 && data[1] == frameMagic1
}

// AppendFrameHeader appends the 4-byte frame prefix for the given type.
func AppendFrameHeader(dst []byte, t FrameType) []byte {
	return append(dst, frameMagic0, frameMagic1, frameVersion, byte(t))
}

// FrameBody validates the frame prefix and returns the payload following
// it. It fails if the frame is not of the wanted type.
func FrameBody(data []byte, want FrameType) ([]byte, error) {
	if len(data) < FrameHeaderLen {
		return nil, errFrameShort
	}
	if data[0] != frameMagic0 || data[1] != frameMagic1 {
		return nil, errFrameMagic
	}
	if data[2] != frameVersion {
		return nil, errFrameVersion
	}
	if FrameType(data[3]) != want {
		return nil, &frameTypeError{want: want, got: FrameType(data[3])}
	}
	return data[FrameHeaderLen:], nil
}

// uvarintLen returns the encoded size of x as an unsigned varint.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// frameStringLen returns the encoded size of a string field.
func frameStringLen(s string) int {
	return uvarintLen(uint64(len(s))) + len(s)
}

// AppendFrameString appends a length-prefixed string field.
func AppendFrameString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// FrameString decodes a length-prefixed string field, returning the value
// and the remaining payload. The claimed length is checked against the
// bytes actually present before the string is materialized.
func FrameString(p []byte) (string, []byte, error) {
	l, n := binary.Uvarint(p)
	if n <= 0 {
		return "", nil, errFrameVarint
	}
	rest := p[n:]
	if l > uint64(len(rest)) {
		return "", nil, errFrameLength
	}
	return string(rest[:l]), rest[l:], nil
}

// frameTimeLen returns the encoded size of a time field.
func frameTimeLen(t time.Time) int {
	if t.IsZero() {
		return 1
	}
	v := t.UnixNano()
	return 1 + uvarintLen(uint64((v<<1)^(v>>63))) // zigzag, as AppendVarint does
}

// AppendFrameTime appends a time field: presence byte then UnixNano.
// The zero time is preserved exactly (a bare 0 byte); non-zero times
// round-trip with nanosecond precision in the UTC location.
func AppendFrameTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return binary.AppendVarint(dst, t.UnixNano())
}

// FrameTime decodes a time field written by AppendFrameTime.
func FrameTime(p []byte) (time.Time, []byte, error) {
	if len(p) < 1 {
		return time.Time{}, nil, errFrameShort
	}
	present, rest := p[0], p[1:]
	switch present {
	case 0:
		return time.Time{}, rest, nil
	case 1:
		v, n := binary.Varint(rest)
		if n <= 0 {
			return time.Time{}, nil, errFrameVarint
		}
		return time.Unix(0, v).UTC(), rest[n:], nil
	}
	return time.Time{}, nil, errors.New("event: binary frame has invalid time presence byte")
}

// XML is the default codec: the paper-faithful XML wire format.
var XML Codec = xmlCodec{}

// Binary is the negotiated compact binary framing codec.
var Binary Codec = binaryCodec{}

type binaryCodec struct{}

func (binaryCodec) Name() string        { return "binary" }
func (binaryCodec) ContentType() string { return ContentTypeBinary }

// EncodeNotification writes a notification frame in exactly one
// allocation: the frame size is computed up front and the buffer is
// filled by appends that never grow it.
func (binaryCodec) EncodeNotification(n *Notification) ([]byte, error) {
	size := FrameHeaderLen +
		frameStringLen(string(n.ID)) +
		frameStringLen(n.Trace) +
		frameStringLen(string(n.SourceID)) +
		frameStringLen(string(n.Class)) +
		frameStringLen(n.PersonID) +
		frameStringLen(n.Summary) +
		frameStringLen(string(n.Producer)) +
		frameTimeLen(n.OccurredAt) +
		frameTimeLen(n.PublishedAt)
	dst := make([]byte, 0, size)
	dst = AppendFrameHeader(dst, FrameNotification)
	dst = AppendFrameString(dst, string(n.ID))
	dst = AppendFrameString(dst, n.Trace)
	dst = AppendFrameString(dst, string(n.SourceID))
	dst = AppendFrameString(dst, string(n.Class))
	dst = AppendFrameString(dst, n.PersonID)
	dst = AppendFrameString(dst, n.Summary)
	dst = AppendFrameString(dst, string(n.Producer))
	dst = AppendFrameTime(dst, n.OccurredAt)
	dst = AppendFrameTime(dst, n.PublishedAt)
	return dst, nil
}

func (binaryCodec) DecodeNotification(data []byte) (*Notification, error) {
	p, err := FrameBody(data, FrameNotification)
	if err != nil {
		return nil, err
	}
	n := &Notification{}
	var s string
	if s, p, err = FrameString(p); err != nil {
		return nil, err
	}
	n.ID = GlobalID(s)
	if n.Trace, p, err = FrameString(p); err != nil {
		return nil, err
	}
	if s, p, err = FrameString(p); err != nil {
		return nil, err
	}
	n.SourceID = SourceID(s)
	if s, p, err = FrameString(p); err != nil {
		return nil, err
	}
	n.Class = ClassID(s)
	if n.PersonID, p, err = FrameString(p); err != nil {
		return nil, err
	}
	if n.Summary, p, err = FrameString(p); err != nil {
		return nil, err
	}
	if s, p, err = FrameString(p); err != nil {
		return nil, err
	}
	n.Producer = ProducerID(s)
	if n.OccurredAt, p, err = FrameTime(p); err != nil {
		return nil, err
	}
	if n.PublishedAt, p, err = FrameTime(p); err != nil {
		return nil, err
	}
	if len(p) != 0 {
		return nil, errFrameTrail
	}
	return n, nil
}

// fieldNamesPool recycles the scratch slice used to sort detail field
// names during encode, so steady-state detail encoding does not allocate
// for the ordering pass.
var fieldNamesPool = sync.Pool{
	New: func() any { s := make([]FieldName, 0, 16); return &s },
}

func (binaryCodec) EncodeDetail(d *Detail) ([]byte, error) {
	np := fieldNamesPool.Get().(*[]FieldName)
	names := (*np)[:0]
	for f := range d.Fields {
		names = append(names, f)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })

	size := FrameHeaderLen +
		frameStringLen(string(d.SourceID)) +
		frameStringLen(string(d.Class)) +
		frameStringLen(string(d.Producer)) +
		uvarintLen(uint64(len(names)))
	for _, f := range names {
		size += frameStringLen(string(f)) + frameStringLen(d.Fields[f])
	}
	dst := make([]byte, 0, size)
	dst = AppendFrameHeader(dst, FrameDetail)
	dst = AppendFrameString(dst, string(d.SourceID))
	dst = AppendFrameString(dst, string(d.Class))
	dst = AppendFrameString(dst, string(d.Producer))
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, f := range names {
		dst = AppendFrameString(dst, string(f))
		dst = AppendFrameString(dst, d.Fields[f])
	}
	*np = names[:0]
	fieldNamesPool.Put(np)
	return dst, nil
}

func (binaryCodec) DecodeDetail(data []byte) (*Detail, error) {
	p, err := FrameBody(data, FrameDetail)
	if err != nil {
		return nil, err
	}
	d := &Detail{}
	var s string
	if s, p, err = FrameString(p); err != nil {
		return nil, err
	}
	d.SourceID = SourceID(s)
	if s, p, err = FrameString(p); err != nil {
		return nil, err
	}
	d.Class = ClassID(s)
	if s, p, err = FrameString(p); err != nil {
		return nil, err
	}
	d.Producer = ProducerID(s)
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, errFrameVarint
	}
	p = p[n:]
	// Each field pair needs at least two bytes (two zero-length strings),
	// so a count beyond len(p)/2 cannot be satisfied: reject it before
	// sizing the map from attacker-controlled input.
	if count > uint64(len(p))/2 {
		return nil, errFrameBomb
	}
	d.Fields = make(map[FieldName]string, count)
	for i := uint64(0); i < count; i++ {
		var name, value string
		if name, p, err = FrameString(p); err != nil {
			return nil, err
		}
		if value, p, err = FrameString(p); err != nil {
			return nil, err
		}
		d.Fields[FieldName(name)] = value
	}
	if len(p) != 0 {
		return nil, errFrameTrail
	}
	return d, nil
}

func (binaryCodec) EncodeDetailRequest(r *DetailRequest) ([]byte, error) {
	size := FrameHeaderLen +
		frameStringLen(string(r.Requester)) +
		frameStringLen(string(r.Class)) +
		frameStringLen(string(r.EventID)) +
		frameStringLen(string(r.Purpose)) +
		frameStringLen(r.Trace) +
		frameTimeLen(r.At)
	dst := make([]byte, 0, size)
	dst = AppendFrameHeader(dst, FrameDetailRequest)
	dst = AppendFrameString(dst, string(r.Requester))
	dst = AppendFrameString(dst, string(r.Class))
	dst = AppendFrameString(dst, string(r.EventID))
	dst = AppendFrameString(dst, string(r.Purpose))
	dst = AppendFrameString(dst, r.Trace)
	dst = AppendFrameTime(dst, r.At)
	return dst, nil
}

func (binaryCodec) DecodeDetailRequest(data []byte) (*DetailRequest, error) {
	p, err := FrameBody(data, FrameDetailRequest)
	if err != nil {
		return nil, err
	}
	r := &DetailRequest{}
	var s string
	if s, p, err = FrameString(p); err != nil {
		return nil, err
	}
	r.Requester = Actor(s)
	if s, p, err = FrameString(p); err != nil {
		return nil, err
	}
	r.Class = ClassID(s)
	if s, p, err = FrameString(p); err != nil {
		return nil, err
	}
	r.EventID = GlobalID(s)
	if s, p, err = FrameString(p); err != nil {
		return nil, err
	}
	r.Purpose = Purpose(s)
	if r.Trace, p, err = FrameString(p); err != nil {
		return nil, err
	}
	if r.At, p, err = FrameTime(p); err != nil {
		return nil, err
	}
	if len(p) != 0 {
		return nil, errFrameTrail
	}
	return r, nil
}
