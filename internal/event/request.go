package event

import "time"

// DetailRequest is a consumer's request for the details of an event it
// was notified about. It corresponds to r = {A_r, τ_e, eID, s} of
// Algorithm 1: the requesting actor, the event class, the global event
// identifier taken from a notification, and an explicitly stated purpose
// of use. The notification is a pre-requisite: only consumers that were
// notified (or found the event through an authorized index inquiry) know
// the global ID needed to issue the request.
type DetailRequest struct {
	// Requester is the actor asking for the details.
	Requester Actor `xml:"requester"`
	// Class is the event class τ_e of the requested details.
	Class ClassID `xml:"class"`
	// EventID is the controller-assigned global identifier of the event.
	EventID GlobalID `xml:"eventId"`
	// Purpose is the declared purpose of use.
	Purpose Purpose `xml:"purpose"`
	// At is the logical time of the request; the zero value means "now".
	// Policies with validity windows are evaluated against this instant.
	At time.Time `xml:"at,omitempty"`
	// Trace is the correlation identifier of the request flow. Consumers
	// that quote the trace of the originating notification correlate the
	// two phases of the interaction; with an empty trace the controller
	// mints a fresh one at resolution time. Either way every audit
	// record, PDP span and gateway fetch of the request carries it.
	Trace string `xml:"trace,attr,omitempty"`
}

// Validate checks the structural integrity of a detail request.
func (r *DetailRequest) Validate() error {
	if err := r.Requester.Validate(); err != nil {
		return err
	}
	if err := r.Class.Validate(); err != nil {
		return err
	}
	if r.EventID == "" {
		return errValue("event: detail request missing event id")
	}
	return r.Purpose.Validate()
}

// Decision is the outcome of an authorization evaluation.
type Decision int

const (
	// Deny refuses the request. It is the default (deny-by-default,
	// paper §5.1): unless permitted by some privacy policy an event
	// details cannot be accessed by any subject.
	Deny Decision = iota
	// Permit authorizes the request for the fields obliged by the policy.
	Permit
)

// String returns the XACML-style name of the decision.
func (d Decision) String() string {
	if d == Permit {
		return "Permit"
	}
	return "Deny"
}

type errValue string

func (e errValue) Error() string { return string(e) }
