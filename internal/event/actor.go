package event

import (
	"errors"
	"fmt"
	"strings"
)

// Actor identifies a data consumer subject as a path reflecting the
// hierarchical structure of the organization (paper §5.1): the top-level
// organization possibly followed by department segments, separated by
// slashes. Examples:
//
//	"hospital-s-maria"
//	"hospital-s-maria/laboratory"
//	"national-governance/statistics"
type Actor string

// Validate reports whether the actor path is well formed.
func (a Actor) Validate() error {
	if a == "" {
		return errors.New("event: empty actor")
	}
	for _, seg := range strings.Split(string(a), "/") {
		if seg == "" {
			return fmt.Errorf("event: actor %q has an empty path segment", a)
		}
	}
	return nil
}

// Organization returns the top-level organization segment of the actor.
func (a Actor) Organization() string {
	s := string(a)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i]
	}
	return s
}

// Contains reports whether other falls under a in the organizational
// hierarchy: a == other, or a is a proper ancestor (path prefix on a
// segment boundary). A policy granted to an organization therefore covers
// all of its departments, while a department-level grant does not extend
// to siblings or to the parent.
func (a Actor) Contains(other Actor) bool {
	if a == other {
		return true
	}
	prefix := string(a) + "/"
	return strings.HasPrefix(string(other), prefix)
}

// Purpose is an explicitly stated purpose of use accompanying every
// request for details (paper §5.1: in our architecture an action
// corresponds to a purpose of use).
type Purpose string

// Well-known purposes used across the social and health scenario.
const (
	// PurposeHealthcareTreatment: healthcare treatment provisioning.
	PurposeHealthcareTreatment Purpose = "healthcare-treatment"
	// PurposeStatisticalAnalysis: statistical analysis (e.g. by the
	// statistics department of the national governance).
	PurposeStatisticalAnalysis Purpose = "statistical-analysis"
	// PurposeAdministration: administrative and reimbursement processing.
	PurposeAdministration Purpose = "administration"
	// PurposeSocialAssistance: socio-assistive service provisioning.
	PurposeSocialAssistance Purpose = "social-assistance"
	// PurposeAudit: auditing inquiry by the privacy guarantor.
	PurposeAudit Purpose = "audit"
)

// Validate reports whether the purpose is well formed (non-empty).
func (p Purpose) Validate() error {
	if p == "" {
		return errors.New("event: empty purpose")
	}
	return nil
}
