package event

import (
	"bytes"
	"testing"
)

// FuzzDecodeDetail: arbitrary bytes must never panic the decoder, and
// anything that decodes must re-encode/decode stably.
func FuzzDecodeDetail(f *testing.F) {
	seed := NewDetail("c.x", "src-1", "prod").Set("a", "1").Set("b", "<&>\"'")
	data, err := EncodeDetail(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(`<eventDetails sourceId="s" class="c.x" producer="p"><field name="f">v</field></eventDetails>`))
	f.Add([]byte("not xml"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, in []byte) {
		d, err := DecodeDetail(in)
		if err != nil {
			return
		}
		re, err := EncodeDetail(d)
		if err != nil {
			t.Fatalf("decoded detail does not re-encode: %v", err)
		}
		d2, err := DecodeDetail(re)
		if err != nil {
			t.Fatalf("re-encoded detail does not decode: %v", err)
		}
		if len(d2.Fields) != len(d.Fields) || d2.Class != d.Class || d2.SourceID != d.SourceID {
			t.Fatalf("round trip unstable: %+v vs %+v", d, d2)
		}
		re2, _ := EncodeDetail(d2)
		if !bytes.Equal(re, re2) {
			t.Fatal("second encode differs (non-canonical)")
		}
	})
}

// FuzzDecodeNotification: no panics; decodable inputs round-trip.
func FuzzDecodeNotification(f *testing.F) {
	n := &Notification{
		ID: "evt-1", SourceID: "s", Class: "c.x", PersonID: "P",
		Summary: "s", Producer: "p",
	}
	data, err := EncodeNotification(n)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte("<Notification><id>x</id></Notification>"))
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := DecodeNotification(in)
		if err != nil {
			return
		}
		re, err := EncodeNotification(got)
		if err != nil {
			t.Fatalf("decoded notification does not re-encode: %v", err)
		}
		again, err := DecodeNotification(re)
		if err != nil {
			t.Fatalf("re-encoded notification does not decode: %v", err)
		}
		if *again != *got {
			t.Fatalf("round trip unstable: %+v vs %+v", got, again)
		}
	})
}
