package event

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomFieldNames draws a small universe of field names.
func randomFieldNames(r *rand.Rand, n int) []FieldName {
	names := make([]FieldName, n)
	for i := range names {
		names[i] = FieldName([]byte{'f', byte('a' + r.Intn(8)), byte('0' + r.Intn(10))})
	}
	return names
}

func randomDetail(r *rand.Rand) *Detail {
	d := NewDetail("c.x", "s", "p")
	for _, f := range randomFieldNames(r, 1+r.Intn(12)) {
		d.Set(f, string(rune('a'+r.Intn(26))))
	}
	return d
}

// Property: Filter(allowed) always yields a detail that is privacy safe
// for the allowed set (Definition 4 holds after Algorithm 2 parsing).
func TestQuickFilterIsPrivacySafe(t *testing.T) {
	f := func(seed int64, k uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDetail(r)
		allowed := randomFieldNames(r, int(k%10))
		return d.Filter(allowed).ExposesOnly(allowed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Filter is idempotent — filtering twice with the same allowed
// set equals filtering once.
func TestQuickFilterIdempotent(t *testing.T) {
	f := func(seed int64, k uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDetail(r)
		allowed := randomFieldNames(r, int(k%10))
		once := d.Filter(allowed)
		twice := once.Filter(allowed)
		if len(once.Fields) != len(twice.Fields) {
			return false
		}
		for k, v := range once.Fields {
			if twice.Fields[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Filter never invents fields and never changes values.
func TestQuickFilterSubset(t *testing.T) {
	f := func(seed int64, k uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDetail(r)
		allowed := randomFieldNames(r, int(k%10))
		filtered := d.Filter(allowed)
		for name, v := range filtered.Fields {
			orig, ok := d.Fields[name]
			if !ok || orig != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: detail XML encoding round-trips for arbitrary printable values.
func TestQuickDetailXMLRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDetail(r)
		data, err := EncodeDetail(d)
		if err != nil {
			return false
		}
		got, err := DecodeDetail(data)
		if err != nil {
			return false
		}
		if len(got.Fields) != len(d.Fields) {
			return false
		}
		for k, v := range d.Fields {
			if got.Fields[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Contains is reflexive and antisymmetric on distinct actors.
func TestQuickActorContains(t *testing.T) {
	segs := []string{"a", "b", "c"}
	randActor := func(r *rand.Rand) Actor {
		n := 1 + r.Intn(3)
		s := segs[r.Intn(len(segs))]
		for i := 1; i < n; i++ {
			s += "/" + segs[r.Intn(len(segs))]
		}
		return Actor(s)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randActor(r), randActor(r)
		if !a.Contains(a) {
			return false
		}
		if a != b && a.Contains(b) && b.Contains(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
