package event

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleNotification() *Notification {
	return &Notification{
		ID:          "evt-0123456789abcdef",
		Trace:       "4bf92f3577b34da6",
		SourceID:    "lab-55",
		Class:       "hospital.blood-test",
		PersonID:    "PRS-1",
		Summary:     "blood test completed <&> \"quoted\"",
		OccurredAt:  time.Date(2026, 8, 7, 10, 30, 0, 123456789, time.UTC),
		Producer:    "hospital",
		PublishedAt: time.Date(2026, 8, 7, 10, 30, 1, 0, time.UTC),
	}
}

func TestBinaryNotificationRoundTrip(t *testing.T) {
	cases := []*Notification{
		sampleNotification(),
		{}, // all zero values
		{Class: "a.b", PersonID: "P", OccurredAt: time.Unix(0, 1).UTC()},
	}
	for _, n := range cases {
		data, err := Binary.EncodeNotification(n)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if !IsBinaryFrame(data) {
			t.Fatal("encoded frame does not carry the binary magic")
		}
		got, err := Binary.DecodeNotification(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.ID != n.ID || got.Trace != n.Trace || got.SourceID != n.SourceID ||
			got.Class != n.Class || got.PersonID != n.PersonID || got.Summary != n.Summary ||
			got.Producer != n.Producer {
			t.Fatalf("round trip mismatch: %+v vs %+v", n, got)
		}
		if !got.OccurredAt.Equal(n.OccurredAt) || !got.PublishedAt.Equal(n.PublishedAt) {
			t.Fatalf("time round trip mismatch: %v/%v vs %v/%v",
				n.OccurredAt, n.PublishedAt, got.OccurredAt, got.PublishedAt)
		}
	}
}

func TestBinaryEncodeExactSize(t *testing.T) {
	// The hot-path encoder sizes its buffer up front; appends must never
	// grow it (that would mean a second allocation per encode).
	data, err := Binary.EncodeNotification(sampleNotification())
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != cap(data) {
		t.Fatalf("encode buffer resized: len %d cap %d", len(data), cap(data))
	}
}

func TestBinaryNotificationEncodeAllocs(t *testing.T) {
	n := sampleNotification()
	avg := testing.AllocsPerRun(200, func() {
		if _, err := Binary.EncodeNotification(n); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Fatalf("EncodeNotification allocates %.1f times per op, want <= 1 (the frame itself)", avg)
	}
}

func TestBinaryDetailRoundTrip(t *testing.T) {
	cases := []*Detail{
		NewDetail("hospital.blood-test", "lab-55", "hospital").
			Set("result", "negative").Set("unit", "mg/dL").Set("note", "<&>\"'"),
		NewDetail("a.b", "s", "p"),                   // empty field map
		{SourceID: "s", Class: "a.b", Producer: "p"}, // nil field map
	}
	for _, d := range cases {
		data, err := Binary.EncodeDetail(d)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := Binary.DecodeDetail(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.SourceID != d.SourceID || got.Class != d.Class || got.Producer != d.Producer {
			t.Fatalf("header mismatch: %+v vs %+v", d, got)
		}
		if len(got.Fields) != len(d.Fields) {
			t.Fatalf("field count mismatch: %d vs %d", len(d.Fields), len(got.Fields))
		}
		for k, v := range d.Fields {
			if got.Fields[k] != v {
				t.Fatalf("field %q mismatch: %q vs %q", k, v, got.Fields[k])
			}
		}
	}
}

func TestBinaryDetailDeterministic(t *testing.T) {
	d := NewDetail("a.b", "s", "p").Set("z", "1").Set("a", "2").Set("m", "3")
	first, err := Binary.EncodeDetail(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		again, err := Binary.EncodeDetail(d.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatal("detail encoding is not canonical across encodes")
		}
	}
}

func TestBinaryDetailRequestRoundTrip(t *testing.T) {
	cases := []*DetailRequest{
		{
			Requester: "municipality", Class: "hospital.blood-test",
			EventID: "evt-1", Purpose: "social-assistance",
			At:    time.Date(2026, 1, 2, 3, 4, 5, 6, time.UTC),
			Trace: "deadbeef00000000",
		},
		{}, // zero values, zero At must survive
	}
	for _, r := range cases {
		data, err := Binary.EncodeDetailRequest(r)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := Binary.DecodeDetailRequest(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Requester != r.Requester || got.Class != r.Class ||
			got.EventID != r.EventID || got.Purpose != r.Purpose || got.Trace != r.Trace {
			t.Fatalf("round trip mismatch: %+v vs %+v", r, got)
		}
		if !got.At.Equal(r.At) || got.At.IsZero() != r.At.IsZero() {
			t.Fatalf("At mismatch: %v vs %v", r.At, got.At)
		}
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	good, err := Binary.EncodeNotification(sampleNotification())
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation of a valid frame must fail cleanly.
	for i := 0; i < len(good); i++ {
		if _, err := Binary.DecodeNotification(good[:i]); err == nil {
			t.Fatalf("truncated frame of %d bytes decoded without error", i)
		}
	}
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'X'
		if _, err := Binary.DecodeNotification(bad); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[2] = 0x7f
		if _, err := Binary.DecodeNotification(bad); err == nil {
			t.Fatal("unknown version accepted")
		}
	})
	t.Run("wrong type", func(t *testing.T) {
		if _, err := Binary.DecodeDetail(good); err == nil {
			t.Fatal("notification frame accepted as detail")
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := Binary.DecodeNotification(append(append([]byte(nil), good...), 0xFF)); err == nil {
			t.Fatal("trailing garbage accepted")
		}
	})
	t.Run("length bomb string", func(t *testing.T) {
		// A frame whose first string claims 2^40 bytes.
		bomb := AppendFrameHeader(nil, FrameNotification)
		bomb = append(bomb, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20) // uvarint 2^40
		if _, err := Binary.DecodeNotification(bomb); err == nil {
			t.Fatal("length-bomb string accepted")
		}
	})
	t.Run("length bomb map", func(t *testing.T) {
		bomb := AppendFrameHeader(nil, FrameDetail)
		bomb = AppendFrameString(bomb, "s")
		bomb = AppendFrameString(bomb, "a.b")
		bomb = AppendFrameString(bomb, "p")
		bomb = append(bomb, 0x80, 0x80, 0x80, 0x80, 0x20) // uvarint 2^33 fields
		if _, err := Binary.DecodeDetail(bomb); err == nil {
			t.Fatal("length-bomb field count accepted")
		}
	})
}

func TestCodecByName(t *testing.T) {
	for name, want := range map[string]Codec{"": XML, "xml": XML, "binary": Binary} {
		c, err := CodecByName(name)
		if err != nil {
			t.Fatalf("CodecByName(%q): %v", name, err)
		}
		if c != want {
			t.Fatalf("CodecByName(%q) = %v, want %v", name, c.Name(), want.Name())
		}
	}
	if _, err := CodecByName("protobuf"); err == nil {
		t.Fatal("unknown codec name accepted")
	}
}

func TestCodecContentTypes(t *testing.T) {
	if XML.ContentType() != "application/xml" || XML.Name() != "xml" {
		t.Fatalf("xml codec identity wrong: %s %s", XML.Name(), XML.ContentType())
	}
	if Binary.ContentType() != "application/x-css-frame" || Binary.Name() != "binary" {
		t.Fatalf("binary codec identity wrong: %s %s", Binary.Name(), Binary.ContentType())
	}
}

func TestXMLCodecMatchesPackageFunctions(t *testing.T) {
	n := sampleNotification()
	viaCodec, err := XML.EncodeNotification(n)
	if err != nil {
		t.Fatal(err)
	}
	viaFunc, err := EncodeNotification(n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaCodec, viaFunc) {
		t.Fatal("XML codec and EncodeNotification disagree")
	}
	if !strings.HasPrefix(string(viaCodec), "<") {
		t.Fatal("XML codec did not produce XML")
	}
	r := &DetailRequest{Requester: "a", Class: "c.x", EventID: "evt-1", Purpose: "care"}
	data, err := XML.EncodeDetailRequest(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := XML.DecodeDetailRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *r {
		t.Fatalf("xml detail request round trip: %+v vs %+v", r, got)
	}
}

// TestBinaryXMLEquivalence: the two codecs must agree on message content,
// which is what the mixed-codec integration test relies on.
func TestBinaryXMLEquivalence(t *testing.T) {
	n := sampleNotification()
	bin, err := Binary.EncodeNotification(n)
	if err != nil {
		t.Fatal(err)
	}
	x, err := XML.EncodeNotification(n)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := Binary.DecodeNotification(bin)
	if err != nil {
		t.Fatal(err)
	}
	fromXML, err := XML.DecodeNotification(x)
	if err != nil {
		t.Fatal(err)
	}
	if fromBin.ID != fromXML.ID || fromBin.Class != fromXML.Class ||
		fromBin.PersonID != fromXML.PersonID || fromBin.Summary != fromXML.Summary ||
		fromBin.Producer != fromXML.Producer || fromBin.Trace != fromXML.Trace ||
		!fromBin.OccurredAt.Equal(fromXML.OccurredAt) ||
		!fromBin.PublishedAt.Equal(fromXML.PublishedAt) {
		t.Fatalf("codecs disagree: binary %+v vs xml %+v", fromBin, fromXML)
	}
}
