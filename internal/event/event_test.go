package event

import (
	"strings"
	"testing"
	"time"
)

func validNotification() *Notification {
	return &Notification{
		SourceID:   "src-1",
		Class:      "hospital.blood-test",
		PersonID:   "PRS-0001",
		Summary:    "blood test completed",
		OccurredAt: time.Date(2010, 3, 12, 9, 30, 0, 0, time.UTC),
		Producer:   "hospital-s-maria",
	}
}

func TestClassIDValidate(t *testing.T) {
	valid := []ClassID{"a", "blood-test", "hospital.blood-test", "a.b.c", "x_1.y-2"}
	for _, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("ClassID(%q).Validate() = %v, want nil", c, err)
		}
	}
	invalid := []ClassID{"", ".", "a.", ".a", "a..b", "A.b", "a b", "a/b", "ä"}
	for _, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("ClassID(%q).Validate() = nil, want error", c)
		}
	}
}

func TestNotificationValidate(t *testing.T) {
	if err := validNotification().Validate(); err != nil {
		t.Fatalf("valid notification rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Notification)
	}{
		{"missing class", func(n *Notification) { n.Class = "" }},
		{"bad class", func(n *Notification) { n.Class = "Not Valid" }},
		{"missing source id", func(n *Notification) { n.SourceID = "" }},
		{"missing person", func(n *Notification) { n.PersonID = "" }},
		{"missing producer", func(n *Notification) { n.Producer = "" }},
		{"missing time", func(n *Notification) { n.OccurredAt = time.Time{} }},
	}
	for _, tc := range cases {
		n := validNotification()
		tc.mutate(n)
		if err := n.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
}

func TestNotificationRedact(t *testing.T) {
	n := validNotification()
	n.ID = "G-42"
	r := n.Redact()
	if r.SourceID != "" {
		t.Errorf("Redact kept source id %q", r.SourceID)
	}
	if n.SourceID == "" {
		t.Error("Redact mutated the original notification")
	}
	if r.ID != n.ID || r.PersonID != n.PersonID || r.Class != n.Class {
		t.Error("Redact altered fields other than SourceID")
	}
}

func TestDetailSetGetClone(t *testing.T) {
	d := NewDetail("hospital.blood-test", "src-1", "hospital-s-maria")
	d.Set("hemoglobin", "13.5").Set("hiv", "negative")
	if v, ok := d.Get("hemoglobin"); !ok || v != "13.5" {
		t.Fatalf("Get(hemoglobin) = %q, %v", v, ok)
	}
	if _, ok := d.Get("absent"); ok {
		t.Fatal("Get(absent) reported present")
	}
	c := d.Clone()
	c.Set("hemoglobin", "overwritten")
	if v, _ := d.Get("hemoglobin"); v != "13.5" {
		t.Error("Clone shares field map with original")
	}
	if got := len(d.FieldNames()); got != 2 {
		t.Errorf("FieldNames() len = %d, want 2", got)
	}
}

func TestDetailSetOnNilMap(t *testing.T) {
	var d Detail
	d.Set("f", "v")
	if v, ok := d.Get("f"); !ok || v != "v" {
		t.Fatalf("Set on zero-value Detail: Get = %q, %v", v, ok)
	}
}

func TestDetailFilter(t *testing.T) {
	d := NewDetail("c.x", "s", "p").
		Set("patient-id", "PRS-1").
		Set("name", "Anna").
		Set("hiv", "positive")
	f := d.Filter([]FieldName{"patient-id", "name"})
	if _, ok := f.Get("hiv"); ok {
		t.Error("Filter leaked disallowed field hiv")
	}
	if v, _ := f.Get("name"); v != "Anna" {
		t.Error("Filter dropped allowed field name")
	}
	if !f.ExposesOnly([]FieldName{"patient-id", "name"}) {
		t.Error("filtered detail not privacy safe for its own allowed set")
	}
	// Filtering must not mutate the original.
	if _, ok := d.Get("hiv"); !ok {
		t.Error("Filter mutated the original detail")
	}
	// Filtering with an empty allowed set yields no fields.
	if n := len(d.Filter(nil).Fields); n != 0 {
		t.Errorf("Filter(nil) kept %d fields, want 0", n)
	}
}

func TestDetailExposesOnly(t *testing.T) {
	d := NewDetail("c.x", "s", "p").Set("a", "1").Set("b", "")
	if !d.ExposesOnly([]FieldName{"a"}) {
		t.Error("empty-valued field b should not violate privacy safety")
	}
	if d.ExposesOnly([]FieldName{"b"}) {
		t.Error("non-empty field a outside allowed set must violate privacy safety")
	}
	if !d.ExposesOnly([]FieldName{"a", "b", "c"}) {
		t.Error("superset allowed set must be privacy safe")
	}
}

func TestDetailValidate(t *testing.T) {
	d := NewDetail("c.x", "s", "p")
	if err := d.Validate(); err != nil {
		t.Fatalf("valid detail rejected: %v", err)
	}
	for _, mutate := range []func(*Detail){
		func(d *Detail) { d.Class = "" },
		func(d *Detail) { d.SourceID = "" },
		func(d *Detail) { d.Producer = "" },
	} {
		bad := NewDetail("c.x", "s", "p")
		mutate(bad)
		if err := bad.Validate(); err == nil {
			t.Error("invalid detail accepted")
		}
	}
}

func TestActorValidate(t *testing.T) {
	for _, a := range []Actor{"org", "org/dept", "a/b/c"} {
		if err := a.Validate(); err != nil {
			t.Errorf("Actor(%q).Validate() = %v", a, err)
		}
	}
	for _, a := range []Actor{"", "/", "org/", "/org", "a//b"} {
		if err := a.Validate(); err == nil {
			t.Errorf("Actor(%q).Validate() = nil, want error", a)
		}
	}
}

func TestActorOrganization(t *testing.T) {
	if got := Actor("hospital/lab").Organization(); got != "hospital" {
		t.Errorf("Organization() = %q, want hospital", got)
	}
	if got := Actor("hospital").Organization(); got != "hospital" {
		t.Errorf("Organization() = %q, want hospital", got)
	}
}

func TestActorContains(t *testing.T) {
	cases := []struct {
		a, b Actor
		want bool
	}{
		{"hospital", "hospital", true},
		{"hospital", "hospital/lab", true},
		{"hospital", "hospital/lab/sub", true},
		{"hospital/lab", "hospital", false},
		{"hospital/lab", "hospital/dermatology", false},
		{"hospital", "hospitality", false}, // prefix but not on segment boundary
		{"hospital/lab", "hospital/lab", true},
	}
	for _, tc := range cases {
		if got := tc.a.Contains(tc.b); got != tc.want {
			t.Errorf("Actor(%q).Contains(%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDetailRequestValidate(t *testing.T) {
	r := DetailRequest{
		Requester: "family-doctor",
		Class:     "hospital.blood-test",
		EventID:   "G-1",
		Purpose:   PurposeHealthcareTreatment,
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	for name, mutate := range map[string]func(*DetailRequest){
		"requester": func(r *DetailRequest) { r.Requester = "" },
		"class":     func(r *DetailRequest) { r.Class = "" },
		"event id":  func(r *DetailRequest) { r.EventID = "" },
		"purpose":   func(r *DetailRequest) { r.Purpose = "" },
	} {
		bad := r
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("missing %s accepted", name)
		}
	}
}

func TestDecisionString(t *testing.T) {
	if Permit.String() != "Permit" || Deny.String() != "Deny" {
		t.Errorf("Decision strings = %q/%q", Permit, Deny)
	}
	if s := Decision(99).String(); s != "Deny" {
		t.Errorf("unknown decision should read as Deny, got %q", s)
	}
}

func TestEncodeDecodeNotificationRoundTrip(t *testing.T) {
	n := validNotification()
	n.ID = "G-77"
	n.PublishedAt = time.Date(2010, 3, 12, 9, 31, 0, 0, time.UTC)
	data, err := EncodeNotification(n)
	if err != nil {
		t.Fatalf("EncodeNotification: %v", err)
	}
	got, err := DecodeNotification(data)
	if err != nil {
		t.Fatalf("DecodeNotification: %v", err)
	}
	if *got != *n {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, n)
	}
}

func TestEncodeDetailDeterministic(t *testing.T) {
	d := NewDetail("c.x", "s", "p").Set("b", "2").Set("a", "1").Set("c", "3")
	first, err := EncodeDetail(d)
	if err != nil {
		t.Fatalf("EncodeDetail: %v", err)
	}
	for i := 0; i < 5; i++ {
		again, err := EncodeDetail(d.Clone())
		if err != nil {
			t.Fatalf("EncodeDetail: %v", err)
		}
		if string(again) != string(first) {
			t.Fatalf("non-deterministic encoding:\n%s\n%s", first, again)
		}
	}
	if !strings.Contains(string(first), `name="a"`) {
		t.Errorf("encoded detail missing field element: %s", first)
	}
}

func TestEncodeDecodeDetailRoundTrip(t *testing.T) {
	d := NewDetail("hospital.blood-test", "src-9", "hospital-s-maria").
		Set("hemoglobin", "13.5").
		Set("notes", "routine <checkup> & follow-up")
	data, err := EncodeDetail(d)
	if err != nil {
		t.Fatalf("EncodeDetail: %v", err)
	}
	got, err := DecodeDetail(data)
	if err != nil {
		t.Fatalf("DecodeDetail: %v", err)
	}
	if got.SourceID != d.SourceID || got.Class != d.Class || got.Producer != d.Producer {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Fields) != len(d.Fields) {
		t.Fatalf("field count = %d, want %d", len(got.Fields), len(d.Fields))
	}
	for k, v := range d.Fields {
		if got.Fields[k] != v {
			t.Errorf("field %q = %q, want %q", k, got.Fields[k], v)
		}
	}
}

func TestDecodeDetailRejectsGarbage(t *testing.T) {
	if _, err := DecodeDetail([]byte("not xml at all")); err == nil {
		t.Error("DecodeDetail accepted garbage")
	}
	if _, err := DecodeNotification([]byte("<unclosed")); err == nil {
		t.Error("DecodeNotification accepted garbage")
	}
}
