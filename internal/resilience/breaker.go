package resilience

import (
	"fmt"
	"sync"
	"time"
)

// State is a breaker state. The numeric values are exported as the
// css_resilience_breaker_state gauge.
type State int

// Breaker states.
const (
	StateClosed   State = 0
	StateHalfOpen State = 1
	StateOpen     State = 2
)

// String returns the conventional lowercase state name.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// BreakerConfig configures a Breaker (and, via a Group, a family of
// per-endpoint breakers sharing one policy).
type BreakerConfig struct {
	// ConsecutiveFailures trips the breaker when that many calls fail in
	// a row. Zero means DefaultConsecutiveFailures.
	ConsecutiveFailures int
	// ErrorRate additionally trips the breaker when the failure fraction
	// over the sliding sample window reaches it (with at least MinSamples
	// observations). Zero means DefaultErrorRate; negative disables the
	// rate trip.
	ErrorRate float64
	// MinSamples gates the error-rate trip. Zero means DefaultMinSamples.
	MinSamples int
	// WindowSize is the sliding window length. Zero means
	// DefaultWindowSize.
	WindowSize int
	// OpenFor is the cooldown an open breaker waits before admitting
	// half-open probes. Zero means DefaultOpenFor.
	OpenFor time.Duration
	// HalfOpenProbes bounds the concurrent probe calls admitted while
	// half-open. Zero means 1.
	HalfOpenProbes int
	// Now injects a clock for tests. Nil means time.Now.
	Now func() time.Time
	// Metrics exports state and transition counts. Nil disables.
	Metrics *Metrics
	// OnTransition, when set, observes every state change. Called outside
	// the breaker lock; implementations must be fast and non-blocking.
	OnTransition func(name string, from, to State)
}

// Defaults for BreakerConfig.
const (
	DefaultConsecutiveFailures = 5
	DefaultErrorRate           = 0.5
	DefaultMinSamples          = 20
	DefaultWindowSize          = 40
	DefaultOpenFor             = 2 * time.Second
)

// Breaker is a three-state circuit breaker guarding one remote endpoint.
// Closed admits everything; consecutive failures or a high error rate
// over the sample window open it; while open, calls are rejected with an
// *OpenError (errors.Is(err, ErrOpen)) carrying the remaining cooldown
// as a Retry-After hint; after the cooldown, a bounded number of probes
// is admitted half-open, and one probe success recloses the circuit
// while a probe failure reopens it for a fresh cooldown. Safe for
// concurrent use.
type Breaker struct {
	name string
	cfg  BreakerConfig
	now  func() time.Time

	mu        sync.Mutex
	state     State
	consec    int       // consecutive failures while closed
	window    []bool    // ring of recent outcomes (true = failure)
	widx      int       // next write position
	wcount    int       // samples recorded (≤ len(window))
	wfails    int       // failures among the recorded samples
	openUntil time.Time // when half-open probes become admissible
	probes    int       // outstanding half-open probes
}

// OpenError is the rejection an open breaker returns.
type OpenError struct {
	// Name identifies the guarded endpoint.
	Name string
	// After is the remaining cooldown before a probe will be admitted.
	After time.Duration
}

// Error implements the error interface.
func (e *OpenError) Error() string {
	return fmt.Sprintf("resilience: circuit open for %s (retry in %s)", e.Name, e.After)
}

// Is makes errors.Is(err, ErrOpen) true for open-breaker rejections.
func (e *OpenError) Is(target error) bool { return target == ErrOpen }

// RetryAfter returns the remaining cooldown (the Retry-After hint).
func (e *OpenError) RetryAfter() time.Duration { return e.After }

// NewBreaker creates a breaker named name (the metrics endpoint label);
// zero config fields assume the defaults.
func NewBreaker(name string, cfg BreakerConfig) *Breaker {
	if cfg.ConsecutiveFailures <= 0 {
		cfg.ConsecutiveFailures = DefaultConsecutiveFailures
	}
	if cfg.ErrorRate == 0 {
		cfg.ErrorRate = DefaultErrorRate
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = DefaultMinSamples
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = DefaultWindowSize
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = DefaultOpenFor
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	b := &Breaker{name: name, cfg: cfg, now: now, window: make([]bool, cfg.WindowSize)}
	cfg.Metrics.breakerState(name, StateClosed)
	return b
}

// Name returns the endpoint label the breaker was created with.
func (b *Breaker) Name() string { return b.name }

// State returns the current state, accounting for an elapsed cooldown
// (an open breaker whose cooldown passed reports half-open).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen && !b.now().Before(b.openUntil) {
		return StateHalfOpen
	}
	return b.state
}

// Acquire asks permission for one call. On permit it returns a release
// function that must be invoked exactly once with the call's outcome
// (failure=true for transport-level failures; application-level denials
// are successes — the endpoint answered). On rejection it returns a nil
// release and an *OpenError.
func (b *Breaker) Acquire() (release func(failure bool), err error) {
	b.mu.Lock()
	now := b.now()
	switch b.state {
	case StateOpen:
		if now.Before(b.openUntil) {
			after := b.openUntil.Sub(now)
			b.mu.Unlock()
			return nil, &OpenError{Name: b.name, After: after}
		}
		b.transitionLocked(StateHalfOpen)
		fallthrough
	case StateHalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			after := b.cfg.OpenFor // conservatively a full cooldown
			b.mu.Unlock()
			return nil, &OpenError{Name: b.name, After: after}
		}
		b.probes++
		b.mu.Unlock()
		return b.releaseProbe, nil
	default: // StateClosed
		b.mu.Unlock()
		return b.releaseClosed, nil
	}
}

// releaseClosed settles a call admitted while closed.
func (b *Breaker) releaseClosed(failure bool) {
	b.mu.Lock()
	b.observeLocked(failure)
	if b.state == StateClosed && b.tripLocked() {
		b.openLocked()
	}
	b.mu.Unlock()
}

// releaseProbe settles a half-open probe.
func (b *Breaker) releaseProbe(failure bool) {
	b.mu.Lock()
	if b.probes > 0 {
		b.probes--
	}
	if b.state != StateHalfOpen {
		// The circuit settled (another probe closed or reopened it)
		// while this probe was in flight; just record the sample.
		b.observeLocked(failure)
		b.mu.Unlock()
		return
	}
	if failure {
		b.openLocked()
	} else {
		b.resetLocked()
		b.transitionLocked(StateClosed)
	}
	b.mu.Unlock()
}

// observeLocked records one outcome in the counters and the window.
func (b *Breaker) observeLocked(failure bool) {
	if failure {
		b.consec++
	} else {
		b.consec = 0
	}
	if b.wcount == len(b.window) {
		if b.window[b.widx] {
			b.wfails--
		}
	} else {
		b.wcount++
	}
	b.window[b.widx] = failure
	if failure {
		b.wfails++
	}
	b.widx = (b.widx + 1) % len(b.window)
}

// tripLocked evaluates the trip conditions.
func (b *Breaker) tripLocked() bool {
	if b.consec >= b.cfg.ConsecutiveFailures {
		return true
	}
	if b.cfg.ErrorRate > 0 && b.wcount >= b.cfg.MinSamples {
		if float64(b.wfails)/float64(b.wcount) >= b.cfg.ErrorRate {
			return true
		}
	}
	return false
}

// openLocked opens the circuit for a fresh cooldown.
func (b *Breaker) openLocked() {
	b.openUntil = b.now().Add(b.cfg.OpenFor)
	b.probes = 0
	b.resetLocked()
	b.transitionLocked(StateOpen)
}

// resetLocked clears the failure accounting.
func (b *Breaker) resetLocked() {
	b.consec = 0
	b.wcount, b.wfails, b.widx = 0, 0, 0
}

// transitionLocked moves to state to, emitting metrics and the observer
// callback. Callers hold b.mu; the callback is deferred until after the
// state is set but runs under the lock deliberately — it keeps the
// (state, notification) pairs ordered, and observers are required to be
// non-blocking.
func (b *Breaker) transitionLocked(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	b.cfg.Metrics.breakerState(b.name, to)
	b.cfg.Metrics.breakerTransition(b.name, to)
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(b.name, from, to)
	}
}

// Group manages one breaker per endpoint name under a shared config —
// the per-endpoint family the transport clients use (one breaker per
// controller route, one per producer gateway).
type Group struct {
	cfg BreakerConfig

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewGroup creates a breaker family.
func NewGroup(cfg BreakerConfig) *Group {
	return &Group{cfg: cfg, m: make(map[string]*Breaker)}
}

// Breaker returns the breaker for name, creating it on first use.
func (g *Group) Breaker(name string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.m[name]
	if b == nil {
		b = NewBreaker(name, g.cfg)
		g.m[name] = b
	}
	return b
}

// States snapshots every member breaker's state, keyed by endpoint name
// (surfaced on /healthz).
func (g *Group) States() map[string]State {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]State, len(g.m))
	for name, b := range g.m {
		out[name] = b.State()
	}
	return out
}
