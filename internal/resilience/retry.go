package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// RetryPolicy configures a Retrier.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries, including the first. Zero means
	// DefaultMaxAttempts; 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry. Zero means
	// DefaultBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff. Zero means DefaultMaxDelay.
	MaxDelay time.Duration
	// Budget, when set, is consulted before every retry (never before the
	// first attempt): a dry budget converts the transient error into
	// ErrBudgetExhausted instead of amplifying an outage with a storm.
	Budget *Budget
	// Seed makes the jitter deterministic for reproducible tests. Zero
	// seeds from the clock.
	Seed int64
	// Metrics counts retry attempts (css_resilience_retries_total). Nil
	// disables.
	Metrics *Metrics
}

// Defaults for RetryPolicy.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 50 * time.Millisecond
	DefaultMaxDelay    = 2 * time.Second
)

// Retrier re-runs transient-failing operations under a policy of capped
// exponential backoff with full jitter (delay drawn uniformly from
// (0, min(MaxDelay, BaseDelay·2^attempt)]): the spread desynchronizes
// the retry herd a controller outage would otherwise create. Safe for
// concurrent use.
type Retrier struct {
	policy RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetrier creates a retrier; zero policy fields assume the defaults.
func NewRetrier(p RetryPolicy) *Retrier {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	seed := p.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Retrier{policy: p, rng: rand.New(rand.NewSource(seed))}
}

// Do runs op until it succeeds, fails permanently, exhausts the policy,
// or ctx is done. Only errors for which Retryable reports true are
// retried; everything else returns immediately. The error of the last
// attempt is returned (wrapped with the attempt count when retries
// happened), so errors.Is/As keep working against the underlying cause.
//
// op receives ctx unchanged; per-attempt timeouts belong to the caller
// (an http.Client timeout bounds each try, ctx bounds the whole call).
func (r *Retrier) Do(ctx context.Context, op string, fn func(ctx context.Context) error) error {
	if r == nil {
		return fn(ctx)
	}
	var err error
	for attempt := 1; ; attempt++ {
		if err = ctx.Err(); err != nil {
			return err
		}
		// Each attempt is a child span (no-op unless the context carries a
		// tracer), so a chaos-run trace shows why a flow took 3 attempts.
		attemptCtx, span := telemetry.StartSpan(ctx, "retry.attempt")
		if span != nil {
			span.SetAttr("op", op)
			span.SetAttr("attempt", strconv.Itoa(attempt))
		}
		err = fn(attemptCtx)
		if err == nil || !Retryable(err) {
			span.SetError(err)
			span.End()
			return err
		}
		if span != nil {
			span.SetError(err)
			if errors.Is(err, ErrOpen) {
				span.AddEvent("breaker.open")
			}
		}
		if attempt >= r.policy.MaxAttempts {
			span.End()
			return fmt.Errorf("resilience: %s failed after %d attempts: %w", op, attempt, err)
		}
		if b := r.policy.Budget; b != nil && !b.Withdraw() {
			span.End()
			return fmt.Errorf("%w (%s): %w", ErrBudgetExhausted, op, err)
		}
		delay := r.backoff(attempt)
		if after, ok := RetryAfterOf(err); ok && after > delay {
			delay = after
		}
		if span != nil {
			span.SetAttr("backoff", delay.String())
			span.End()
		}
		r.policy.Metrics.retry(op)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// backoff draws the full-jitter delay for the given 1-based attempt.
func (r *Retrier) backoff(attempt int) time.Duration {
	ceil := r.policy.BaseDelay
	for i := 1; i < attempt && ceil < r.policy.MaxDelay; i++ {
		ceil *= 2
	}
	if ceil > r.policy.MaxDelay {
		ceil = r.policy.MaxDelay
	}
	r.mu.Lock()
	d := time.Duration(r.rng.Int63n(int64(ceil))) + 1
	r.mu.Unlock()
	return d
}

// Budget is a token bucket shared by the retriers of one process: each
// retry withdraws one token, and tokens refill at a steady rate. When
// the bucket is dry, retries are suppressed (first attempts never are),
// bounding the load amplification a dependency outage can cause.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	rate   float64 // tokens per second
	last   time.Time
	now    func() time.Time
}

// NewBudget creates a budget holding at most max tokens, refilling at
// rate tokens per second. It starts full.
func NewBudget(max, rate float64) *Budget {
	if max <= 0 {
		max = 1
	}
	if rate <= 0 {
		rate = 1
	}
	return &Budget{tokens: max, max: max, rate: rate, now: time.Now}
}

// Withdraw takes one token, reporting whether one was available.
func (b *Budget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.max {
			b.tokens = b.max
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
