package resilience_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/resilience"
	"repro/internal/schema"
	"repro/internal/store"
)

func note(src, person string) *event.Notification {
	return &event.Notification{
		SourceID:   event.SourceID(src),
		Class:      schema.ClassBloodTest,
		PersonID:   person,
		Summary:    "blood test completed",
		OccurredAt: time.Date(2010, 6, 1, 8, 0, 0, 0, time.UTC),
		Producer:   "hospital",
	}
}

func TestOutboxEnqueueDrainAck(t *testing.T) {
	o, err := resilience.OpenOutbox(store.OpenMemory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		queued, err := o.Enqueue(note(fmt.Sprintf("src-%d", i), "maria"))
		if err != nil || !queued {
			t.Fatalf("Enqueue %d = %v, %v; want true, nil", i, queued, err)
		}
	}
	if o.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", o.Depth())
	}
	// Drain in FIFO order.
	for i := 0; i < 3; i++ {
		n, seq, ok, err := o.Next()
		if err != nil || !ok {
			t.Fatalf("Next %d = %v, %v; want entry", i, ok, err)
		}
		if want := event.SourceID(fmt.Sprintf("src-%d", i)); n.SourceID != want {
			t.Fatalf("Next %d: source = %q, want %q (FIFO)", i, n.SourceID, want)
		}
		if err := o.Ack(seq, n); err != nil {
			t.Fatalf("Ack %d: %v", i, err)
		}
	}
	if o.Depth() != 0 {
		t.Fatalf("Depth after drain = %d, want 0", o.Depth())
	}
	if _, _, ok, err := o.Next(); ok || err != nil {
		t.Fatalf("Next on empty outbox = %v, %v; want no entry", ok, err)
	}
}

func TestOutboxDedupsSameSourceEvent(t *testing.T) {
	o, err := resilience.OpenOutbox(store.OpenMemory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if queued, err := o.Enqueue(note("src-1", "maria")); err != nil || !queued {
		t.Fatalf("first Enqueue = %v, %v", queued, err)
	}
	if queued, err := o.Enqueue(note("src-1", "maria")); err != nil || queued {
		t.Fatalf("duplicate Enqueue = %v, %v; want false (deduped)", queued, err)
	}
	if o.Depth() != 1 {
		t.Fatalf("Depth = %d, want 1", o.Depth())
	}
	// After an acked drain the origin may legitimately be reused.
	n, seq, _, _ := o.Next()
	if err := o.Ack(seq, n); err != nil {
		t.Fatal(err)
	}
	if queued, err := o.Enqueue(note("src-1", "maria")); err != nil || !queued {
		t.Fatalf("Enqueue after Ack = %v, %v; want true", queued, err)
	}
}

func TestOutboxDeadLettersPoisonedEntries(t *testing.T) {
	st := store.OpenMemory()
	o, err := resilience.OpenOutbox(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Enqueue(note("src-ok", "maria")); err != nil {
		t.Fatal(err)
	}
	n, seq, _, _ := o.Next()
	if err := o.Reject(seq, n); err != nil {
		t.Fatalf("Reject: %v", err)
	}
	if o.Depth() != 0 || o.Dead() != 1 {
		t.Fatalf("Depth, Dead = %d, %d; want 0, 1", o.Depth(), o.Dead())
	}
	if _, _, ok, _ := o.Next(); ok {
		t.Fatal("dead-lettered entry still drains")
	}

	// A corrupt payload (torn write that survived recovery) is skipped,
	// not returned and not wedging the queue.
	if err := st.Put("q/00000000000000ff", []byte("<not-xml")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := o.Next(); ok || err != nil {
		t.Fatalf("Next over corrupt entry = %v, %v; want skipped", ok, err)
	}
}

// TestOutboxCrashRestartExactlyOnce is the crash-restart satellite: a
// producer drains its outbox into the controller, crashes after the
// publish but before the Ack, restarts, re-drains — and the events index
// still holds exactly one record per event, because replay is deduped by
// the controller's (producer, source id) idempotency.
func TestOutboxCrashRestartExactlyOnce(t *testing.T) {
	ctrl, err := core.New(core.Config{DefaultConsent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if err := ctrl.RegisterProducer("hospital", "Hospital S. Maria"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "outbox.db")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o, err := resilience.OpenOutbox(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	people := []string{"maria", "joao", "ana"}
	for i, person := range people {
		if _, err := o.Enqueue(note(fmt.Sprintf("src-%d", i), person)); err != nil {
			t.Fatal(err)
		}
	}

	// Drain the first entry fully (publish + ack), then "crash" mid-drain
	// on the second: the publish reaches the controller but the Ack never
	// happens, so the entry stays queued.
	for i := 0; i < 2; i++ {
		n, seq, ok, err := o.Next()
		if err != nil || !ok {
			t.Fatalf("Next: %v, %v", ok, err)
		}
		if _, err := ctrl.Publish(n); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if err := o.Ack(seq, n); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil { // process dies here
		t.Fatal(err)
	}

	// Restart: reopen the store, recover the outbox, drain everything.
	st2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	o2, err := resilience.OpenOutbox(st2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Depth() != 2 {
		t.Fatalf("recovered Depth = %d, want 2 (one acked before the crash)", o2.Depth())
	}
	for {
		n, seq, ok, err := o2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if _, err := ctrl.Publish(n); err != nil {
			t.Fatal(err)
		}
		if err := o2.Ack(seq, n); err != nil {
			t.Fatal(err)
		}
	}
	if o2.Depth() != 0 {
		t.Fatalf("Depth after re-drain = %d, want 0", o2.Depth())
	}

	// Exactly-once at the index: one record per person, even for the
	// entry published twice (before and after the crash).
	for _, person := range people {
		got, err := ctrl.InquireOwn(person, index.Inquiry{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 {
			t.Fatalf("index holds %d records for %s, want exactly 1", len(got), person)
		}
	}
}

// TestOutboxRecoversSequenceAcrossRestart guards against sequence reuse:
// entries enqueued after a restart must sort after the survivors.
func TestOutboxRecoversSequenceAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.db")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o, err := resilience.OpenOutbox(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Enqueue(note("src-old", "maria")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	o2, err := resilience.OpenOutbox(st2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o2.Enqueue(note("src-new", "joao")); err != nil {
		t.Fatal(err)
	}
	n, _, ok, err := o2.Next()
	if err != nil || !ok {
		t.Fatalf("Next: %v, %v", ok, err)
	}
	if n.SourceID != "src-old" {
		t.Fatalf("first drained = %q, want the pre-restart entry first", n.SourceID)
	}
}
