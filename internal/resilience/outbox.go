package resilience

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/event"
	"repro/internal/store"
)

// Outbox key prefixes. Pending entries live under "q/" keyed by a
// zero-padded sequence number (so lexicographic order is drain order),
// the dedup markers under "k/" keyed by producer+source id, and
// dead-lettered entries under "x/".
const (
	outboxQueuePrefix = "q/"
	outboxDedupPrefix = "k/"
	outboxDeadPrefix  = "x/"
)

// Outbox is the producer-side durable publish queue: when the data
// controller is unreachable, notifications are parked here (one
// checksummed WAL batch per mutation via store.Batch, so a crash can
// never persist half an entry) and drained later with at-least-once
// semantics. Exactly-once effect at the events index follows from the
// controller's publish idempotency on (producer, source id) — replaying
// a drained-but-unacked entry returns the original global id without a
// duplicate index record.
//
// Enqueue dedups on (producer, source id) too: handing the same
// notification to the outbox twice queues it once.
//
// Safe for concurrent use; durable when backed by a persistent store.
type Outbox struct {
	st      *store.Store
	metrics *Metrics

	mu    sync.Mutex
	seq   uint64 // last assigned sequence number
	depth int    // pending entries
	dead  int    // dead-lettered entries
}

// OpenOutbox opens (or recovers) the outbox stored in st. Pending
// entries from a previous run are preserved; the caller drains them via
// Next/Ack.
func OpenOutbox(st *store.Store, m *Metrics) (*Outbox, error) {
	o := &Outbox{st: st, metrics: m}
	err := o.st.AscendPrefix(outboxQueuePrefix, func(key string, _ []byte) bool {
		if seq, err := parseOutboxSeq(key); err == nil && seq > o.seq {
			o.seq = seq
		}
		o.depth++
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("resilience: open outbox: %w", err)
	}
	err = o.st.AscendPrefix(outboxDeadPrefix, func(key string, _ []byte) bool {
		if seq, err := parseOutboxSeq(key); err == nil && seq > o.seq {
			o.seq = seq
		}
		o.dead++
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("resilience: open outbox: %w", err)
	}
	m.outbox("open", o.depth)
	return o, nil
}

// queueKey formats the store key of sequence number seq under prefix.
func queueKey(prefix string, seq uint64) string {
	return fmt.Sprintf("%s%016x", prefix, seq)
}

// parseOutboxSeq recovers the sequence number from a queue or dead key.
func parseOutboxSeq(key string) (uint64, error) {
	i := strings.IndexByte(key, '/')
	if i < 0 {
		return 0, fmt.Errorf("resilience: malformed outbox key %q", key)
	}
	return strconv.ParseUint(key[i+1:], 16, 64)
}

// dedupKey canonicalizes a notification's origin. The separator cannot
// occur in identifiers (they are validated XML attribute values).
func dedupKey(n *event.Notification) string {
	return outboxDedupPrefix + string(n.Producer) + "\x1f" + string(n.SourceID)
}

// Enqueue parks a notification for deferred publication. It reports
// false when an entry for the same (producer, source id) is already
// queued — the replay would be deduplicated by the controller anyway,
// so the outbox does not store it twice.
func (o *Outbox) Enqueue(n *event.Notification) (bool, error) {
	body, err := event.EncodeNotification(n)
	if err != nil {
		return false, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	dk := dedupKey(n)
	if ok, err := o.st.Has(dk); err != nil {
		return false, err
	} else if ok {
		o.metrics.outbox("dedup", o.depth)
		return false, nil
	}
	o.seq++
	qk := queueKey(outboxQueuePrefix, o.seq)
	var b store.Batch
	b.Put(qk, body)
	b.Put(dk, []byte(qk))
	if err := o.st.Apply(&b); err != nil {
		o.seq--
		return false, err
	}
	o.depth++
	o.metrics.outbox("enqueue", o.depth)
	return true, nil
}

// Next returns the oldest pending notification and its sequence number,
// or ok=false when the outbox is empty. Entries that fail to decode
// (a corrupt tail that survived WAL recovery) are dead-lettered and
// skipped rather than wedging the queue.
func (o *Outbox) Next() (n *event.Notification, seq uint64, ok bool, err error) {
	for {
		var key string
		var val []byte
		err = o.st.AscendPrefix(outboxQueuePrefix, func(k string, v []byte) bool {
			key, val = k, append([]byte(nil), v...)
			return false
		})
		if err != nil || key == "" {
			return nil, 0, false, err
		}
		if seq, err = parseOutboxSeq(key); err == nil {
			if n, err = event.DecodeNotification(val); err == nil {
				return n, seq, true, nil
			}
		}
		if derr := o.deadLetter(seq, key, val); derr != nil {
			return nil, 0, false, derr
		}
	}
}

// Ack removes a drained entry after its publish succeeded. The batch
// removes the payload and the dedup marker together, so a crash leaves
// either both (replayed, deduped by the controller) or neither.
func (o *Outbox) Ack(seq uint64, n *event.Notification) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	var b store.Batch
	b.Delete(queueKey(outboxQueuePrefix, seq))
	b.Delete(dedupKey(n))
	if err := o.st.Apply(&b); err != nil {
		return err
	}
	if o.depth > 0 {
		o.depth--
	}
	o.metrics.outbox("drain", o.depth)
	return nil
}

// Reject dead-letters an entry that failed permanently (e.g. the
// controller rejected the producer or class): it moves the payload to
// the dead prefix so the queue never wedges on a poisoned entry while
// the data stays recoverable for an operator.
func (o *Outbox) Reject(seq uint64, n *event.Notification) error {
	body, err := event.EncodeNotification(n)
	if err != nil {
		body = nil // keep the raw move best-effort; the entry is poisoned anyway
	}
	return o.deadLetter(seq, queueKey(outboxQueuePrefix, seq), body)
}

// deadLetter moves one queue entry to the dead prefix.
func (o *Outbox) deadLetter(seq uint64, key string, val []byte) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	var b store.Batch
	if val != nil {
		b.Put(queueKey(outboxDeadPrefix, seq), val)
	}
	b.Delete(key)
	if err := o.st.Apply(&b); err != nil {
		return err
	}
	if o.depth > 0 {
		o.depth--
	}
	o.dead++
	o.metrics.outbox("dead", o.depth)
	return nil
}

// Depth returns the number of pending entries.
func (o *Outbox) Depth() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.depth
}

// Dead returns the number of dead-lettered entries.
func (o *Outbox) Dead() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.dead
}
