package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func fastPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 1}
}

func TestRetrierSucceedsAfterTransientFailures(t *testing.T) {
	r := NewRetrier(fastPolicy())
	attempts := 0
	err := r.Do(context.Background(), "op", func(context.Context) error {
		attempts++
		if attempts < 3 {
			return MarkRetryable(errors.New("transient"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func TestRetrierDoesNotRetryPermanentErrors(t *testing.T) {
	r := NewRetrier(fastPolicy())
	permanent := errors.New("permanent")
	attempts := 0
	err := r.Do(context.Background(), "op", func(context.Context) error {
		attempts++
		return permanent
	})
	if !errors.Is(err, permanent) {
		t.Fatalf("err = %v, want the permanent error", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry of permanent errors)", attempts)
	}
}

func TestRetrierExhaustsAttempts(t *testing.T) {
	r := NewRetrier(fastPolicy())
	transient := errors.New("still down")
	attempts := 0
	err := r.Do(context.Background(), "op", func(context.Context) error {
		attempts++
		return MarkRetryable(transient)
	})
	if !errors.Is(err, transient) {
		t.Fatalf("err = %v, want wrapped transient error", err)
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want MaxAttempts=4", attempts)
	}
}

func TestRetrierHonorsRetryAfterHint(t *testing.T) {
	r := NewRetrier(fastPolicy())
	const hint = 60 * time.Millisecond
	attempts := 0
	start := time.Now()
	err := r.Do(context.Background(), "op", func(context.Context) error {
		attempts++
		if attempts == 1 {
			return MarkRetryableAfter(errors.New("throttled"), hint)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	// The backoff ceiling is 4ms, so reaching the hint proves it was used.
	if elapsed := time.Since(start); elapsed < hint {
		t.Fatalf("retried after %v, want at least the Retry-After hint %v", elapsed, hint)
	}
}

func TestRetrierBudgetSuppressesRetries(t *testing.T) {
	p := fastPolicy()
	p.Budget = NewBudget(1, 0.001) // one token, effectively no refill
	r := NewRetrier(p)
	transient := MarkRetryable(errors.New("down"))

	attempts := 0
	// First call: one retry withdraws the only token, then exhaustion.
	err := r.Do(context.Background(), "op", func(context.Context) error {
		attempts++
		return transient
	})
	if !errors.Is(err, ErrBudgetExhausted) && attempts < 2 {
		t.Fatalf("err = %v after %d attempts; want a retry then budget exhaustion", err, attempts)
	}

	// Second call: the budget is dry, no retry at all.
	attempts = 0
	err = r.Do(context.Background(), "op", func(context.Context) error {
		attempts++
		return transient
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (dry budget must suppress retries)", attempts)
	}
}

func TestRetrierStopsOnContextCancel(t *testing.T) {
	p := fastPolicy()
	p.BaseDelay = time.Hour // the retry sleep must be interruptible
	p.MaxDelay = time.Hour
	r := NewRetrier(p)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- r.Do(ctx, "op", func(context.Context) error {
			return MarkRetryable(errors.New("down"))
		})
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do did not return after cancel")
	}
}

func TestRetrierBackoffIsCappedAndDeterministic(t *testing.T) {
	a := NewRetrier(RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 42})
	b := NewRetrier(RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 42})
	for attempt := 1; attempt <= 8; attempt++ {
		da, db := a.backoff(attempt), b.backoff(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed produced %v vs %v", attempt, da, db)
		}
		if da <= 0 || da > 80*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v outside (0, cap]", attempt, da)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	if Retryable(nil) {
		t.Fatal("nil must not be retryable")
	}
	if Retryable(errors.New("plain")) {
		t.Fatal("unmarked errors must not be retryable")
	}
	if !Retryable(MarkRetryable(errors.New("x"))) {
		t.Fatal("marked errors must be retryable")
	}
	open := &OpenError{Name: "ep", After: time.Second}
	if !Retryable(open) {
		t.Fatal("breaker rejections must be retryable (the cooldown elapses)")
	}
	if after, ok := RetryAfterOf(open); !ok || after != time.Second {
		t.Fatalf("RetryAfterOf(open) = %v, %v; want 1s, true", after, ok)
	}
}
