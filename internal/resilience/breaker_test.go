package resilience

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for deterministic breaker
// phases.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(clk *fakeClock, probes int) *Breaker {
	return NewBreaker("ep", BreakerConfig{
		ConsecutiveFailures: 3,
		ErrorRate:           -1, // consecutive-only for the deterministic tests
		OpenFor:             time.Second,
		HalfOpenProbes:      probes,
		Now:                 clk.Now,
	})
}

// fail records one failed call through b; ok one successful call.
func fail(t *testing.T, b *Breaker) {
	t.Helper()
	release, err := b.Acquire()
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	release(true)
}

func ok(t *testing.T, b *Breaker) {
	t.Helper()
	release, err := b.Acquire()
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	release(false)
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1)
	fail(t, b)
	fail(t, b)
	if b.State() != StateClosed {
		t.Fatalf("state = %v after 2 failures, want closed (threshold 3)", b.State())
	}
	fail(t, b)
	if b.State() != StateOpen {
		t.Fatalf("state = %v after 3 failures, want open", b.State())
	}
	if _, err := b.Acquire(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Acquire on open breaker: err = %v, want ErrOpen", err)
	}
	if after, okh := RetryAfterOf(mustOpenErr(t, b)); !okh || after <= 0 || after > time.Second {
		t.Fatalf("open rejection Retry-After = %v, %v; want (0, 1s]", after, okh)
	}
}

func mustOpenErr(t *testing.T, b *Breaker) error {
	t.Helper()
	_, err := b.Acquire()
	if err == nil {
		t.Fatal("Acquire unexpectedly permitted")
	}
	return err
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1)
	fail(t, b)
	fail(t, b)
	ok(t, b)
	fail(t, b)
	fail(t, b)
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed (success reset the streak)", b.State())
	}
}

func TestBreakerTripsOnErrorRate(t *testing.T) {
	b := NewBreaker("ep", BreakerConfig{
		ConsecutiveFailures: 1000, // rate trip only
		ErrorRate:           0.5,
		MinSamples:          10,
		WindowSize:          10,
		OpenFor:             time.Second,
		Now:                 newFakeClock().Now,
	})
	// Alternate success/failure: 50% over the full window trips at the
	// tenth sample.
	for i := 0; i < 10; i++ {
		release, err := b.Acquire()
		if err != nil {
			t.Fatalf("Acquire sample %d: %v", i, err)
		}
		release(i%2 == 0)
	}
	if b.State() != StateOpen {
		t.Fatalf("state = %v after 50%% failures over window, want open", b.State())
	}
}

func TestBreakerHalfOpenProbeRecloses(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1)
	fail(t, b)
	fail(t, b)
	fail(t, b) // open
	clk.Advance(time.Second)
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v after cooldown, want half-open", b.State())
	}
	release, err := b.Acquire()
	if err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	// A second concurrent probe exceeds HalfOpenProbes=1.
	if _, err := b.Acquire(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe: err = %v, want ErrOpen", err)
	}
	release(false)
	if b.State() != StateClosed {
		t.Fatalf("state = %v after probe success, want closed", b.State())
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1)
	fail(t, b)
	fail(t, b)
	fail(t, b) // open
	clk.Advance(time.Second)
	release, err := b.Acquire()
	if err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	release(true)
	if b.State() != StateOpen {
		t.Fatalf("state = %v after probe failure, want open (fresh cooldown)", b.State())
	}
	if _, err := b.Acquire(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Acquire after reopen: err = %v, want ErrOpen", err)
	}
}

func TestBreakerObservesTransitions(t *testing.T) {
	clk := newFakeClock()
	var got []string
	b := NewBreaker("ep", BreakerConfig{
		ConsecutiveFailures: 1,
		ErrorRate:           -1,
		OpenFor:             time.Second,
		Now:                 clk.Now,
		OnTransition: func(name string, from, to State) {
			got = append(got, from.String()+">"+to.String())
		},
	})
	fail(t, b) // closed > open
	clk.Advance(time.Second)
	release, err := b.Acquire() // open > half-open
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	release(false) // half-open > closed
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", got, want)
		}
	}
}

// TestBreakerStorm is the -race storm: deterministic phases assert that
// a fully open breaker never yields a permit and a half-open breaker
// admits at most HalfOpenProbes concurrent probes; a final chaotic
// phase hammers Acquire/release from many goroutines purely for race
// coverage.
func TestBreakerStorm(t *testing.T) {
	clk := newFakeClock()
	const probeCap = 2
	b := testBreaker(clk, probeCap)

	// Trip it.
	fail(t, b)
	fail(t, b)
	fail(t, b)

	// Phase 1: fully open (cooldown not elapsed). No goroutine may get
	// a permit.
	var wg sync.WaitGroup
	var permits atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				release, err := b.Acquire()
				if err == nil {
					permits.Add(1)
					release(false)
				} else if !errors.Is(err, ErrOpen) {
					t.Errorf("unexpected rejection: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := permits.Load(); n != 0 {
		t.Fatalf("open breaker yielded %d permits, want 0", n)
	}

	// Phase 2: half-open. At most probeCap permits may be outstanding at
	// once; hold every permit until the phase ends so the cap is exact.
	clk.Advance(time.Second)
	var held []func(bool)
	var heldMu sync.Mutex
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				release, err := b.Acquire()
				if err == nil {
					heldMu.Lock()
					held = append(held, release)
					heldMu.Unlock()
				} else if !errors.Is(err, ErrOpen) {
					t.Errorf("unexpected rejection: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(held) == 0 || len(held) > probeCap {
		t.Fatalf("half-open admitted %d concurrent probes, want 1..%d", len(held), probeCap)
	}
	for _, release := range held {
		release(false) // first success recloses; the rest record samples
	}
	if b.State() != StateClosed {
		t.Fatalf("state = %v after probe success, want closed", b.State())
	}

	// Phase 3: chaotic concurrent trips/probes/resets for -race coverage.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if i%97 == 0 {
					clk.Advance(100 * time.Millisecond)
				}
				release, err := b.Acquire()
				if err != nil {
					_ = b.State()
					continue
				}
				release((i+g)%3 == 0)
			}
		}(g)
	}
	wg.Wait()
}

func TestGroupSharesConfigAndSnapshotsStates(t *testing.T) {
	clk := newFakeClock()
	g := NewGroup(BreakerConfig{ConsecutiveFailures: 1, ErrorRate: -1, OpenFor: time.Second, Now: clk.Now})
	if g.Breaker("a") != g.Breaker("a") {
		t.Fatal("Group.Breaker must memoize per name")
	}
	fail(t, g.Breaker("a"))
	ok(t, g.Breaker("b"))
	states := g.States()
	if states["a"] != StateOpen || states["b"] != StateClosed {
		t.Fatalf("States() = %v, want a open / b closed", states)
	}
}
