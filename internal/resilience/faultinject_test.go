package resilience

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTarget(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, c *http.Client, url string) (*http.Response, string, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp, "", err
	}
	return resp, string(data), nil
}

func TestFaultInjectorPassesThroughWithoutFaults(t *testing.T) {
	srv := newTarget(t, "hello")
	fi := NewFaultInjector(nil, FaultConfig{Seed: 7})
	resp, body, err := get(t, &http.Client{Transport: fi}, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || body != "hello" {
		t.Fatalf("got %d %q, want 200 hello", resp.StatusCode, body)
	}
	if n := len(fi.Injected()); n != 0 {
		t.Fatalf("injected %v faults with zero probabilities", fi.Injected())
	}
}

func TestFaultInjectorSameSeedSameFaultStream(t *testing.T) {
	srv := newTarget(t, "hello")
	run := func(seed int64) []string {
		fi := NewFaultInjector(nil, FaultConfig{Seed: seed, ConnectFailure: 0.3, ServerError: 0.2})
		c := &http.Client{Transport: fi}
		var outcomes []string
		for i := 0; i < 40; i++ {
			resp, _, err := get(t, c, srv.URL)
			switch {
			case err != nil:
				outcomes = append(outcomes, "connect")
			case resp.StatusCode == http.StatusServiceUnavailable:
				outcomes = append(outcomes, "503")
			default:
				outcomes = append(outcomes, "ok")
			}
		}
		return outcomes
	}
	a, b := run(99), run(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: same seed diverged (%s vs %s)\na=%v\nb=%v", i, a[i], b[i], a, b)
		}
	}
	if strings.Count(strings.Join(a, ","), "connect") == 0 {
		t.Fatalf("seed 99 injected no connection failures in 40 requests at p=0.3: %v", a)
	}
}

func TestFaultInjectorConnectFailureIsTyped(t *testing.T) {
	srv := newTarget(t, "hello")
	fi := NewFaultInjector(nil, FaultConfig{Seed: 1, ConnectFailure: 1})
	_, _, err := get(t, &http.Client{Transport: fi}, srv.URL)
	if !errors.Is(err, ErrInjectedConnection) {
		t.Fatalf("err = %v, want ErrInjectedConnection in the chain", err)
	}
	if fi.Injected()["connect"] == 0 {
		t.Fatal("connect fault not counted")
	}
}

func TestFaultInjectorBlackout(t *testing.T) {
	srv := newTarget(t, "hello")
	fi := NewFaultInjector(nil, FaultConfig{Seed: 1})
	c := &http.Client{Transport: fi}
	if _, _, err := get(t, c, srv.URL); err != nil {
		t.Fatalf("before blackout: %v", err)
	}
	fi.BlackoutFor(200 * time.Millisecond)
	if _, _, err := get(t, c, srv.URL); !errors.Is(err, ErrInjectedConnection) {
		t.Fatalf("during blackout: err = %v, want ErrInjectedConnection", err)
	}
	time.Sleep(250 * time.Millisecond)
	if _, _, err := get(t, c, srv.URL); err != nil {
		t.Fatalf("after blackout: %v", err)
	}
	if fi.Injected()["blackout"] == 0 {
		t.Fatal("blackout fault not counted")
	}
}

func TestFaultInjectorPartitionIsAsymmetric(t *testing.T) {
	srvA := newTarget(t, "alpha")
	srvB := newTarget(t, "beta")
	fi := NewFaultInjector(nil, FaultConfig{Seed: 3})
	c := &http.Client{Transport: fi}

	hostA := strings.TrimPrefix(srvA.URL, "http://")
	fi.PartitionHosts(200*time.Millisecond, hostA)

	if _, _, err := get(t, c, srvA.URL); !errors.Is(err, ErrInjectedConnection) {
		t.Fatalf("partitioned host reachable: err = %v", err)
	}
	// The other side of the partition stays reachable — that is the
	// asymmetry a blackout cannot express.
	if _, body, err := get(t, c, srvB.URL); err != nil || body != "beta" {
		t.Fatalf("unpartitioned host: %q, %v", body, err)
	}
	if fi.Injected()["partition"] == 0 {
		t.Fatal("partition fault not counted")
	}

	fi.HealPartition()
	if _, body, err := get(t, c, srvA.URL); err != nil || body != "alpha" {
		t.Fatalf("after heal: %q, %v", body, err)
	}

	// Expiry lifts the partition without an explicit heal.
	fi.PartitionHosts(50*time.Millisecond, hostA)
	time.Sleep(80 * time.Millisecond)
	if _, _, err := get(t, c, srvA.URL); err != nil {
		t.Fatalf("after expiry: %v", err)
	}
}

func TestFaultInjectorServerErrorCarriesRetryAfter(t *testing.T) {
	srv := newTarget(t, "hello")
	fi := NewFaultInjector(nil, FaultConfig{Seed: 1, ServerError: 1})
	resp, _, err := get(t, &http.Client{Transport: fi}, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("injected 503 missing Retry-After header")
	}
}

func TestFaultInjectorTruncatesBody(t *testing.T) {
	const body = "0123456789abcdef"
	srv := newTarget(t, body)
	fi := NewFaultInjector(nil, FaultConfig{Seed: 1, TruncateBody: 1})
	_, got, err := get(t, &http.Client{Transport: fi}, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got != body[:len(body)/2] {
		t.Fatalf("body = %q, want the first half of %q", got, body)
	}
	if fi.Injected()["truncate"] == 0 {
		t.Fatal("truncate fault not counted")
	}
}

func TestFaultInjectorBlackholeRespectsContext(t *testing.T) {
	srv := newTarget(t, "hello")
	fi := NewFaultInjector(nil, FaultConfig{Seed: 1, Blackhole: 1, MaxHang: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = (&http.Client{Transport: fi}).Do(req)
	if err == nil {
		t.Fatal("blackholed request succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("blackhole ignored context cancellation (took %v)", elapsed)
	}
	if fi.Injected()["blackhole"] == 0 {
		t.Fatal("blackhole fault not counted")
	}
}
