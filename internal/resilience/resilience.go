// Package resilience provides the fault-tolerance building blocks of
// the distributed CSS deployment: a policy-driven retrier (capped
// exponential backoff with full jitter, a shared retry budget, and
// Retry-After awareness), a per-endpoint three-state circuit breaker, a
// durable store-backed outbox for producer-side publishes, and a
// deterministic fault-injecting http.RoundTripper for chaos testing.
//
// The paper's availability claim — detail messages "remain retrievable
// months later, even when the source system is offline" (§4) — assumes
// producers, the data controller and consumers fail and recover
// independently. The in-process bus has carried redelivery and a DLQ
// since the seed; this package gives the wire-level deployment the same
// properties. internal/transport wires these primitives through both
// remote paths (consumer/producer → controller, controller → producer
// gateway).
//
// Everything here is dependency-free beyond the repo's own store and
// telemetry packages, and near-zero-cost on the happy path: one mutex
// acquisition per breaker-guarded call, no allocation on a first-try
// success.
package resilience

import (
	"errors"
	"time"

	"repro/internal/telemetry"
)

// Errors reported by the package.
var (
	// ErrOpen reports a call rejected because the endpoint's circuit
	// breaker is open. The concrete error carries a RetryAfter hint (the
	// remaining cooldown before a half-open probe is allowed).
	ErrOpen = errors.New("resilience: circuit open")
	// ErrBudgetExhausted reports a retry suppressed because the shared
	// retry budget ran dry (retry storms must not amplify an outage).
	ErrBudgetExhausted = errors.New("resilience: retry budget exhausted")
)

// retryAfterHint is implemented by errors that know how long the caller
// should wait before retrying (HTTP 429/503 Retry-After, a breaker's
// remaining cooldown). The Retrier stretches its backoff to honor it.
type retryAfterHint interface {
	RetryAfter() time.Duration
}

// RetryAfterOf extracts a retry-after hint from anywhere in err's chain.
// It returns 0, false when no hint is present.
func RetryAfterOf(err error) (time.Duration, bool) {
	var h retryAfterHint
	if errors.As(err, &h) {
		return h.RetryAfter(), true
	}
	return 0, false
}

// retryableError marks an error as transient.
type retryableError struct {
	err        error
	retryAfter time.Duration
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }
func (e *retryableError) RetryAfter() time.Duration {
	return e.retryAfter
}

// MarkRetryable wraps err so Retryable reports true for it. A nil err
// returns nil.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}

// MarkRetryableAfter is MarkRetryable with an explicit server-supplied
// wait hint (e.g. a parsed Retry-After header).
func MarkRetryableAfter(err error, after time.Duration) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err, retryAfter: after}
}

// Retryable reports whether err is marked transient anywhere in its
// chain, or is a breaker rejection (which clears once the cooldown
// elapses, so waiting and retrying is meaningful).
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var re *retryableError
	return errors.As(err, &re) || errors.Is(err, ErrOpen)
}

// Metrics bundles the css_resilience_* instruments. A nil *Metrics is
// valid and records nothing, so library code can thread it through
// unconditionally.
type Metrics struct {
	retries      *telemetry.Counter // css_resilience_retries_total{op}
	breakerGauge *telemetry.Gauge   // css_resilience_breaker_state{endpoint}
	transitions  *telemetry.Counter // css_resilience_breaker_transitions_total{endpoint,to}
	outboxDepth  *telemetry.Gauge   // css_resilience_outbox_depth
	outboxOps    *telemetry.Counter // css_resilience_outbox_ops_total{op}
	faults       *telemetry.Counter // css_resilience_faults_injected_total{kind}
}

// NewMetrics registers the resilience instruments on reg. A nil registry
// returns a nil *Metrics (metrics disabled).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		retries: reg.Counter("css_resilience_retries_total",
			"Retry attempts after a transient failure, by operation.", "op"),
		breakerGauge: reg.Gauge("css_resilience_breaker_state",
			"Circuit breaker state by endpoint (0 closed, 1 half-open, 2 open).", "endpoint"),
		transitions: reg.Counter("css_resilience_breaker_transitions_total",
			"Circuit breaker state transitions, by endpoint and target state.", "endpoint", "to"),
		outboxDepth: reg.Gauge("css_resilience_outbox_depth",
			"Notifications queued in the durable publish outbox."),
		outboxOps: reg.Counter("css_resilience_outbox_ops_total",
			"Outbox operations (enqueue, drain, dedup, dead).", "op"),
		faults: reg.Counter("css_resilience_faults_injected_total",
			"Faults injected by the chaos RoundTripper, by kind.", "kind"),
	}
}

func (m *Metrics) retry(op string) {
	if m != nil {
		m.retries.Inc(op)
	}
}

func (m *Metrics) breakerState(endpoint string, s State) {
	if m != nil {
		m.breakerGauge.Set(float64(s), endpoint)
	}
}

func (m *Metrics) breakerTransition(endpoint string, to State) {
	if m != nil {
		m.transitions.Inc(endpoint, to.String())
	}
}

func (m *Metrics) outbox(op string, depth int) {
	if m != nil {
		m.outboxOps.Inc(op)
		m.outboxDepth.Set(float64(depth))
	}
}

func (m *Metrics) fault(kind string) {
	if m != nil {
		m.faults.Inc(kind)
	}
}
