package resilience

import (
	"context"

	"repro/internal/telemetry"
)

// TraceTransitions returns a BreakerConfig.OnTransition hook that
// records every breaker state change as an instantaneous
// "breaker.transition" span on tracer (attrs: breaker, from, to), then
// chains to next (which may be nil). Flow-side visibility comes from
// the retrier's "breaker.open" span events; this hook gives transitions
// their own timeline entry in css-trace even when no flow is in flight.
// It is non-blocking (a ring write plus a buffered export), as the
// breaker requires of transition observers.
func TraceTransitions(tracer *telemetry.Tracer, next func(name string, from, to State)) func(name string, from, to State) {
	return func(name string, from, to State) {
		_, span := tracer.StartSpan(context.Background(), "breaker.transition")
		span.SetAttr("breaker", name)
		span.SetAttr("from", from.String())
		span.SetAttr("to", to.String())
		span.End()
		if next != nil {
			next(name, from, to)
		}
	}
}
