package resilience

import (
	"fmt"
	"math/rand"
	"sync"
)

// FlakyDialer wraps a connection dialer with seeded failures: each
// attempt rolls against rate and answers a synthetic refusal instead of
// dialing when it loses. The replication chaos tests feed it to the WAL
// shipper's Dial so follower links drop and reconnect deterministically
// mid-storm; the generic type keeps it usable for any string-addressed
// transport.
func FlakyDialer[C any](seed int64, rate float64, dial func(addr string) (C, error)) func(addr string) (C, error) {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(addr string) (C, error) {
		mu.Lock()
		roll := rng.Float64()
		mu.Unlock()
		if roll < rate {
			var zero C
			return zero, fmt.Errorf("resilience: injected dial failure to %s", addr)
		}
		return dial(addr)
	}
}

// Partitioner gates a dialer by destination address: Block makes every
// subsequent dial to an address fail fast with a synthetic refusal (a
// network partition, as seen from this node) until Heal restores it.
// The election chaos storms cut candidate→voter links mid-campaign with
// it, without touching the OS network stack.
type Partitioner[C any] struct {
	mu      sync.Mutex
	blocked map[string]bool
	dial    func(addr string) (C, error)
}

// NewPartitioner wraps dial with an initially fully-healed partition
// gate.
func NewPartitioner[C any](dial func(addr string) (C, error)) *Partitioner[C] {
	return &Partitioner[C]{blocked: make(map[string]bool), dial: dial}
}

// Block cuts the link to each address.
func (p *Partitioner[C]) Block(addrs ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, a := range addrs {
		p.blocked[a] = true
	}
}

// Heal restores the link to each address.
func (p *Partitioner[C]) Heal(addrs ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, a := range addrs {
		delete(p.blocked, a)
	}
}

// Dial connects unless the destination is blocked.
func (p *Partitioner[C]) Dial(addr string) (C, error) {
	p.mu.Lock()
	cut := p.blocked[addr]
	p.mu.Unlock()
	if cut {
		var zero C
		return zero, fmt.Errorf("resilience: partitioned from %s", addr)
	}
	return p.dial(addr)
}
