package resilience

import (
	"fmt"
	"math/rand"
	"sync"
)

// FlakyDialer wraps a connection dialer with seeded failures: each
// attempt rolls against rate and answers a synthetic refusal instead of
// dialing when it loses. The replication chaos tests feed it to the WAL
// shipper's Dial so follower links drop and reconnect deterministically
// mid-storm; the generic type keeps it usable for any string-addressed
// transport.
func FlakyDialer[C any](seed int64, rate float64, dial func(addr string) (C, error)) func(addr string) (C, error) {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(addr string) (C, error) {
		mu.Lock()
		roll := rng.Float64()
		mu.Unlock()
		if roll < rate {
			var zero C
			return zero, fmt.Errorf("resilience: injected dial failure to %s", addr)
		}
		return dial(addr)
	}
}
