package resilience

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ErrInjectedConnection is the transport error synthesized for injected
// connection refusals and blackouts (distinguishable from real network
// failures in test output).
var ErrInjectedConnection = errors.New("resilience: injected connection failure")

// FaultConfig configures a FaultInjector. Probabilities are evaluated
// independently per request in a fixed order (blackout, connection,
// blackhole, latency, then — on the response side — server error and
// truncation), all drawn from one seeded stream.
type FaultConfig struct {
	// Seed makes the fault stream reproducible. Zero seeds from the
	// clock (and the chaos harness logs the chosen seed).
	Seed int64
	// ConnectFailure is the probability a request fails like a refused
	// connection before reaching the server.
	ConnectFailure float64
	// Blackhole is the probability a request hangs (never answered)
	// until its context is cancelled or MaxHang elapses.
	Blackhole float64
	// MaxHang bounds a blackholed request when the caller's context has
	// no deadline. Zero means 30s.
	MaxHang time.Duration
	// Latency is the probability a request is delayed by a uniform
	// duration in [0, MaxLatency] before being forwarded.
	Latency float64
	// MaxLatency bounds injected delays. Zero means 50ms.
	MaxLatency time.Duration
	// ServerError is the probability a successfully forwarded request's
	// response is replaced by a synthesized 503 carrying a Retry-After.
	ServerError float64
	// TruncateBody is the probability a successful response's body is
	// cut to half its length (exercising decode-failure handling).
	TruncateBody float64
	// Metrics counts injected faults. Nil disables.
	Metrics *Metrics
}

// FaultInjector is an http.RoundTripper that injects faults in front of
// a real transport: connection refusals, blackholes, latency, 5xx
// responses, truncated bodies — plus an explicitly scripted blackout
// window during which every request fails at connect (the "controller
// down for N seconds" scenario). Deterministically seeded; safe for
// concurrent use (decisions are drawn from one locked stream).
type FaultInjector struct {
	next http.RoundTripper
	cfg  FaultConfig

	mu            sync.Mutex // guards rng, counts, blackoutUntil, partitioned
	rng           *rand.Rand
	counts        map[string]uint64
	blackoutUntil time.Time
	// partitioned maps a host (as it appears in request URLs) to the
	// instant its scripted partition lifts — the asymmetric variant of
	// a blackout: only requests TOWARD these hosts fail, traffic to
	// every other host flows untouched.
	partitioned map[string]time.Time
}

// NewFaultInjector wraps next (nil means http.DefaultTransport).
func NewFaultInjector(next http.RoundTripper, cfg FaultConfig) *FaultInjector {
	if next == nil {
		next = http.DefaultTransport
	}
	if cfg.Seed == 0 {
		cfg.Seed = time.Now().UnixNano()
	}
	if cfg.MaxHang <= 0 {
		cfg.MaxHang = 30 * time.Second
	}
	if cfg.MaxLatency <= 0 {
		cfg.MaxLatency = 50 * time.Millisecond
	}
	return &FaultInjector{
		next:   next,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		counts: make(map[string]uint64),
	}
}

// Seed returns the seed the injector runs with (for failure logs).
func (f *FaultInjector) Seed() int64 { return f.cfg.Seed }

// BlackoutFor makes every request fail at connect for the duration — a
// scripted total outage of the far side, independent of the
// probabilistic faults.
func (f *FaultInjector) BlackoutFor(d time.Duration) {
	f.mu.Lock()
	f.blackoutUntil = time.Now().Add(d)
	f.mu.Unlock()
}

// blackedOut reports whether a scripted blackout is in effect.
func (f *FaultInjector) blackedOut() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return time.Now().Before(f.blackoutUntil)
}

// PartitionHosts cuts the network toward the named hosts (request URL
// host, e.g. "127.0.0.1:9001") for the duration: requests addressed to
// them fail at connect while every other destination keeps working —
// an asymmetric partition, as opposed to BlackoutFor's total outage.
// Calling again extends or adds hosts; HealPartition lifts them early.
func (f *FaultInjector) PartitionHosts(d time.Duration, hosts ...string) {
	until := time.Now().Add(d)
	f.mu.Lock()
	if f.partitioned == nil {
		f.partitioned = make(map[string]time.Time, len(hosts))
	}
	for _, h := range hosts {
		f.partitioned[h] = until
	}
	f.mu.Unlock()
}

// HealPartition lifts every scripted partition immediately.
func (f *FaultInjector) HealPartition() {
	f.mu.Lock()
	f.partitioned = nil
	f.mu.Unlock()
}

// partitionedFrom reports whether host is currently unreachable.
func (f *FaultInjector) partitionedFrom(host string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	until, ok := f.partitioned[host]
	return ok && time.Now().Before(until)
}

// roll draws one uniform [0,1) decision from the seeded stream.
func (f *FaultInjector) roll() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64()
}

// span draws a uniform duration in [0, max].
func (f *FaultInjector) span(max time.Duration) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return time.Duration(f.rng.Int63n(int64(max) + 1))
}

// note counts one injected fault of the kind.
func (f *FaultInjector) note(kind string) {
	f.cfg.Metrics.fault(kind)
	f.mu.Lock()
	f.counts[kind]++
	f.mu.Unlock()
}

// Injected snapshots the per-kind injected-fault counts.
func (f *FaultInjector) Injected() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]uint64, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// RoundTrip implements http.RoundTripper.
func (f *FaultInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.blackedOut() {
		f.note("blackout")
		return nil, fmt.Errorf("%w: %s %s (blackout)", ErrInjectedConnection, req.Method, req.URL.Path)
	}
	if f.partitionedFrom(req.URL.Host) {
		f.note("partition")
		return nil, fmt.Errorf("%w: %s %s (partitioned from %s)", ErrInjectedConnection, req.Method, req.URL.Path, req.URL.Host)
	}
	if p := f.cfg.ConnectFailure; p > 0 && f.roll() < p {
		f.note("connect")
		return nil, fmt.Errorf("%w: %s %s", ErrInjectedConnection, req.Method, req.URL.Path)
	}
	if p := f.cfg.Blackhole; p > 0 && f.roll() < p {
		f.note("blackhole")
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(f.cfg.MaxHang):
			return nil, fmt.Errorf("%w: %s %s (blackhole)", ErrInjectedConnection, req.Method, req.URL.Path)
		}
	}
	if p := f.cfg.Latency; p > 0 && f.roll() < p {
		f.note("latency")
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(f.span(f.cfg.MaxLatency)):
		}
	}
	resp, err := f.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if p := f.cfg.ServerError; p > 0 && f.roll() < p {
		f.note("5xx")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		body := "injected 503\n"
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      resp.Proto, ProtoMajor: resp.ProtoMajor, ProtoMinor: resp.ProtoMinor,
			Header: http.Header{
				"Content-Type": []string{"text/plain; charset=utf-8"},
				"Retry-After":  []string{"0"},
			},
			Body:          io.NopCloser(bytes.NewBufferString(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	if p := f.cfg.TruncateBody; p > 0 && resp.StatusCode < 300 && f.roll() < p {
		f.note("truncate")
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		cut := data[:len(data)/2]
		resp.Body = io.NopCloser(bytes.NewReader(cut))
		resp.ContentLength = int64(len(cut))
		resp.Header.Set("Content-Length", strconv.Itoa(len(cut)))
	}
	return resp, nil
}
