package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// openAt fills a fresh store with n sequential puts and returns it plus
// the record-boundary offsets after each put (offsets[i] is the WAL end
// after put i).
func openAt(t *testing.T, path string, n int) (*Store, []int64) {
	t.Helper()
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	offsets := make([]int64, n)
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("value-%03d", i))); err != nil {
			t.Fatal(err)
		}
		offsets[i] = s.WALOffset()
	}
	return s, offsets
}

func TestTruncateWALRebuildsState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.wal")
	s, offsets := openAt(t, path, 8)
	defer s.Close()
	genBefore := s.WALGen()

	// Cut back to just after put 4: puts 5..7 must vanish from memory
	// and from the file.
	if err := s.TruncateWAL(offsets[4]); err != nil {
		t.Fatal(err)
	}
	if got := s.WALOffset(); got != offsets[4] {
		t.Fatalf("WALOffset after truncate = %d, want %d", got, offsets[4])
	}
	if got := s.WALSynced(); got != offsets[4] {
		t.Fatalf("WALSynced after truncate = %d, want %d", got, offsets[4])
	}
	if gen := s.WALGen(); gen != genBefore+1 {
		t.Fatalf("WALGen = %d, want %d (truncation must invalidate cursors)", gen, genBefore+1)
	}
	for i := 0; i < 8; i++ {
		_, ok, err := s.Get(fmt.Sprintf("key-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		if want := i <= 4; ok != want {
			t.Fatalf("key-%03d present = %v, want %v", i, ok, want)
		}
	}
	// A stale-generation reader must fail loudly, not read rewritten bytes.
	if _, err := s.ReadWAL(genBefore, 0, 1<<20); !errors.Is(err, ErrWALRotated) {
		t.Fatalf("stale ReadWAL err = %v, want ErrWALRotated", err)
	}

	// New appends land after the cut and survive a reopen.
	if err := s.Put("post-truncate", []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok, _ := re.Get("key-007"); ok {
		t.Fatal("truncated key resurrected after reopen")
	}
	if _, ok, _ := re.Get("post-truncate"); !ok {
		t.Fatal("post-truncate append lost after reopen")
	}
}

func TestTruncateWALRejectsMidRecordOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.wal")
	s, offsets := openAt(t, path, 3)
	defer s.Close()
	if err := s.TruncateWAL(offsets[1] + 3); err == nil {
		t.Fatal("TruncateWAL accepted a mid-record offset")
	}
	if err := s.TruncateWAL(offsets[2] + 10); err == nil {
		t.Fatal("TruncateWAL accepted an offset past the log end")
	}
}

func TestDigestWALLocatesFirstDivergence(t *testing.T) {
	dir := t.TempDir()
	a, offsetsA := openAt(t, filepath.Join(dir, "a.wal"), 6)
	defer a.Close()
	b, err := Open(filepath.Join(dir, "b.wal"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// b replicates a's first 4 records verbatim, then diverges with its
	// own writes — the deposed-primary shape.
	seg, err := a.ReadWAL(a.WALGen(), 0, int(offsetsA[3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ApplyWALSegment(0, seg); err != nil {
		t.Fatal(err)
	}
	divergeAt := b.WALOffset()
	if divergeAt != offsetsA[3] {
		t.Fatalf("replicated prefix ends at %d, want %d", divergeAt, offsetsA[3])
	}
	if err := b.Put("rogue", []byte("unreplicated suffix")); err != nil {
		t.Fatal(err)
	}

	// Whole-prefix CRC over the common range agrees; over b's full log
	// it cannot be computed against a shorter... both logs happen to be
	// comparable over [0, divergeAt) only.
	ca, err := a.CRCWAL(a.WALGen(), 0, divergeAt)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.CRCWAL(b.WALGen(), 0, divergeAt)
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Fatalf("prefix CRCs differ over identical bytes: %08x vs %08x", ca, cb)
	}

	// The digest walk pinpoints the divergence at record granularity.
	da, err := a.DigestWAL(a.WALGen(), 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.DigestWAL(b.WALGen(), 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	common := int64(0)
	for i := 0; i < len(da) && i < len(db); i++ {
		if da[i].End != db[i].End || da[i].CRC != db[i].CRC {
			break
		}
		common = da[i].End
	}
	if common != divergeAt {
		t.Fatalf("digest walk found common prefix %d, want %d", common, divergeAt)
	}

	// Truncating b to the common prefix and re-shipping from there makes
	// the logs byte-identical.
	if err := b.TruncateWAL(common); err != nil {
		t.Fatal(err)
	}
	rest, err := a.ReadWAL(a.WALGen(), common, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ApplyWALSegment(common, rest); err != nil {
		t.Fatal(err)
	}
	fa, _ := a.CRCWAL(a.WALGen(), 0, a.WALOffset())
	fb, _ := b.CRCWAL(b.WALGen(), 0, b.WALOffset())
	if a.WALOffset() != b.WALOffset() || fa != fb {
		t.Fatalf("logs not identical after rejoin: a=(%d,%08x) b=(%d,%08x)",
			a.WALOffset(), fa, b.WALOffset(), fb)
	}
	if _, ok, _ := b.Get("rogue"); ok {
		t.Fatal("unreplicated suffix survived the truncate")
	}
}

func TestDigestWALMaxCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.wal")
	s, offsets := openAt(t, path, 5)
	defer s.Close()
	ds, err := s.DigestWAL(s.WALGen(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds[1].End != offsets[1] {
		t.Fatalf("capped digest walk = %+v, want 2 records through %d", ds, offsets[1])
	}
	// Resume from the last end; the remainder is short.
	rest, err := s.DigestWAL(s.WALGen(), ds[1].End, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 3 || rest[2].End != offsets[4] {
		t.Fatalf("resumed digest walk = %+v, want 3 records through %d", rest, offsets[4])
	}
}
