package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// Replication support: a primary's WAL is shipped to followers as the
// raw checksummed records it already writes, identified by (generation,
// byte offset). The follower appends the same bytes to its own log and
// applies the mutations to memory, so its WAL stays a byte-identical
// prefix of the primary's — catch-up after a reconnect is just "resume
// from my offset". Compaction rewrites the log file and would silently
// invalidate every shipped offset, so it bumps a generation counter and
// readers holding the old generation get ErrWALRotated instead of
// garbage (replicated stores are expected to run with compaction off).

// ErrWALRotated reports that the WAL file was rewritten (compacted)
// since the reader captured its generation, invalidating byte offsets.
var ErrWALRotated = errors.New("store: wal rotated under replication reader")

// ErrNoWAL reports a replication operation on an in-memory store.
var ErrNoWAL = errors.New("store: in-memory store has no wal")

// WALOffset returns the current end of the WAL in bytes — everything
// below it is readable via ReadWAL. Offsets always fall on record
// boundaries. In-memory stores report 0.
func (s *Store) WALOffset() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.log == nil {
		return 0
	}
	return s.log.flushed.Load()
}

// WALGen returns the WAL file generation, bumped on every compaction.
// Pair it with WALOffset when establishing a replication cursor.
func (s *Store) WALGen() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// WatchWAL registers ch for edge-triggered append notifications: after
// every durable append a token is sent without blocking (ch should have
// capacity 1; a full channel means a wakeup is already pending, which
// is all an edge trigger needs). The watcher reads ReadWAL until empty
// and then waits on ch again.
func (s *Store) WatchWAL(ch chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watchers = append(s.watchers, ch)
}

// UnwatchWAL removes a channel registered with WatchWAL.
func (s *Store) UnwatchWAL(ch chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, w := range s.watchers {
		if w == ch {
			s.watchers = append(s.watchers[:i], s.watchers[i+1:]...)
			return
		}
	}
}

// notifyWatchersLocked wakes registered WAL watchers; the store lock
// must be held. Sends never block: a full channel already carries the
// wakeup.
func (s *Store) notifyWatchersLocked() {
	for _, ch := range s.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// ReadWAL returns raw WAL bytes starting at byte offset from, trimmed
// to whole records and at most maxBytes long (a single record larger
// than maxBytes is returned whole). A nil slice with nil error means
// the reader is caught up. gen must be the generation the cursor was
// established under; a compaction since then yields ErrWALRotated, as
// does an offset beyond the log end.
func (s *Store) ReadWAL(gen uint64, from int64, maxBytes int) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.log == nil {
		return nil, ErrNoWAL
	}
	if gen != s.gen || from > s.log.flushed.Load() {
		return nil, ErrWALRotated
	}
	limit := s.log.flushed.Load()
	if from == limit {
		return nil, nil
	}
	n := limit - from
	if int64(maxBytes) < n {
		n = int64(maxBytes)
	}
	buf := make([]byte, n)
	if _, err := s.log.f.ReadAt(buf, from); err != nil {
		return nil, fmt.Errorf("store: wal read at %d: %w", from, err)
	}
	// Trim to whole records; flushed is always a record boundary, so a
	// short cut can only come from the maxBytes cap.
	var end int64
	for end+8 <= int64(len(buf)) {
		rl := int64(binary.LittleEndian.Uint32(buf[end : end+4]))
		if rl <= 0 || end+8+rl > int64(len(buf)) {
			break
		}
		end += 8 + rl
	}
	if end > 0 {
		return buf[:end], nil
	}
	// First record alone exceeds maxBytes: return it whole.
	rl := int64(binary.LittleEndian.Uint32(buf[0:4]))
	if rl <= 0 || from+8+rl > limit {
		return nil, fmt.Errorf("%w at offset %d: record overruns flushed boundary", ErrCorrupt, from)
	}
	big := make([]byte, 8+rl)
	if _, err := s.log.f.ReadAt(big, from); err != nil {
		return nil, fmt.Errorf("store: wal read at %d: %w", from, err)
	}
	return big, nil
}

// ApplyWALSegment applies a replicated segment — whole records read by
// ReadWAL from a primary's log at the same offset — to this store: the
// raw bytes are appended to the local WAL verbatim and the decoded
// mutations applied to memory, keeping the local log a byte-identical
// prefix of the primary's. from must equal the current WAL offset
// (contiguity); every record's checksum is verified before anything is
// applied, and a failure rejects the whole segment with ErrCorrupt.
// Returns the new WAL offset.
func (s *Store) ApplyWALSegment(from int64, seg []byte) (int64, error) {
	if len(seg) == 0 {
		return s.WALOffset(), nil
	}
	var muts []walRecord
	off := 0
	for off < len(seg) {
		if off+8 > len(seg) {
			return 0, fmt.Errorf("%w: truncated segment header", ErrCorrupt)
		}
		n := int(binary.LittleEndian.Uint32(seg[off : off+4]))
		want := binary.LittleEndian.Uint32(seg[off+4 : off+8])
		if n <= 0 || off+8+n > len(seg) {
			return 0, fmt.Errorf("%w: segment record overruns segment", ErrCorrupt)
		}
		payload := seg[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != want {
			return 0, fmt.Errorf("%w: replicated record checksum at segment offset %d", ErrCorrupt, off)
		}
		if err := replayPayload(payload, func(r walRecord) error {
			muts = append(muts, r)
			return nil
		}); err != nil {
			return 0, err
		}
		off += 8 + n
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.log == nil {
		return 0, ErrNoWAL
	}
	if from != s.log.size {
		return 0, fmt.Errorf("store: wal apply at offset %d, log is at %d", from, s.log.size)
	}
	if _, err := s.log.w.Write(seg); err != nil {
		return 0, fmt.Errorf("store: wal apply: %w", err)
	}
	if err := s.log.w.Flush(); err != nil {
		return 0, fmt.Errorf("store: wal apply flush: %w", err)
	}
	s.log.size += int64(len(seg))
	s.log.flushed.Store(s.log.size)
	for _, r := range muts {
		switch r.op {
		case opPut:
			if old, existed := s.list.put(r.key, r.value); existed {
				s.liveBytes -= int64(len(r.key) + len(old))
			}
			s.liveBytes += int64(len(r.key) + len(r.value))
		case opDel:
			if v, ok := s.list.del(r.key); ok {
				s.liveBytes -= int64(len(r.key) + len(v))
			}
		}
	}
	s.notifyWatchersLocked()
	return s.log.size, nil
}

// WALSynced returns the number of WAL bytes known durable (fsynced) —
// the follower's crash-safe applied-offset checkpoint. Always ≤
// WALOffset; in-memory stores report 0.
func (s *Store) WALSynced() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.log == nil {
		return 0
	}
	synced := s.log.synced.Load()
	if flushed := s.log.flushed.Load(); synced > flushed {
		// close() parks synced at MaxInt64; never report past the log end.
		synced = flushed
	}
	return synced
}

// CRCWAL returns the CRC-32 (IEEE) of the raw WAL bytes [from, to) —
// the cheap whole-prefix comparison a rejoining node's handshake runs
// before falling back to the record-by-record digest walk. Offsets need
// not be record boundaries (the CRC is over raw bytes), but to must not
// exceed the flushed end.
func (s *Store) CRCWAL(gen uint64, from, to int64) (uint32, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.log == nil {
		return 0, ErrNoWAL
	}
	if gen != s.gen || from < 0 || to < from || to > s.log.flushed.Load() {
		return 0, ErrWALRotated
	}
	crc := uint32(0)
	buf := make([]byte, 256<<10)
	for off := from; off < to; {
		n := to - off
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		if _, err := s.log.f.ReadAt(buf[:n], off); err != nil {
			return 0, fmt.Errorf("store: wal crc read at %d: %w", off, err)
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:n])
		off += n
	}
	return crc, nil
}

// WALRecordDigest identifies one WAL record by the byte offset just
// past it and the CRC-32 of its framed bytes (header + payload). Two
// logs whose digest sequences agree through offset X are byte-identical
// through X.
type WALRecordDigest struct {
	End int64
	CRC uint32
}

// DigestWAL scans whole records starting at byte offset from (a record
// boundary), returning at most max digests. A short or empty result
// means the scan reached the flushed end of the log. The new primary
// walks a rejoining node's digests against its own to locate the first
// divergent record — the same record-by-record comparison `css-audit
// -compare` runs over audit chains.
func (s *Store) DigestWAL(gen uint64, from int64, max int) ([]WALRecordDigest, error) {
	if max <= 0 {
		return nil, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.log == nil {
		return nil, ErrNoWAL
	}
	limit := s.log.flushed.Load()
	if gen != s.gen || from < 0 || from > limit {
		return nil, ErrWALRotated
	}
	var out []WALRecordDigest
	header := make([]byte, 8)
	var payload []byte
	for off := from; off < limit && len(out) < max; {
		if _, err := s.log.f.ReadAt(header, off); err != nil {
			return nil, fmt.Errorf("store: wal digest read at %d: %w", off, err)
		}
		n := int64(binary.LittleEndian.Uint32(header[0:4]))
		if n <= 0 || off+8+n > limit {
			return nil, fmt.Errorf("%w at offset %d: record overruns flushed boundary", ErrCorrupt, off)
		}
		payload = sizedBuf(payload, int(n))
		if _, err := s.log.f.ReadAt(payload, off+8); err != nil {
			return nil, fmt.Errorf("store: wal digest read at %d: %w", off+8, err)
		}
		crc := crc32.Update(crc32.ChecksumIEEE(header), crc32.IEEETable, payload)
		off += 8 + n
		out = append(out, WALRecordDigest{End: off, CRC: crc})
	}
	return out, nil
}

// TruncateWAL discards every WAL byte at or beyond offset — a record
// boundary — and rebuilds the in-memory state from the surviving
// prefix. This is the rejoin path for a deposed primary: the suffix it
// wrote under its old epoch was never replicated, the new primary's
// history has diverged from it, and the only safe move is to cut back
// to the common prefix and re-follow. The truncation is fsynced before
// returning and the WAL generation is bumped so replication cursors
// established before the cut fail with ErrWALRotated instead of reading
// rewritten history.
func (s *Store) TruncateWAL(offset int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.log == nil {
		return ErrNoWAL
	}
	if offset < 0 || offset > s.log.size {
		return fmt.Errorf("store: truncate wal to %d, log is at %d", offset, s.log.size)
	}
	if offset == s.log.size {
		return nil
	}
	if err := s.log.close(); err != nil {
		s.closed = true
		return fmt.Errorf("store: truncate wal: close: %w", err)
	}
	s.log = nil
	if err := os.Truncate(s.path, offset); err != nil {
		s.closed = true
		return fmt.Errorf("store: truncate wal: %w", err)
	}
	// Rebuild memory from the surviving prefix, exactly like Open.
	s.list = newSkipList(nextSeed())
	s.liveBytes = 0
	validLen, err := replayWAL(s.path, func(r walRecord) error {
		switch r.op {
		case opPut:
			if old, existed := s.list.put(r.key, r.value); existed {
				s.liveBytes -= int64(len(r.key) + len(old))
			}
			s.liveBytes += int64(len(r.key) + len(r.value))
		case opDel:
			if v, ok := s.list.del(r.key); ok {
				s.liveBytes -= int64(len(r.key) + len(v))
			}
		}
		return nil
	})
	if err != nil {
		s.closed = true
		return fmt.Errorf("store: truncate wal: replay: %w", err)
	}
	if validLen != offset {
		s.closed = true
		return fmt.Errorf("%w: truncate target %d is not a record boundary (replay stops at %d)", ErrCorrupt, offset, validLen)
	}
	log, err := openWAL(s.path, s.opts.SyncEvery)
	if err != nil {
		s.closed = true
		return err
	}
	if err := log.f.Sync(); err != nil {
		log.close()
		s.closed = true
		return fmt.Errorf("store: truncate wal: sync: %w", err)
	}
	log.synced.Store(offset)
	s.log = log
	s.gen++
	return nil
}

// SyncWAL fsyncs the log through its current end — the follower's
// durability point before acknowledging replicated segments. Uses the
// same group commit as the write path, so concurrent callers share one
// fsync.
func (s *Store) SyncWAL() error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	lg := s.log
	var target int64
	if lg != nil {
		target = lg.flushed.Load()
	}
	s.mu.RUnlock()
	if lg == nil {
		return nil
	}
	return lg.syncTo(target)
}
