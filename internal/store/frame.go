package store

import (
	"encoding/binary"
	"hash/crc32"
)

// Batch frame export: the reshard handoff (internal/cluster) ships a
// donor shard's moved keys to the recipient as the same checksummed
// batch frames the WAL persists, so the receiving side replays them
// through one hardened decode path. EncodeFrame/DecodeBatchFrame are
// the portable form of that frame — identical bytes to what
// appendBatch writes to the log: [4]payload-len [4]CRC-32(IEEE)
// [payload], payload = opBatch, count, mutations.

// EncodeFrame renders the batch as one standalone checksummed WAL
// batch frame. The frame is self-delimiting and CRC-protected, so a
// receiver detects truncation or corruption before applying anything.
func (b *Batch) EncodeFrame() []byte {
	return encodeBatch(nil, b.ops)
}

// DecodeBatchFrame parses a frame produced by EncodeFrame back into a
// Batch, validating length and checksum first; torn or tampered frames
// return ErrCorrupt and no partial batch. Trailing bytes after the
// framed payload are rejected.
func DecodeBatchFrame(frame []byte) (*Batch, error) {
	if len(frame) < 8 {
		return nil, ErrCorrupt
	}
	n := int64(binary.LittleEndian.Uint32(frame[0:4]))
	want := binary.LittleEndian.Uint32(frame[4:8])
	if n <= 0 || 8+n != int64(len(frame)) {
		return nil, ErrCorrupt
	}
	payload := frame[8:]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, ErrCorrupt
	}
	b := &Batch{}
	if err := replayPayload(payload, func(r walRecord) error {
		b.ops = append(b.ops, r)
		return nil
	}); err != nil {
		return nil, err
	}
	return b, nil
}
