package store

import "errors"

// Batch accumulates puts and deletes to be applied atomically by
// Store.Apply: one lock acquisition and one checksummed WAL frame for
// the whole set, so a crash can never persist a prefix of it. A Batch is
// not safe for concurrent use; Reset makes it reusable.
type Batch struct {
	ops []walRecord
}

// Put queues storing value under key. The value is copied, so the caller
// may reuse its slice immediately.
func (b *Batch) Put(key string, value []byte) {
	b.ops = append(b.ops, walRecord{op: opPut, key: key, value: append([]byte(nil), value...)})
}

// Delete queues removing key. Deleting an absent key is a no-op at apply
// time, mirroring Store.Delete.
func (b *Batch) Delete(key string) {
	b.ops = append(b.ops, walRecord{op: opDel, key: key})
}

// Len returns the number of queued mutations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset empties the batch, retaining its capacity for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Apply executes the batch atomically: every mutation becomes visible
// together, backed by a single WAL frame that replays all-or-nothing
// after a crash. Mutations apply in order, so a later Put of a key wins
// over an earlier one in the same batch. An empty batch is a no-op.
func (s *Store) Apply(b *Batch) error {
	if b == nil || len(b.ops) == 0 {
		return nil
	}
	for _, op := range b.ops {
		if op.key == "" {
			return errors.New("store: empty key in batch")
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.log != nil {
		if err := s.log.appendBatch(b.ops); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	for _, op := range b.ops {
		switch op.op {
		case opPut:
			if old, ok := s.list.get(op.key); ok {
				s.liveBytes -= int64(len(op.key) + len(old))
			}
			s.list.put(op.key, op.value)
			s.liveBytes += int64(len(op.key) + len(op.value))
		case opDel:
			if old, ok := s.list.get(op.key); ok {
				s.liveBytes -= int64(len(op.key) + len(old))
				s.list.del(op.key)
			}
		}
	}
	err := s.maybeCompactLocked()
	lg, target := s.syncTargetLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return syncIfNeeded(lg, target)
}
