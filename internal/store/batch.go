package store

// Batch accumulates puts and deletes to be applied atomically by
// Store.Apply: one lock acquisition and one checksummed WAL frame for
// the whole set, so a crash can never persist a prefix of it. A Batch is
// not safe for concurrent use; Reset makes it reusable.
type Batch struct {
	ops []walRecord
}

// Put queues storing value under key. The value is copied, so the caller
// may reuse its slice immediately.
func (b *Batch) Put(key string, value []byte) {
	b.ops = append(b.ops, walRecord{op: opPut, key: key, value: append([]byte(nil), value...)})
}

// PutOwned queues storing value under key without copying it: ownership
// of the slice transfers to the store, which keeps it in memory and in
// the WAL frame. The caller must not read or write the slice afterwards.
// Hot paths that build the value per call (so it is never reused) use
// this to skip the defensive copy Put makes.
func (b *Batch) PutOwned(key string, value []byte) {
	b.ops = append(b.ops, walRecord{op: opPut, key: key, value: value})
}

// Delete queues removing key. Deleting an absent key is a no-op at apply
// time, mirroring Store.Delete.
func (b *Batch) Delete(key string) {
	b.ops = append(b.ops, walRecord{op: opDel, key: key})
}

// Len returns the number of queued mutations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset empties the batch, retaining its capacity for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Apply executes the batch atomically: every mutation becomes visible
// together, backed by a single WAL frame that replays all-or-nothing
// after a crash. Mutations apply in order, so a later Put of a key wins
// over an earlier one in the same batch. An empty batch is a no-op.
//
// Apply is StageApply followed immediately by the commit barrier; use
// StageApply directly to overlap the fsync with other work.
func (s *Store) Apply(b *Batch) error {
	c, err := s.StageApply(b)
	if err != nil {
		return err
	}
	return c.Wait()
}
