package store

import "errors"

// Commit is the durability barrier returned by StageApply: the staged
// mutations are already visible in memory and appended to the WAL, but
// the fsync that makes them crash-durable may still be outstanding. Wait
// blocks until the WAL is synced at least up to the staged frame.
//
// This splits group commit in two so callers can overlap the fsync with
// other work (the controller runs bus fan-out while the index/audit
// frame syncs) and still enforce ordering: ack only after Wait returns.
// The zero Commit is valid and already durable (in-memory stores and
// stores without SyncEvery have no fsync on the write path).
type Commit struct {
	lg     *wal
	target int64
}

// Wait blocks until every byte of the staged frame is fsynced, sharing
// the sync with any concurrent writer that got there first (group
// commit). It is a no-op when nothing is pending.
func (c Commit) Wait() error { return syncIfNeeded(c.lg, c.target) }

// Pending reports whether an fsync barrier is still outstanding. Callers
// use it to decide whether kicking the sync early (in a helper
// goroutine) is worth anything.
func (c Commit) Pending() bool {
	return c.lg != nil && c.lg.synced.Load() < c.target
}

// StagePut is Put with the commit barrier made explicit and without the
// defensive value copy: ownership of value transfers to the store (the
// caller must not touch the slice afterwards). The returned Commit's
// Wait is the durability barrier. Hot single-key writers (the audit
// chain) use this to overlap the fsync with downstream work.
func (s *Store) StagePut(key string, value []byte) (Commit, error) {
	if key == "" {
		return Commit{}, errors.New("store: empty key")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Commit{}, ErrClosed
	}
	if s.log != nil {
		if err := s.log.append(walRecord{op: opPut, key: key, value: value}); err != nil {
			s.mu.Unlock()
			return Commit{}, err
		}
	}
	if old, existed := s.list.put(key, value); existed {
		s.liveBytes -= int64(len(key) + len(old))
	}
	s.liveBytes += int64(len(key) + len(value))
	s.notifyWatchersLocked()
	err := s.maybeCompactLocked()
	lg, target := s.syncTargetLocked()
	s.mu.Unlock()
	if err != nil {
		return Commit{}, err
	}
	return Commit{lg: lg, target: target}, nil
}

// StageApply is Apply with the commit barrier made explicit: it appends
// the batch as one checksummed WAL frame and applies it to memory under
// the store lock, but returns before fsyncing. The returned Commit's
// Wait is the durability barrier the caller must reach before acking
// anything that depends on the batch.
//
// Crash semantics are unchanged from Apply: the frame replays
// all-or-nothing, and a crash between StageApply and Wait may lose the
// whole frame — which is why acks must wait.
func (s *Store) StageApply(b *Batch) (Commit, error) {
	if b == nil || len(b.ops) == 0 {
		return Commit{}, nil
	}
	for _, op := range b.ops {
		if op.key == "" {
			return Commit{}, errors.New("store: empty key in batch")
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Commit{}, ErrClosed
	}
	if s.log != nil {
		if err := s.log.appendBatch(b.ops); err != nil {
			s.mu.Unlock()
			return Commit{}, err
		}
	}
	for _, op := range b.ops {
		switch op.op {
		case opPut:
			// put reports the displaced value from the same traversal
			// that placed the node — no separate lookup for accounting.
			if old, existed := s.list.put(op.key, op.value); existed {
				s.liveBytes -= int64(len(op.key) + len(old))
			}
			s.liveBytes += int64(len(op.key) + len(op.value))
		case opDel:
			if old, ok := s.list.del(op.key); ok {
				s.liveBytes -= int64(len(op.key) + len(old))
			}
		}
	}
	s.notifyWatchersLocked()
	err := s.maybeCompactLocked()
	lg, target := s.syncTargetLocked()
	s.mu.Unlock()
	if err != nil {
		return Commit{}, err
	}
	return Commit{lg: lg, target: target}, nil
}
