package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestBatchApply(t *testing.T) {
	s, _ := openTemp(t, Options{})
	s.Put("stale", []byte("old"))

	var b Batch
	b.Put("k1", []byte("v1"))
	b.Put("k2", []byte("v2"))
	b.Delete("stale")
	b.Put("k1", []byte("v1-final")) // later op on the same key wins
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	if err := s.Apply(&b); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if v, ok, _ := s.Get("k1"); !ok || string(v) != "v1-final" {
		t.Errorf("k1 = %q, %v", v, ok)
	}
	if v, ok, _ := s.Get("k2"); !ok || string(v) != "v2" {
		t.Errorf("k2 = %q, %v", v, ok)
	}
	if _, ok, _ := s.Get("stale"); ok {
		t.Error("deleted key survived the batch")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Errorf("Len after Reset = %d", b.Len())
	}
	if err := s.Apply(&b); err != nil {
		t.Errorf("Apply(empty) = %v", err)
	}
	if err := s.Apply(nil); err != nil {
		t.Errorf("Apply(nil) = %v", err)
	}
}

func TestBatchCopiesValues(t *testing.T) {
	s := OpenMemory()
	var b Batch
	in := []byte("abc")
	b.Put("k", in)
	in[0] = 'X' // caller reuses its slice before Apply
	if err := s.Apply(&b); err != nil {
		t.Fatal(err)
	}
	v, _, _ := s.Get("k")
	if string(v) != "abc" {
		t.Errorf("batch value aliases caller slice: %q", v)
	}
}

func TestBatchEmptyKeyRejected(t *testing.T) {
	s := OpenMemory()
	var b Batch
	b.Put("ok", []byte("v"))
	b.Put("", []byte("v"))
	if err := s.Apply(&b); err == nil {
		t.Fatal("batch with empty key accepted")
	}
	if _, ok, _ := s.Get("ok"); ok {
		t.Error("rejected batch partially applied")
	}
}

func TestBatchClosedStore(t *testing.T) {
	s := OpenMemory()
	s.Close()
	var b Batch
	b.Put("k", []byte("v"))
	if err := s.Apply(&b); err != ErrClosed {
		t.Errorf("Apply on closed = %v, want ErrClosed", err)
	}
}

func TestBatchRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.wal")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	for i := 0; i < 10; i++ {
		b.Put(fmt.Sprintf("k-%02d", i), []byte(fmt.Sprintf("v-%d", i)))
	}
	b.Delete("k-03")
	if err := s.Apply(&b); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if n, _ := r.Len(); n != 9 {
		t.Errorf("recovered Len = %d, want 9", n)
	}
	if v, ok, _ := r.Get("k-07"); !ok || string(v) != "v-7" {
		t.Errorf("recovered k-07 = %q, %v", v, ok)
	}
	if _, ok, _ := r.Get("k-03"); ok {
		t.Error("batched delete lost on recovery")
	}
}

// TestBatchTornTailAllOrNothing is the crash-atomicity guarantee: a batch
// frame torn at ANY byte boundary replays either completely (CRC intact)
// or not at all — never a prefix of its mutations.
func TestBatchTornTailAllOrNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.wal")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("pre", []byte("existing"))
	preSize := s.log.size
	var b Batch
	for i := 0; i < 8; i++ {
		b.Put(fmt.Sprintf("batch-%d", i), []byte("payload-payload-payload"))
	}
	if err := s.Apply(&b); err != nil {
		t.Fatal(err)
	}
	s.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := preSize; cut <= int64(len(full)); cut++ {
		torn := filepath.Join(t.TempDir(), fmt.Sprintf("torn-%d.wal", cut))
		if err := os.WriteFile(torn, full[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		r, err := Open(torn, Options{})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		n, _ := r.Len()
		if v, ok, _ := r.Get("pre"); !ok || string(v) != "existing" {
			t.Fatalf("cut %d: record before the batch lost", cut)
		}
		switch {
		case cut == int64(len(full)):
			if n != 9 {
				t.Fatalf("full file: Len = %d, want 9", n)
			}
		default:
			if n != 1 {
				t.Fatalf("cut %d: torn batch partially applied: Len = %d, want 1", cut, n)
			}
		}
		r.Close()
	}
}

// TestBatchWALFrameIsSingleRecord pins the wire format: one Apply of N
// mutations appends exactly one checksummed record to the log.
func TestBatchWALFrameIsSingleRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.wal")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	b.Put("alpha", []byte("1"))
	b.Put("beta", []byte("2"))
	b.Delete("alpha")
	if err := s.Apply(&b); err != nil {
		t.Fatal(err)
	}
	s.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 9 {
		t.Fatalf("log too short: %d bytes", len(data))
	}
	payloadLen := binary.LittleEndian.Uint32(data[0:4])
	if int(payloadLen)+8 != len(data) {
		t.Errorf("batch produced more than one record: first payload %d, file %d", payloadLen, len(data))
	}
	if data[8] != opBatch {
		t.Errorf("frame op = %d, want opBatch", data[8])
	}
	if cnt := binary.LittleEndian.Uint32(data[9:13]); cnt != 3 {
		t.Errorf("frame count = %d, want 3", cnt)
	}
}

func TestView(t *testing.T) {
	s := OpenMemory()
	for _, k := range []string{"a/1", "a/2", "b/1"} {
		s.Put(k, []byte("val:"+k))
	}
	err := s.View(func(tx Tx) error {
		if v, ok := tx.Get("a/2"); !ok || string(v) != "val:a/2" {
			t.Errorf("Tx.Get = %q, %v", v, ok)
		}
		if _, ok := tx.Get("absent"); ok {
			t.Error("Tx.Get(absent) reported present")
		}
		var keys []string
		tx.AscendPrefix("a/", func(k string, v []byte) bool {
			keys = append(keys, k)
			return true
		})
		if len(keys) != 2 || keys[0] != "a/1" {
			t.Errorf("Tx.AscendPrefix = %v", keys)
		}
		keys = nil
		tx.AscendRange("a/2", "b/1", func(k string, v []byte) bool {
			keys = append(keys, k)
			return true
		})
		if len(keys) != 1 || keys[0] != "a/2" {
			t.Errorf("Tx.AscendRange = %v", keys)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	s.Close()
	if err := s.View(func(Tx) error { return nil }); err != ErrClosed {
		t.Errorf("View on closed = %v, want ErrClosed", err)
	}
}

// TestGroupCommitConcurrentWriters drives concurrent writers through a
// SyncEvery store and checks that everything lands durably — the group
// commit path must not acknowledge a write before its bytes are fsynced,
// and shared fsyncs must not deadlock with compaction or Close.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.wal")
	s, err := Open(path, Options{SyncEvery: true})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d/k%03d", w, i)
				if i%5 == 4 {
					var b Batch
					b.Put(key, []byte(key))
					b.Put(key+"/extra", []byte("x"))
					b.Delete(key + "/extra")
					if err := s.Apply(&b); err != nil {
						t.Errorf("Apply: %v", err)
						return
					}
					continue
				}
				if err := s.Put(key, []byte(key)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, _ := s.Len(); n != writers*perWriter {
		t.Errorf("Len = %d, want %d", n, writers*perWriter)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, Options{SyncEvery: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if n, _ := r.Len(); n != writers*perWriter {
		t.Errorf("recovered Len = %d, want %d", n, writers*perWriter)
	}
}

// TestGroupCommitWithCompaction overwrites one hot key from many
// goroutines with auto-compaction enabled in SyncEvery mode: the sync
// handoff must survive the log being swapped underneath waiting writers.
func TestGroupCommitWithCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.wal")
	s, err := Open(path, Options{SyncEvery: true, CompactThreshold: 2048})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := s.Put("hot", []byte(fmt.Sprintf("w%d-%04d", w, i))); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if _, ok, _ := s.Get("hot"); !ok {
		t.Error("hot key missing")
	}
	s.Close()
	r, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after compacting group commit: %v", err)
	}
	defer r.Close()
	if _, ok, _ := r.Get("hot"); !ok {
		t.Error("hot key missing after recovery")
	}
}
