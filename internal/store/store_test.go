package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTemp(t *testing.T, opts Options) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.wal")
	s, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func TestPutGetDelete(t *testing.T) {
	s, _ := openTemp(t, Options{})
	if err := s.Put("k1", []byte("v1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, ok, err := s.Get("k1")
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := s.Get("absent"); ok {
		t.Error("Get(absent) reported present")
	}
	if err := s.Put("k1", []byte("v2")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if v, _, _ := s.Get("k1"); string(v) != "v2" {
		t.Errorf("after overwrite Get = %q", v)
	}
	if err := s.Delete("k1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok, _ := s.Get("k1"); ok {
		t.Error("deleted key still present")
	}
	if err := s.Delete("absent"); err != nil {
		t.Errorf("Delete(absent) = %v, want nil", err)
	}
	if err := s.Put("", []byte("x")); err == nil {
		t.Error("Put with empty key accepted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := OpenMemory()
	if err := s.Put("k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	v, _, _ := s.Get("k")
	v[0] = 'X'
	v2, _, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Errorf("internal value mutated through returned slice: %q", v2)
	}
	// Put must also copy its input.
	in := []byte("def")
	s.Put("k2", in)
	in[0] = 'X'
	v3, _, _ := s.Get("k2")
	if string(v3) != "def" {
		t.Errorf("internal value aliases caller slice: %q", v3)
	}
}

func TestLen(t *testing.T) {
	s := OpenMemory()
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%02d", i), []byte("v"))
	}
	s.Put("k00", []byte("v2")) // overwrite, no growth
	s.Delete("k01")
	if n, _ := s.Len(); n != 9 {
		t.Errorf("Len = %d, want 9", n)
	}
}

func TestAscendPrefixAndRange(t *testing.T) {
	s := OpenMemory()
	for _, k := range []string{"a/1", "a/2", "a/3", "b/1", "c/1"} {
		s.Put(k, []byte(k))
	}
	var got []string
	s.AscendPrefix("a/", func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 3 || got[0] != "a/1" || got[2] != "a/3" {
		t.Errorf("AscendPrefix = %v", got)
	}
	got = nil
	s.AscendPrefix("a/", func(k string, v []byte) bool {
		got = append(got, k)
		return len(got) < 2 // early stop
	})
	if len(got) != 2 {
		t.Errorf("early-stop AscendPrefix visited %d", len(got))
	}
	got = nil
	s.AscendRange("a/2", "b/1", func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2 || got[0] != "a/2" || got[1] != "a/3" {
		t.Errorf("AscendRange = %v", got)
	}
	got = nil
	s.AscendRange("b/1", "", func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2 || got[1] != "c/1" {
		t.Errorf("AscendRange open end = %v", got)
	}
}

func TestRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.wal")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete("key-050")
	s.Put("key-000", []byte("rewritten"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if n, _ := r.Len(); n != 99 {
		t.Errorf("recovered Len = %d, want 99", n)
	}
	if v, ok, _ := r.Get("key-000"); !ok || string(v) != "rewritten" {
		t.Errorf("recovered key-000 = %q, %v", v, ok)
	}
	if _, ok, _ := r.Get("key-050"); ok {
		t.Error("deleted key resurrected after recovery")
	}
	if v, ok, _ := r.Get("key-099"); !ok || string(v) != "val-99" {
		t.Errorf("recovered key-099 = %q, %v", v, ok)
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.wal")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("value"))
	}
	s.Close()

	// Simulate a crash mid-append: chop a few bytes off the last record.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if n, _ := r.Len(); n != 9 {
		t.Errorf("Len after torn tail = %d, want 9", n)
	}
	// The store must be writable again and survive another cycle.
	if err := r.Put("k9", []byte("value")); err != nil {
		t.Fatalf("Put after truncation: %v", err)
	}
	r.Close()
	r2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer r2.Close()
	if n, _ := r2.Len(); n != 10 {
		t.Errorf("Len after rewrite = %d, want 10", n)
	}
}

func TestMidLogCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.wal")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("key-with-some-length-%d", i), []byte("a reasonably sized value here"))
	}
	s.Close()

	// Flip a byte in the middle of the file (inside an early record's
	// payload) — this is corruption, not a torn tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xFF
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Error("Open accepted mid-log corruption")
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.wal")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		for i := 0; i < 50; i++ {
			s.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("round-%d", round)))
		}
	}
	before, _ := os.Stat(path)
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink log: %d -> %d", before.Size(), after.Size())
	}
	// Data must be intact, and the store writable, after compaction.
	if v, ok, _ := s.Get("k00"); !ok || string(v) != "round-19" {
		t.Errorf("post-compact Get = %q, %v", v, ok)
	}
	if err := s.Put("new", []byte("x")); err != nil {
		t.Fatalf("Put after compact: %v", err)
	}
	s.Close()
	r, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer r.Close()
	if n, _ := r.Len(); n != 51 {
		t.Errorf("Len after compact+reopen = %d, want 51", n)
	}
}

func TestAutoCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.wal")
	s, err := Open(path, Options{CompactThreshold: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Overwrite one key many times: live data stays tiny, WAL grows.
	for i := 0; i < 2000; i++ {
		if err := s.Put("hot", []byte(fmt.Sprintf("value-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 8192 {
		t.Errorf("auto compaction never ran: wal is %d bytes", st.Size())
	}
	if v, ok, _ := s.Get("hot"); !ok || string(v) != "value-1999" {
		t.Errorf("Get after auto compaction = %q, %v", v, ok)
	}
}

func TestClosedStore(t *testing.T) {
	s := OpenMemory()
	s.Close()
	if err := s.Put("k", nil); err != ErrClosed {
		t.Errorf("Put on closed = %v", err)
	}
	if _, _, err := s.Get("k"); err != ErrClosed {
		t.Errorf("Get on closed = %v", err)
	}
	if err := s.Delete("k"); err != ErrClosed {
		t.Errorf("Delete on closed = %v", err)
	}
	if _, err := s.Len(); err != ErrClosed {
		t.Errorf("Len on closed = %v", err)
	}
	if err := s.AscendPrefix("", nil); err != ErrClosed {
		t.Errorf("AscendPrefix on closed = %v", err)
	}
	if err := s.Compact(); err != ErrClosed {
		t.Errorf("Compact on closed = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

func TestSyncEveryMode(t *testing.T) {
	s, _ := openTemp(t, Options{SyncEvery: true})
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("Put with SyncEvery: %v", err)
		}
	}
	if n, _ := s.Len(); n != 10 {
		t.Errorf("Len = %d", n)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := openTemp(t, Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("g%d/k%03d", g, i)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if v, ok, err := s.Get(key); err != nil || !ok || string(v) != key {
					t.Errorf("Get(%s) = %q, %v, %v", key, v, ok, err)
					return
				}
				if i%10 == 0 {
					s.AscendPrefix(fmt.Sprintf("g%d/", g), func(string, []byte) bool { return true })
				}
			}
		}(g)
	}
	wg.Wait()
	if n, _ := s.Len(); n != 8*200 {
		t.Errorf("Len = %d, want %d", n, 8*200)
	}
}

func TestOpenEmptyPath(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Error("Open(\"\") accepted")
	}
}

func TestOpenCreatesDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deep", "nested", "data.wal")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open with missing dirs: %v", err)
	}
	defer s.Close()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
}
