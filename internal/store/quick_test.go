package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

// TestQuickRecoveryEquivalence: for a random sequence of puts, deletes
// and compactions, a store reopened from its WAL holds exactly the state
// of a reference map.
func TestQuickRecoveryEquivalence(t *testing.T) {
	f := func(seed int64, opCount uint8) bool {
		dir := t.TempDir()
		path := filepath.Join(dir, "q.wal")
		s, err := Open(path, Options{})
		if err != nil {
			return false
		}
		rnd := rand.New(rand.NewSource(seed))
		ref := map[string]string{}
		ops := int(opCount)%200 + 20
		for i := 0; i < ops; i++ {
			key := fmt.Sprintf("k%02d", rnd.Intn(30))
			switch rnd.Intn(5) {
			case 0:
				if err := s.Delete(key); err != nil {
					return false
				}
				delete(ref, key)
			case 1:
				if rnd.Intn(10) == 0 { // occasional compaction
					if err := s.Compact(); err != nil {
						return false
					}
				}
			default:
				val := fmt.Sprintf("v%06d", rnd.Intn(1_000_000))
				if err := s.Put(key, []byte(val)); err != nil {
					return false
				}
				ref[key] = val
			}
		}
		if err := s.Close(); err != nil {
			return false
		}

		r, err := Open(path, Options{})
		if err != nil {
			return false
		}
		defer r.Close()
		if n, _ := r.Len(); n != len(ref) {
			t.Logf("seed %d: recovered %d keys, want %d", seed, n, len(ref))
			return false
		}
		for k, want := range ref {
			v, ok, err := r.Get(k)
			if err != nil || !ok || string(v) != want {
				t.Logf("seed %d: key %s = %q,%v,%v want %q", seed, k, v, ok, err, want)
				return false
			}
		}
		// Ordered iteration must visit exactly the reference keys, sorted.
		prev := ""
		count := 0
		r.AscendPrefix("", func(k string, v []byte) bool {
			if k <= prev && prev != "" {
				count = -1
				return false
			}
			prev = k
			count++
			return true
		})
		return count == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
