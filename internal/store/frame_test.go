package store

import (
	"bytes"
	"errors"
	"testing"
)

func TestBatchFrameRoundTrip(t *testing.T) {
	var b Batch
	b.Put("e/evt-1", []byte("payload-1"))
	b.Put("p/psn/0001/evt-1", nil)
	b.Delete("e/evt-0")

	frame := b.EncodeFrame()
	got, err := DecodeBatchFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != b.Len() {
		t.Fatalf("decoded %d ops, want %d", got.Len(), b.Len())
	}
	for i := range b.ops {
		if got.ops[i].op != b.ops[i].op || got.ops[i].key != b.ops[i].key ||
			!bytes.Equal(got.ops[i].value, b.ops[i].value) {
			t.Fatalf("op %d differs: %+v vs %+v", i, got.ops[i], b.ops[i])
		}
	}

	// The decoded batch must apply like the original.
	st := OpenMemory()
	defer st.Close()
	if err := st.Apply(got); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := st.Get("e/evt-1"); !ok || string(v) != "payload-1" {
		t.Fatalf("applied batch lost data: %q %v", v, ok)
	}
}

func TestBatchFrameRejectsTornAndTampered(t *testing.T) {
	var b Batch
	b.Put("k", []byte("v"))
	frame := b.EncodeFrame()

	for cut := 0; cut < len(frame); cut++ {
		if _, err := DecodeBatchFrame(frame[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorrupt", cut, err)
		}
	}
	if _, err := DecodeBatchFrame(append(bytes.Clone(frame), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: err = %v, want ErrCorrupt", err)
	}
	flipped := bytes.Clone(frame)
	flipped[len(flipped)-1] ^= 0xFF
	if _, err := DecodeBatchFrame(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: err = %v, want ErrCorrupt", err)
	}
}
