package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Satellite regression: a fully present WAL record whose payload was
// bit-flipped must fail replay hard — even when it is the FINAL record
// of the file, where the old code forgave the mismatch as a "torn
// tail" and silently truncated durably written history.
func TestBitFlippedFrameIsHardError(t *testing.T) {
	build := func(t *testing.T) (string, []byte) {
		path := filepath.Join(t.TempDir(), "data.wal")
		s, err := Open(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			var b Batch
			b.Put(fmt.Sprintf("key-%d", i), bytes.Repeat([]byte{byte('a' + i)}, 32))
			b.Put(fmt.Sprintf("aux-%d", i), []byte("sidecar"))
			if err := s.Apply(&b); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return path, data
	}

	flipAndOpen := func(t *testing.T, path string, data []byte, at int) error {
		flipped := bytes.Clone(data)
		flipped[at] ^= 0x10
		if err := os.WriteFile(path, flipped, 0o600); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path, Options{})
		if st != nil {
			st.Close()
		}
		return err
	}

	t.Run("payload mid-file", func(t *testing.T) {
		path, data := build(t)
		if err := flipAndOpen(t, path, data, len(data)/3); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
	})
	t.Run("payload of final record", func(t *testing.T) {
		path, data := build(t)
		// Last byte of the file is inside the final record's payload.
		if err := flipAndOpen(t, path, data, len(data)-1); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt (final record fully present)", err)
		}
	})
	t.Run("zero length with data behind it", func(t *testing.T) {
		path, data := build(t)
		// Zero the length field of the first record: replay must not
		// silently discard the intact records behind it.
		mut := bytes.Clone(data)
		copy(mut[0:4], []byte{0, 0, 0, 0})
		if err := os.WriteFile(path, mut, 0o600); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path, Options{})
		if st != nil {
			st.Close()
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
	})
	t.Run("genuine torn tail still recovers", func(t *testing.T) {
		path, data := build(t)
		if err := os.WriteFile(path, data[:len(data)-5], 0o600); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("Open after torn tail: %v", err)
		}
		defer st.Close()
		if n, _ := st.Len(); n != 6 {
			t.Fatalf("Len = %d, want 6 (three intact batches)", n)
		}
	})
	t.Run("trailing zero fill still recovers", func(t *testing.T) {
		path, data := build(t)
		padded := append(bytes.Clone(data), make([]byte, 64)...)
		if err := os.WriteFile(path, padded, 0o600); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("Open with zero fill: %v", err)
		}
		defer st.Close()
		if n, _ := st.Len(); n != 8 {
			t.Fatalf("Len = %d, want 8", n)
		}
	})
}

// A follower fed ReadWAL segments ends with a byte-identical WAL and
// identical contents, resuming from its own offset after a break.
func TestReadApplyWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	primary, err := Open(filepath.Join(dir, "p.wal"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	follower, err := Open(filepath.Join(dir, "f.wal"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	for i := 0; i < 50; i++ {
		if err := primary.Put(fmt.Sprintf("k%03d", i), bytes.Repeat([]byte{byte(i)}, i%40)); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			primary.Delete(fmt.Sprintf("k%03d", i/2))
		}
	}
	var b Batch
	b.Put("batch/a", []byte("one"))
	b.Delete("k001")
	b.Put("batch/b", []byte("two"))
	if err := primary.Apply(&b); err != nil {
		t.Fatal(err)
	}

	gen := primary.WALGen()
	cursor := int64(0)
	// Ship in deliberately small chunks to exercise record trimming.
	for {
		seg, err := primary.ReadWAL(gen, cursor, 64)
		if err != nil {
			t.Fatalf("ReadWAL at %d: %v", cursor, err)
		}
		if seg == nil {
			break
		}
		next, err := follower.ApplyWALSegment(cursor, seg)
		if err != nil {
			t.Fatalf("ApplyWALSegment at %d: %v", cursor, err)
		}
		cursor = next
	}
	if cursor != primary.WALOffset() {
		t.Fatalf("follower cursor %d, primary offset %d", cursor, primary.WALOffset())
	}
	if err := follower.SyncWAL(); err != nil {
		t.Fatal(err)
	}

	pb, _ := os.ReadFile(filepath.Join(dir, "p.wal"))
	fb, _ := os.ReadFile(filepath.Join(dir, "f.wal"))
	if !bytes.Equal(pb, fb) {
		t.Fatalf("follower WAL (%d bytes) not byte-identical to primary (%d bytes)", len(fb), len(pb))
	}
	pn, _ := primary.Len()
	fn, _ := follower.Len()
	if pn != fn {
		t.Fatalf("follower Len %d, primary Len %d", fn, pn)
	}
	v, ok, _ := follower.Get("batch/b")
	if !ok || string(v) != "two" {
		t.Fatalf("follower Get(batch/b) = %q %v", v, ok)
	}
}

func TestApplyWALSegmentRejectsCorruptAndGaps(t *testing.T) {
	dir := t.TempDir()
	primary, err := Open(filepath.Join(dir, "p.wal"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	for i := 0; i < 5; i++ {
		primary.Put(fmt.Sprintf("k%d", i), []byte("value"))
	}
	seg, err := primary.ReadWAL(primary.WALGen(), 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	follower, err := Open(filepath.Join(dir, "f.wal"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	// A bit-flipped replicated record is rejected wholesale.
	bad := bytes.Clone(seg)
	bad[len(bad)/2] ^= 0x01
	if _, err := follower.ApplyWALSegment(0, bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ApplyWALSegment(corrupt) = %v, want ErrCorrupt", err)
	}
	if n, _ := follower.Len(); n != 0 {
		t.Fatalf("corrupt segment partially applied: Len = %d", n)
	}
	// A non-contiguous offset is rejected.
	if _, err := follower.ApplyWALSegment(8, seg); err == nil {
		t.Fatal("ApplyWALSegment with offset gap succeeded")
	}
	if _, err := follower.ApplyWALSegment(0, seg); err != nil {
		t.Fatal(err)
	}
	if n, _ := follower.Len(); n != 5 {
		t.Fatalf("Len = %d, want 5", n)
	}
}

func TestReadWALRotationAndWatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gen := s.WALGen()
	for i := 0; i < 10; i++ {
		s.Put("key", bytes.Repeat([]byte{byte(i)}, 100))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadWAL(gen, 0, 1<<20); !errors.Is(err, ErrWALRotated) {
		t.Fatalf("ReadWAL after compact = %v, want ErrWALRotated", err)
	}
	if s.WALGen() == gen {
		t.Fatal("WALGen unchanged across compaction")
	}

	ch := make(chan struct{}, 1)
	s.WatchWAL(ch)
	defer s.UnwatchWAL(ch)
	if err := s.Put("watched", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("no WAL watch notification after Put")
	}
}
