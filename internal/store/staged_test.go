package store

import (
	"bytes"
	"path/filepath"
	"testing"
)

// StageApply must make mutations visible immediately, while Wait is the
// durability barrier that survives reopen.
func TestStageApplyVisibleBeforeWait(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(filepath.Join(dir, "db"), Options{SyncEvery: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var b Batch
	b.Put("k1", []byte("v1"))
	b.PutOwned("k2", []byte("v2"))
	c, err := s.StageApply(&b)
	if err != nil {
		t.Fatal(err)
	}
	// Visible in memory before the barrier.
	for k, want := range map[string]string{"k1": "v1", "k2": "v2"} {
		got, ok, err := s.Get(k)
		if err != nil || !ok || !bytes.Equal(got, []byte(want)) {
			t.Fatalf("staged key %s not visible before Wait: %q ok=%v err=%v", k, got, ok, err)
		}
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.Pending() {
		t.Fatal("commit still pending after Wait")
	}
	// Wait is idempotent.
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestStageApplyDurableAfterWait(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db")
	s, err := Open(path, Options{SyncEvery: true})
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	b.Put("a", []byte("1"))
	b.Put("b", []byte("2"))
	c, err := s.StageApply(&b)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, Options{SyncEvery: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for k, want := range map[string]string{"a": "1", "b": "2"} {
		got, ok, err := re.Get(k)
		if err != nil || !ok || string(got) != want {
			t.Fatalf("key %s lost across reopen: %q ok=%v err=%v", k, got, ok, err)
		}
	}
}

// Without SyncEvery (or in memory) the zero-cost contract holds: no
// barrier is pending and Wait is a no-op.
func TestStageApplyNoSyncIsAlreadyDurable(t *testing.T) {
	s := OpenMemory()
	var b Batch
	b.Put("k", []byte("v"))
	c, err := s.StageApply(&b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pending() {
		t.Fatal("in-memory stage reports a pending fsync")
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	var empty Batch
	c2, err := s.StageApply(&empty)
	if err != nil || c2.Pending() {
		t.Fatalf("empty batch: err=%v pending=%v", err, c2.Pending())
	}
}

// Concurrent staged commits share fsyncs through the existing group
// commit machinery: Wait on a later commit covers earlier ones too.
func TestStageApplyGroupCommitShared(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(filepath.Join(dir, "db"), Options{SyncEvery: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var b1, b2 Batch
	b1.Put("x", []byte("1"))
	b2.Put("y", []byte("2"))
	c1, err := s.StageApply(&b1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.StageApply(&b2)
	if err != nil {
		t.Fatal(err)
	}
	// Syncing the later commit must cover the earlier one.
	if err := c2.Wait(); err != nil {
		t.Fatal(err)
	}
	if c1.Pending() {
		t.Fatal("earlier commit still pending after later commit synced")
	}
	if err := c1.Wait(); err != nil {
		t.Fatal(err)
	}
}
