package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSkipListBasic(t *testing.T) {
	l := newSkipList(1)
	if _, ok := l.get("a"); ok {
		t.Error("get on empty list reported present")
	}
	if old, existed := l.put("a", []byte("1")); existed {
		t.Errorf("put of new key reported overwrite of %q", old)
	}
	if old, existed := l.put("a", []byte("2")); !existed || string(old) != "1" {
		t.Errorf("overwrite reported (%q, %v), want (1, true)", old, existed)
	}
	if v, ok := l.get("a"); !ok || string(v) != "2" {
		t.Errorf("get = %q, %v", v, ok)
	}
	if l.size != 1 {
		t.Errorf("size = %d", l.size)
	}
	if v, ok := l.del("a"); !ok || string(v) != "2" {
		t.Errorf("del of present key = (%q, %v), want (2, true)", v, ok)
	}
	if _, ok := l.del("a"); ok {
		t.Error("double del reported present")
	}
	if l.size != 0 {
		t.Errorf("size after del = %d", l.size)
	}
}

func TestSkipListOrdering(t *testing.T) {
	l := newSkipList(2)
	keys := []string{"delta", "alpha", "echo", "charlie", "bravo"}
	for _, k := range keys {
		l.put(k, []byte(k))
	}
	var got []string
	l.ascend("", func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("visited %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("position %d: %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSkipListAscendFrom(t *testing.T) {
	l := newSkipList(3)
	for i := 0; i < 20; i++ {
		l.put(fmt.Sprintf("k%02d", i), nil)
	}
	var got []string
	l.ascend("k15", func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 5 || got[0] != "k15" {
		t.Errorf("ascend from k15 = %v", got)
	}
	// From a key that doesn't exist: starts at the next larger key.
	got = nil
	l.ascend("k155", func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 4 || got[0] != "k16" {
		t.Errorf("ascend from k155 = %v", got)
	}
}

func TestSkipListAscendPrefix(t *testing.T) {
	l := newSkipList(4)
	for _, k := range []string{"a", "ab", "abc", "abd", "ac", "b"} {
		l.put(k, nil)
	}
	var got []string
	l.ascendPrefix("ab", func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 3 || got[0] != "ab" || got[2] != "abd" {
		t.Errorf("ascendPrefix(ab) = %v", got)
	}
}

// Property: the skip list behaves exactly like a map plus sorting, under
// a random sequence of puts and deletes.
func TestQuickSkipListMatchesMap(t *testing.T) {
	f := func(seed int64, opsCount uint16) bool {
		r := rand.New(rand.NewSource(seed))
		l := newSkipList(seed)
		m := map[string]string{}
		ops := int(opsCount%500) + 50
		for i := 0; i < ops; i++ {
			k := fmt.Sprintf("k%02d", r.Intn(40))
			switch r.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", i)
				l.put(k, []byte(v))
				m[k] = v
			case 2:
				l.del(k)
				delete(m, k)
			}
		}
		if l.size != len(m) {
			return false
		}
		var keys []string
		l.ascend("", func(k string, v []byte) bool {
			keys = append(keys, k)
			if m[k] != string(v) {
				keys = nil
				return false
			}
			return true
		})
		if len(keys) != len(m) {
			return false
		}
		return sort.StringsAreSorted(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSkipListLargeSequential(t *testing.T) {
	l := newSkipList(7)
	const n = 20000
	for i := 0; i < n; i++ {
		l.put(fmt.Sprintf("key-%08d", i), []byte{byte(i)})
	}
	if l.size != n {
		t.Fatalf("size = %d, want %d", l.size, n)
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		k := fmt.Sprintf("key-%08d", i)
		if v, ok := l.get(k); !ok || v[0] != byte(i) {
			t.Errorf("get(%s) = %v, %v", k, v, ok)
		}
	}
	// Delete every other key and verify level shrink doesn't corrupt.
	for i := 0; i < n; i += 2 {
		if _, ok := l.del(fmt.Sprintf("key-%08d", i)); !ok {
			t.Fatalf("del(%d) failed", i)
		}
	}
	if l.size != n/2 {
		t.Fatalf("size after deletes = %d", l.size)
	}
	count := 0
	l.ascend("", func(k string, v []byte) bool {
		count++
		return true
	})
	if count != n/2 {
		t.Errorf("ascend visited %d, want %d", count, n/2)
	}
}
