// Package store implements the embedded storage engine of the CSS
// platform: a durable, ordered key-value store built from an in-memory
// skip list and a write-ahead log with checksummed records. The events
// index, the local cooperation gateways and the audit trail all persist
// through it. It favors simplicity and auditability over raw speed, in
// keeping with the deployment the paper describes.
package store

import (
	"math/rand"
	"strings"
	"sync"
)

const (
	maxLevel    = 24
	levelChance = 4 // 1/levelChance probability of promoting a node a level
)

// skipNode is one node of the ordered index.
type skipNode struct {
	key   string
	value []byte
	next  []*skipNode
	// tower backs next for the common low levels, so inserting a node
	// costs one allocation instead of two. With 1/4 promotion, fewer
	// than 0.4% of nodes outgrow it.
	tower [4]*skipNode
}

// skipList is an ordered string→[]byte map. It is not safe for concurrent
// use; Store serializes access.
type skipList struct {
	head  *skipNode
	level int
	size  int
	rnd   *rand.Rand
	// scratch is the predecessor buffer for put/del. Mutators are
	// serialized by the Store's write lock, so one buffer suffices; it
	// may pin a just-deleted node until the next mutation, which is
	// harmless.
	scratch [maxLevel]*skipNode
}

func newSkipList(seed int64) *skipList {
	return &skipList{
		head:  &skipNode{next: make([]*skipNode, maxLevel)},
		level: 1,
		rnd:   rand.New(rand.NewSource(seed)),
	}
}

func (l *skipList) randomLevel() int {
	level := 1
	for level < maxLevel && l.rnd.Intn(levelChance) == 0 {
		level++
	}
	return level
}

// findPredecessors fills update with the rightmost node strictly before
// key at every level and returns the candidate node (which may or may not
// match key).
func (l *skipList) findPredecessors(key string, update []*skipNode) *skipNode {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		update[i] = x
	}
	return x.next[0]
}

// put inserts or overwrites key. It returns the previous value (nil,
// false when the key was new), so writers maintain size accounting from
// the same traversal that placed the node.
func (l *skipList) put(key string, value []byte) ([]byte, bool) {
	update := l.scratch[:]
	x := l.findPredecessors(key, update)
	if x != nil && x.key == key {
		old := x.value
		x.value = value
		return old, true
	}
	level := l.randomLevel()
	if level > l.level {
		for i := l.level; i < level; i++ {
			update[i] = l.head
		}
		l.level = level
	}
	n := &skipNode{key: key, value: value}
	if level <= len(n.tower) {
		n.next = n.tower[:level]
	} else {
		n.next = make([]*skipNode, level)
	}
	for i := 0; i < level; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	l.size++
	return nil, false
}

// get returns the value stored under key.
func (l *skipList) get(key string) ([]byte, bool) {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
	}
	x = x.next[0]
	if x != nil && x.key == key {
		return x.value, true
	}
	return nil, false
}

// del removes key and returns the removed value (nil, false when the
// key was absent).
func (l *skipList) del(key string) ([]byte, bool) {
	update := l.scratch[:]
	x := l.findPredecessors(key, update)
	if x == nil || x.key != key {
		return nil, false
	}
	for i := 0; i < l.level; i++ {
		if update[i].next[i] != x {
			break
		}
		update[i].next[i] = x.next[i]
	}
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	l.size--
	return x.value, true
}

// ascend visits keys ≥ from in order until fn returns false.
func (l *skipList) ascend(from string, fn func(key string, value []byte) bool) {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < from {
			x = x.next[i]
		}
	}
	for x = x.next[0]; x != nil; x = x.next[0] {
		if !fn(x.key, x.value) {
			return
		}
	}
}

// ascendPrefix visits all keys with the given prefix in order.
func (l *skipList) ascendPrefix(prefix string, fn func(key string, value []byte) bool) {
	l.ascend(prefix, func(k string, v []byte) bool {
		if !strings.HasPrefix(k, prefix) {
			return false
		}
		return fn(k, v)
	})
}

// seedCounter derives distinct deterministic seeds for skip lists so that
// independent stores don't share promotion sequences.
var seedCounter struct {
	sync.Mutex
	n int64
}

func nextSeed() int64 {
	seedCounter.Lock()
	defer seedCounter.Unlock()
	seedCounter.n++
	return seedCounter.n
}
