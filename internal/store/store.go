package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Options configure a Store.
type Options struct {
	// SyncEvery forces an fsync after every write. Slower but durable
	// against power loss, not just process crash. Default false.
	SyncEvery bool
	// CompactThreshold triggers automatic compaction when the WAL grows
	// beyond this many bytes AND is more than twice the live data size.
	// Zero disables automatic compaction.
	CompactThreshold int64
}

// Store is a durable, ordered key-value store. All methods are safe for
// concurrent use. Keys are arbitrary non-empty strings ordered
// lexicographically; values are opaque byte slices.
//
// Durability model: every mutation is appended to a write-ahead log
// before the in-memory index is updated; Open replays the log, tolerating
// (and truncating) a torn tail record from a crash mid-append.
type Store struct {
	mu     sync.RWMutex
	list   *skipList
	log    *wal
	path   string
	opts   Options
	closed bool
	// liveBytes approximates the size of live data for the compaction
	// heuristic.
	liveBytes int64
	// gen counts WAL file rewrites (compactions); replication cursors
	// carry it so a rewrite invalidates their byte offsets loudly.
	gen uint64
	// watchers receive non-blocking edge-triggered tokens after every
	// append (see WatchWAL).
	watchers []chan struct{}
}

// Open opens (creating if necessary) the store persisted at path.
func Open(path string, opts Options) (*Store, error) {
	if path == "" {
		return nil, errors.New("store: empty path")
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o700); err != nil {
			return nil, fmt.Errorf("store: mkdir: %w", err)
		}
	}
	s := &Store{list: newSkipList(nextSeed()), path: path, opts: opts}
	validLen, err := replayWAL(path, func(r walRecord) error {
		switch r.op {
		case opPut:
			if old, existed := s.list.put(r.key, r.value); existed {
				s.liveBytes -= int64(len(r.key) + len(old))
			}
			s.liveBytes += int64(len(r.key) + len(r.value))
		case opDel:
			if v, ok := s.list.del(r.key); ok {
				s.liveBytes -= int64(len(r.key) + len(v))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Truncate a torn tail so the next append starts on a clean boundary.
	if st, statErr := os.Stat(path); statErr == nil && st.Size() > validLen {
		if err := os.Truncate(path, validLen); err != nil {
			return nil, fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	log, err := openWAL(path, opts.SyncEvery)
	if err != nil {
		return nil, err
	}
	s.log = log
	return s, nil
}

// OpenMemory returns a purely in-memory store (no durability), useful for
// tests and benchmarks that don't exercise recovery.
func OpenMemory() *Store {
	return &Store{list: newSkipList(nextSeed())}
}

// Put stores value under key, overwriting any previous value.
func (s *Store) Put(key string, value []byte) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.log != nil {
		if err := s.log.append(walRecord{op: opPut, key: key, value: value}); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	if old, existed := s.list.put(key, append([]byte(nil), value...)); existed {
		s.liveBytes -= int64(len(key) + len(old))
	}
	s.liveBytes += int64(len(key) + len(value))
	s.notifyWatchersLocked()
	err := s.maybeCompactLocked()
	lg, target := s.syncTargetLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return syncIfNeeded(lg, target)
}

// syncTargetLocked captures the durability point a SyncEvery writer must
// wait for. The fsync itself happens after the store lock is released so
// that concurrent writers can share one fsync (group commit); when a
// compaction just swapped the log, the data is already durable in the
// compacted file and no extra fsync is owed.
func (s *Store) syncTargetLocked() (*wal, int64) {
	if s.log == nil || !s.opts.SyncEvery {
		return nil, 0
	}
	return s.log, s.log.size
}

func syncIfNeeded(lg *wal, target int64) error {
	if lg == nil {
		return nil
	}
	return lg.syncTo(target)
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	v, ok := s.list.get(key)
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Has reports whether key is present.
func (s *Store) Has(key string) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false, ErrClosed
	}
	_, ok := s.list.get(key)
	return ok, nil
}

// Delete removes key. Deleting an absent key is not an error.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	_, ok := s.list.get(key)
	if !ok {
		s.mu.Unlock()
		return nil
	}
	if s.log != nil {
		if err := s.log.append(walRecord{op: opDel, key: key}); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	if v, deleted := s.list.del(key); deleted {
		s.liveBytes -= int64(len(key) + len(v))
	}
	s.notifyWatchersLocked()
	lg, target := s.syncTargetLocked()
	s.mu.Unlock()
	return syncIfNeeded(lg, target)
}

// Len returns the number of live keys.
func (s *Store) Len() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	return s.list.size, nil
}

// AscendPrefix visits, in key order, every (key, value) whose key starts
// with prefix, until fn returns false. The value slice passed to fn is a
// copy and may be retained.
func (s *Store) AscendPrefix(prefix string, fn func(key string, value []byte) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.list.ascendPrefix(prefix, func(k string, v []byte) bool {
		return fn(k, append([]byte(nil), v...))
	})
	return nil
}

// AscendRange visits keys in [from, to) in order until fn returns false.
// An empty `to` means "to the end".
func (s *Store) AscendRange(from, to string, fn func(key string, value []byte) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.list.ascend(from, func(k string, v []byte) bool {
		if to != "" && k >= to {
			return false
		}
		return fn(k, append([]byte(nil), v...))
	})
	return nil
}

// Tx is a read transaction handed to View: every read shares the same
// lock acquisition and returns the store's internal value slices without
// copying. Callers must treat the slices as read-only and must not use
// the Tx outside the View callback. Intended for internal iteration-heavy
// paths (index scans, audit verification); external callers wanting
// retainable values use Get/AscendPrefix/AscendRange.
type Tx struct {
	list *skipList
}

// View runs fn under a single read lock with no-copy access to the data.
func (s *Store) View(fn func(tx Tx) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	return fn(Tx{list: s.list})
}

// Get returns the value stored under key without copying it.
func (t Tx) Get(key string) ([]byte, bool) {
	return t.list.get(key)
}

// AscendRange visits keys in [from, to) in order until fn returns false,
// passing the internal value slices. An empty `to` means "to the end".
func (t Tx) AscendRange(from, to string, fn func(key string, value []byte) bool) {
	t.list.ascend(from, func(k string, v []byte) bool {
		if to != "" && k >= to {
			return false
		}
		return fn(k, v)
	})
}

// AscendPrefix visits every key starting with prefix in order until fn
// returns false, passing the internal value slices.
func (t Tx) AscendPrefix(prefix string, fn func(key string, value []byte) bool) {
	t.list.ascendPrefix(prefix, fn)
}

// Compact rewrites the WAL to contain exactly the live data, reclaiming
// space from overwritten and deleted records.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) maybeCompactLocked() error {
	t := s.opts.CompactThreshold
	if t <= 0 || s.log == nil || s.log.size < t || s.log.size < 2*s.liveBytes {
		return nil
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if s.log == nil {
		return nil // in-memory store: nothing to compact
	}
	tmp := s.path + ".compact"
	nw, err := openWAL(tmp, false)
	if err != nil {
		return err
	}
	var appendErr error
	s.list.ascend("", func(k string, v []byte) bool {
		appendErr = nw.append(walRecord{op: opPut, key: k, value: v})
		return appendErr == nil
	})
	if appendErr != nil {
		nw.close()
		os.Remove(tmp)
		return appendErr
	}
	if err := nw.f.Sync(); err != nil {
		nw.close()
		os.Remove(tmp)
		return fmt.Errorf("store: compact sync: %w", err)
	}
	if err := nw.close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := s.log.close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("store: compact rename: %w", err)
	}
	log, err := openWAL(s.path, s.opts.SyncEvery)
	if err != nil {
		return err
	}
	s.log = log
	s.gen++
	return nil
}

// Close flushes and closes the store. Further operations fail with
// ErrClosed. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.log != nil {
		return s.log.close()
	}
	return nil
}
