package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL record layout (little endian):
//
//	[4] payload length n
//	[4] CRC-32 (IEEE) of payload
//	[n] payload
//
// payload:
//
//	[1] op (opPut | opDel)
//	[4] key length k
//	[k] key bytes
//	[4] value length v   (opPut only)
//	[v] value bytes      (opPut only)
//
// A torn tail (partial record after a crash) is detected by length/CRC
// mismatch and truncated away on recovery; everything before it replays.

const (
	opPut byte = 1
	opDel byte = 2
)

// ErrCorrupt reports a WAL record that fails its checksum in the middle
// of the log (not a torn tail).
var ErrCorrupt = errors.New("store: corrupt wal record")

type walRecord struct {
	op    byte
	key   string
	value []byte
}

func encodeRecord(buf []byte, r walRecord) []byte {
	payloadLen := 1 + 4 + len(r.key)
	if r.op == opPut {
		payloadLen += 4 + len(r.value)
	}
	need := 8 + payloadLen
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(payloadLen))
	p := buf[8:]
	p[0] = r.op
	binary.LittleEndian.PutUint32(p[1:5], uint32(len(r.key)))
	copy(p[5:], r.key)
	if r.op == opPut {
		off := 5 + len(r.key)
		binary.LittleEndian.PutUint32(p[off:off+4], uint32(len(r.value)))
		copy(p[off+4:], r.value)
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(p))
	return buf
}

func decodePayload(p []byte) (walRecord, error) {
	if len(p) < 5 {
		return walRecord{}, ErrCorrupt
	}
	r := walRecord{op: p[0]}
	if r.op != opPut && r.op != opDel {
		return walRecord{}, fmt.Errorf("%w: bad op %d", ErrCorrupt, r.op)
	}
	klen := int(binary.LittleEndian.Uint32(p[1:5]))
	if len(p) < 5+klen {
		return walRecord{}, ErrCorrupt
	}
	r.key = string(p[5 : 5+klen])
	if r.op == opPut {
		rest := p[5+klen:]
		if len(rest) < 4 {
			return walRecord{}, ErrCorrupt
		}
		vlen := int(binary.LittleEndian.Uint32(rest[:4]))
		if len(rest) != 4+vlen {
			return walRecord{}, ErrCorrupt
		}
		r.value = append([]byte(nil), rest[4:]...)
	} else if len(p) != 5+klen {
		return walRecord{}, ErrCorrupt
	}
	return r, nil
}

// wal is the append-only log backing a Store.
type wal struct {
	f      *os.File
	w      *bufio.Writer
	sync   bool // fsync after every append
	size   int64
	encBuf []byte
}

func openWAL(path string, syncEvery bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat wal: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriter(f), sync: syncEvery, size: st.Size()}, nil
}

// append writes one record and flushes it to the OS (and to disk when
// sync mode is on).
func (l *wal) append(r walRecord) error {
	l.encBuf = encodeRecord(l.encBuf, r)
	if _, err := l.w.Write(l.encBuf); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("store: wal flush: %w", err)
	}
	l.size += int64(len(l.encBuf))
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("store: wal sync: %w", err)
		}
	}
	return nil
}

func (l *wal) close() error {
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// replay reads all intact records from path, invoking fn for each. It
// returns the byte offset of the first torn/corrupt tail record (== file
// size when the log is clean) so the caller can truncate it away. A
// checksum failure that is *followed by further intact data* is reported
// as ErrCorrupt instead, since that indicates real corruption rather than
// a torn tail.
func replayWAL(path string, fn func(walRecord) error) (validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("store: open wal for replay: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("store: stat wal: %w", err)
	}
	fileSize := st.Size()
	br := bufio.NewReader(f)
	var offset int64
	header := make([]byte, 8)
	for {
		if _, err := io.ReadFull(br, header); err != nil {
			if err == io.EOF {
				return offset, nil
			}
			// Partial header at the tail: torn write.
			return offset, nil
		}
		n := int64(binary.LittleEndian.Uint32(header[0:4]))
		want := binary.LittleEndian.Uint32(header[4:8])
		if n <= 0 || offset+8+n > fileSize {
			// Impossible length: treat as torn tail.
			return offset, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return offset, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != want {
			if offset+8+n == fileSize {
				return offset, nil // torn final record
			}
			return offset, fmt.Errorf("%w at offset %d", ErrCorrupt, offset)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return offset, err
		}
		if err := fn(rec); err != nil {
			return offset, err
		}
		offset += 8 + n
	}
}
