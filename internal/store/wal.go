package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
)

// WAL record layout (little endian):
//
//	[4] payload length n
//	[4] CRC-32 (IEEE) of payload
//	[n] payload
//
// payload (single mutation):
//
//	[1] op (opPut | opDel)
//	[4] key length k
//	[k] key bytes
//	[4] value length v   (opPut only)
//	[v] value bytes      (opPut only)
//
// payload (batch frame — N mutations in one atomic record):
//
//	[1] opBatch
//	[4] mutation count
//	followed by the single-mutation encodings back to back
//
// A torn tail (partial record after a crash) is detected by the record
// overrunning the end of the file and truncated away on recovery;
// everything before it replays. Because a batch frame is one checksummed
// record, a crash mid-batch truncates the whole frame: replay applies all
// of its mutations or none.
//
// A record that is *fully present* but fails its checksum is never
// forgiven — not even at the tail. A torn append leaves the file short; a
// complete record with a bad CRC means the bytes changed after they were
// written, and silently truncating it would let a restarted node (or a
// replica catching up from this log) adopt a corrupt prefix as if it were
// the whole history. Replay fails hard with ErrCorrupt instead.

const (
	opPut   byte = 1
	opDel   byte = 2
	opBatch byte = 3
)

// ErrCorrupt reports a WAL record that fails its checksum in the middle
// of the log (not a torn tail).
var ErrCorrupt = errors.New("store: corrupt wal record")

type walRecord struct {
	op    byte
	key   string
	value []byte
}

// opSize returns the encoded size of one mutation.
func opSize(r walRecord) int {
	n := 1 + 4 + len(r.key)
	if r.op == opPut {
		n += 4 + len(r.value)
	}
	return n
}

// putOp encodes one mutation at the start of p and returns the bytes
// consumed. p must have room (see opSize).
func putOp(p []byte, r walRecord) int {
	p[0] = r.op
	binary.LittleEndian.PutUint32(p[1:5], uint32(len(r.key)))
	copy(p[5:], r.key)
	if r.op == opPut {
		off := 5 + len(r.key)
		binary.LittleEndian.PutUint32(p[off:off+4], uint32(len(r.value)))
		copy(p[off+4:], r.value)
	}
	return opSize(r)
}

func encodeRecord(buf []byte, r walRecord) []byte {
	payloadLen := opSize(r)
	buf = sizedBuf(buf, 8+payloadLen)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(payloadLen))
	p := buf[8:]
	putOp(p, r)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(p))
	return buf
}

// encodeBatch renders N mutations as one atomic batch frame.
func encodeBatch(buf []byte, ops []walRecord) []byte {
	payloadLen := 1 + 4
	for _, r := range ops {
		payloadLen += opSize(r)
	}
	buf = sizedBuf(buf, 8+payloadLen)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(payloadLen))
	p := buf[8:]
	p[0] = opBatch
	binary.LittleEndian.PutUint32(p[1:5], uint32(len(ops)))
	off := 5
	for _, r := range ops {
		off += putOp(p[off:], r)
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(p))
	return buf
}

func sizedBuf(buf []byte, need int) []byte {
	if cap(buf) < need {
		return make([]byte, need)
	}
	return buf[:need]
}

// decodeOp decodes one mutation from the start of p, returning it and the
// bytes consumed.
func decodeOp(p []byte) (walRecord, int, error) {
	if len(p) < 5 {
		return walRecord{}, 0, ErrCorrupt
	}
	r := walRecord{op: p[0]}
	if r.op != opPut && r.op != opDel {
		return walRecord{}, 0, fmt.Errorf("%w: bad op %d", ErrCorrupt, r.op)
	}
	klen := int(binary.LittleEndian.Uint32(p[1:5]))
	if klen < 0 || len(p) < 5+klen {
		return walRecord{}, 0, ErrCorrupt
	}
	r.key = string(p[5 : 5+klen])
	n := 5 + klen
	if r.op == opPut {
		rest := p[n:]
		if len(rest) < 4 {
			return walRecord{}, 0, ErrCorrupt
		}
		vlen := int(binary.LittleEndian.Uint32(rest[:4]))
		if vlen < 0 || len(rest) < 4+vlen {
			return walRecord{}, 0, ErrCorrupt
		}
		r.value = append([]byte(nil), rest[4:4+vlen]...)
		n += 4 + vlen
	}
	return r, n, nil
}

// replayPayload decodes a checksummed payload — a single mutation or a
// batch frame — invoking fn for each mutation in order.
func replayPayload(p []byte, fn func(walRecord) error) error {
	if len(p) == 0 {
		return ErrCorrupt
	}
	if p[0] != opBatch {
		r, n, err := decodeOp(p)
		if err != nil {
			return err
		}
		if n != len(p) {
			return ErrCorrupt
		}
		return fn(r)
	}
	if len(p) < 5 {
		return ErrCorrupt
	}
	count := int(binary.LittleEndian.Uint32(p[1:5]))
	rest := p[5:]
	for i := 0; i < count; i++ {
		r, n, err := decodeOp(rest)
		if err != nil {
			return err
		}
		if err := fn(r); err != nil {
			return err
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return ErrCorrupt
	}
	return nil
}

// wal is the append-only log backing a Store.
//
// Durability in SyncEvery mode uses group commit: append (serialized by
// the Store lock) only writes the record to the OS; the caller then
// invokes syncTo *after releasing the Store lock*. Concurrent writers
// pile up on syncMu and the first one's fsync covers every record
// flushed before it started, so N writers share far fewer than N fsyncs.
type wal struct {
	f      *os.File
	w      *bufio.Writer
	sync   bool // fsync-before-acknowledge mode
	size   int64
	encBuf []byte

	syncMu  sync.Mutex
	flushed atomic.Int64 // bytes handed to the OS (set under the Store lock)
	synced  atomic.Int64 // bytes known fsynced (set under syncMu)
}

func openWAL(path string, syncEvery bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat wal: %w", err)
	}
	l := &wal{f: f, w: bufio.NewWriter(f), sync: syncEvery, size: st.Size()}
	l.flushed.Store(l.size)
	l.synced.Store(l.size)
	return l, nil
}

// append writes one record and flushes it to the OS. In sync mode the
// caller must follow up with syncTo(wal.size) once the Store lock is
// released.
func (l *wal) append(r walRecord) error {
	l.encBuf = encodeRecord(l.encBuf, r)
	return l.write()
}

// appendBatch writes one atomic batch frame covering ops.
func (l *wal) appendBatch(ops []walRecord) error {
	l.encBuf = encodeBatch(l.encBuf, ops)
	return l.write()
}

func (l *wal) write() error {
	if _, err := l.w.Write(l.encBuf); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("store: wal flush: %w", err)
	}
	l.size += int64(len(l.encBuf))
	l.flushed.Store(l.size)
	return nil
}

// syncTo blocks until at least the first `target` bytes of the log are
// fsynced. Writers that arrive while another fsync is in flight wait for
// syncMu and then usually find their bytes already covered — the group
// commit. Must not be called while holding the Store lock.
func (l *wal) syncTo(target int64) error {
	if l.synced.Load() >= target {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced.Load() >= target {
		return nil // a concurrent writer's fsync covered us
	}
	covered := l.flushed.Load()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("store: wal sync: %w", err)
	}
	if l.synced.Load() < covered {
		l.synced.Store(covered)
	}
	return nil
}

func (l *wal) close() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	// Pending syncTo callers must not fsync a closed file; whoever closes
	// the log (Close, compaction) has already made the data durable or is
	// discarding the file wholesale.
	l.synced.Store(math.MaxInt64)
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// replay reads all intact records from path, invoking fn for each. It
// returns the byte offset of the first torn tail record (== file size
// when the log is clean) so the caller can truncate it away.
//
// Only the shapes a crashed append can actually produce are forgiven as
// torn tails: a record whose claimed extent overruns the end of the file,
// or trailing zero fill (a preallocated region the append never reached).
// A record that is fully present but fails its checksum — or a zero
// length header with non-zero data behind it — is hard ErrCorrupt: those
// bytes were durably written and then damaged, and truncating them would
// silently rewrite history out from under the audit chain and any replica
// shipping this log.
func replayWAL(path string, fn func(walRecord) error) (validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("store: open wal for replay: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("store: stat wal: %w", err)
	}
	fileSize := st.Size()
	br := bufio.NewReader(f)
	var offset int64
	header := make([]byte, 8)
	for {
		if _, err := io.ReadFull(br, header); err != nil {
			if err == io.EOF {
				return offset, nil
			}
			// Partial header at the tail: torn write.
			return offset, nil
		}
		n := int64(binary.LittleEndian.Uint32(header[0:4]))
		want := binary.LittleEndian.Uint32(header[4:8])
		if n <= 0 {
			if zeroTail(f, offset) {
				return offset, nil // preallocated zero fill, never written
			}
			return offset, fmt.Errorf("%w at offset %d: zero-length record with data behind it", ErrCorrupt, offset)
		}
		if offset+8+n > fileSize {
			// Record extends past EOF: the append was cut short.
			return offset, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return offset, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != want {
			return offset, fmt.Errorf("%w at offset %d", ErrCorrupt, offset)
		}
		if err := replayPayload(payload, fn); err != nil {
			return offset, err
		}
		offset += 8 + n
	}
}

// zeroTail reports whether every byte of f from offset to EOF is zero —
// the shape of a preallocated region an append never reached.
func zeroTail(f *os.File, offset int64) bool {
	buf := make([]byte, 32*1024)
	for {
		n, err := f.ReadAt(buf, offset)
		for _, b := range buf[:n] {
			if b != 0 {
				return false
			}
		}
		offset += int64(n)
		if err != nil {
			return err == io.EOF
		}
	}
}
