package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay: replaying an arbitrary file must never panic, must
// never report a valid length beyond the file size, and the store must
// open (or fail cleanly) after truncating to the reported length.
func FuzzWALReplay(f *testing.F) {
	// Seed with a real WAL.
	dir, err := os.MkdirTemp("", "fuzzwal")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	seedPath := filepath.Join(dir, "seed.wal")
	s, err := Open(seedPath, Options{})
	if err != nil {
		f.Fatal(err)
	}
	s.Put("key-one", []byte("value-one"))
	s.Put("key-two", []byte("value-two"))
	s.Delete("key-one")
	var b Batch
	b.Put("batch-one", []byte("batched-value"))
	b.Delete("key-two")
	b.Put("batch-two", []byte("another"))
	if err := s.Apply(&b); err != nil {
		f.Fatal(err)
	}
	s.Close()
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail (inside the batch frame)
	f.Add([]byte{})
	f.Add([]byte("garbage that is not a wal at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.wal")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		count := 0
		validLen, err := replayWAL(path, func(r walRecord) error {
			count++
			if r.op != opPut && r.op != opDel {
				t.Fatalf("replay surfaced invalid op %d", r.op)
			}
			return nil
		})
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of range [0,%d]", validLen, len(data))
		}
		if err != nil {
			return // corrupt middle is a clean refusal
		}
		// A clean replay means Open must succeed on the same bytes.
		st, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("replay clean but Open failed: %v", err)
		}
		st.Close()
	})
}
