// Repository-level benchmarks: one testing.B benchmark per experiment of
// EXPERIMENTS.md (the css-bench tool prints the corresponding full
// tables). Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/index"
	"repro/internal/policy"
	"repro/internal/process"
	"repro/internal/replication"
	"repro/internal/reporting"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/workload"
	"repro/internal/xacml"
)

func benchController(b *testing.B) (*core.Controller, *workload.Platform) {
	b.Helper()
	c, err := core.New(core.Config{DefaultConsent: true})
	if err != nil {
		b.Fatal(err)
	}
	p, err := workload.Provision(c)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.StandardPolicies(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c, p
}

// BenchmarkE1_PublishRoute measures one publish through the full pipeline
// (validate, assign id, encrypt+index, audit, route) with 16 subscribers.
func BenchmarkE1_PublishRoute(b *testing.B) {
	c, err := core.New(core.Config{DefaultConsent: true})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.RegisterProducer("hospital", "H"); err != nil {
		b.Fatal(err)
	}
	if err := c.DeclareClass("hospital", schema.BloodTest()); err != nil {
		b.Fatal(err)
	}
	if err := c.RegisterConsumer("org", "O"); err != nil {
		b.Fatal(err)
	}
	if _, err := c.DefinePolicy(&policy.Policy{
		Producer: "hospital", Actor: "org", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{"care"}, Fields: []event.FieldName{"patient-id"},
	}); err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		if _, err := c.Subscribe(event.Actor(fmt.Sprintf("org/d%02d", i)), schema.ClassBloodTest,
			func(*event.Notification) { wg.Done() }); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	wg.Add(b.N * 16)
	for i := 0; i < b.N; i++ {
		if _, err := c.Publish(&event.Notification{
			SourceID: event.SourceID(fmt.Sprintf("s-%09d", i)), Class: schema.ClassBloodTest,
			PersonID: "PRS-1", OccurredAt: time.Now(), Producer: "hospital",
		}); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
}

// BenchmarkE1_PublishRouteBinary is E1_PublishRoute with the controller
// pre-encoding bus payloads in the binary framing instead of XML — the
// codec is the only variable, so the delta between the two benchmarks
// is the wire-format cost of the publish path.
func BenchmarkE1_PublishRouteBinary(b *testing.B) {
	c, err := core.New(core.Config{DefaultConsent: true, Codec: event.Binary})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.RegisterProducer("hospital", "H"); err != nil {
		b.Fatal(err)
	}
	if err := c.DeclareClass("hospital", schema.BloodTest()); err != nil {
		b.Fatal(err)
	}
	if err := c.RegisterConsumer("org", "O"); err != nil {
		b.Fatal(err)
	}
	if _, err := c.DefinePolicy(&policy.Policy{
		Producer: "hospital", Actor: "org", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{"care"}, Fields: []event.FieldName{"patient-id"},
	}); err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		if _, err := c.Subscribe(event.Actor(fmt.Sprintf("org/d%02d", i)), schema.ClassBloodTest,
			func(*event.Notification) { wg.Done() }); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	wg.Add(b.N * 16)
	for i := 0; i < b.N; i++ {
		if _, err := c.Publish(&event.Notification{
			SourceID: event.SourceID(fmt.Sprintf("s-%09d", i)), Class: schema.ClassBloodTest,
			PersonID: "PRS-1", OccurredAt: time.Now(), Producer: "hospital",
		}); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
}

// satSeq keeps saturation source ids unique across sub-benchmarks and
// across the framework's b.N growth reruns, so no iteration ever lands
// on the idempotent re-publish fast path.
var satSeq atomic.Int64

// BenchmarkE1_Saturation measures the full web-service publish path —
// HTTP server, codec negotiation, controller pipeline, commit barrier —
// swept over connection counts and wire codecs. Each sub-benchmark
// reports sustained publishes/sec and the client-observed p99 latency,
// the pair EXPERIMENTS.md's saturation table is built from.
func BenchmarkE1_Saturation(b *testing.B) {
	for _, codec := range []event.Codec{event.XML, event.Binary} {
		for _, conns := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("codec=%s/conns=%d", codec.Name(), conns), func(b *testing.B) {
				c, err := core.New(core.Config{DefaultConsent: true, Codec: codec})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				if err := c.RegisterProducer("hospital", "H"); err != nil {
					b.Fatal(err)
				}
				if err := c.DeclareClass("hospital", schema.BloodTest()); err != nil {
					b.Fatal(err)
				}
				if err := c.RegisterConsumer("org", "O"); err != nil {
					b.Fatal(err)
				}
				if _, err := c.DefinePolicy(&policy.Policy{
					Producer: "hospital", Actor: "org", Class: schema.ClassBloodTest,
					Purposes: []event.Purpose{"care"}, Fields: []event.FieldName{"patient-id"},
				}); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < 4; i++ {
					if _, err := c.Subscribe(event.Actor(fmt.Sprintf("org/d%02d", i)), schema.ClassBloodTest,
						func(*event.Notification) {}); err != nil {
						b.Fatal(err)
					}
				}
				srv := httptest.NewServer(transport.NewServer(c))
				defer srv.Close()
				client := transport.NewClient(srv.URL, nil, transport.WithCodec(codec))
				publish := func() (time.Duration, error) {
					i := satSeq.Add(1)
					t0 := time.Now()
					_, err := client.Publish(context.Background(), &event.Notification{
						SourceID: event.SourceID(fmt.Sprintf("sat-%012d", i)), Class: schema.ClassBloodTest,
						PersonID: "PRS-1", OccurredAt: time.Now(), Producer: "hospital",
					})
					return time.Since(t0), err
				}
				// Warm the keep-alive pool before the timed region.
				if _, err := publish(); err != nil {
					b.Fatal(err)
				}
				var (
					mu   sync.Mutex
					lats = make([]time.Duration, 0, b.N)
					next atomic.Int64
					wg   sync.WaitGroup
				)
				b.ResetTimer()
				start := time.Now()
				for w := 0; w < conns; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						local := make([]time.Duration, 0, b.N/conns+1)
						for next.Add(1) <= int64(b.N) {
							d, err := publish()
							if err != nil {
								b.Error(err)
								return
							}
							local = append(local, d)
						}
						mu.Lock()
						lats = append(lats, local...)
						mu.Unlock()
					}()
				}
				wg.Wait()
				elapsed := time.Since(start)
				b.StopTimer()
				if b.Failed() || len(lats) == 0 {
					return
				}
				sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
				idx := len(lats) * 99 / 100
				if idx >= len(lats) {
					idx = len(lats) - 1
				}
				p99 := lats[idx]
				b.ReportMetric(float64(len(lats))/elapsed.Seconds(), "pub/s")
				b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
				c.Flush(time.Minute)
			})
		}
	}
}

// benchShardCluster boots n sharded controllers over one master key,
// each behind its own HTTP server on a pre-bound port (the map must
// name real addresses before the controllers exist), and returns a
// sharded client that routes by locally computed pseudonym — the
// harness stands in for a producer co-located with the cluster key.
func benchShardCluster(b *testing.B, n int) *transport.ShardedClient {
	b.Helper()
	key := bytes.Repeat([]byte{9}, crypto.KeySize)
	lns := make([]net.Listener, n)
	shards := make([]cluster.ShardInfo, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lns[i] = ln
		shards[i] = cluster.ShardInfo{ID: cluster.ShardID(i), Addr: "http://" + ln.Addr().String()}
	}
	m, err := cluster.NewMap(1, 0, shards)
	if err != nil {
		b.Fatal(err)
	}
	ctrls := make([]*core.Controller, n)
	for i := range ctrls {
		c, err := core.New(core.Config{
			DefaultConsent: true, Codec: event.Binary, MasterKey: key,
			ShardID: cluster.ShardID(i), ShardMap: m,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		if err := c.RegisterProducer("hospital", "H"); err != nil {
			b.Fatal(err)
		}
		if err := c.DeclareClass("hospital", schema.BloodTest()); err != nil {
			b.Fatal(err)
		}
		if err := c.RegisterConsumer("org", "O"); err != nil {
			b.Fatal(err)
		}
		if _, err := c.DefinePolicy(&policy.Policy{
			Producer: "hospital", Actor: "org", Class: schema.ClassBloodTest,
			Purposes: []event.Purpose{"care"}, Fields: []event.FieldName{"patient-id"},
		}); err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 4; s++ {
			if _, err := c.Subscribe(event.Actor(fmt.Sprintf("org/d%02d", s)), schema.ClassBloodTest,
				func(*event.Notification) {}); err != nil {
				b.Fatal(err)
			}
		}
		srv := httptest.NewUnstartedServer(transport.NewServer(c))
		srv.Listener.Close()
		srv.Listener = lns[i]
		srv.Start()
		b.Cleanup(srv.Close)
		ctrls[i] = c
	}
	b.Cleanup(func() {
		for _, c := range ctrls {
			c.Flush(time.Minute)
		}
	})
	sc, err := transport.NewShardedClient(m, func(info cluster.ShardInfo) *transport.Client {
		return transport.NewClient(info.Addr, nil, transport.WithCodec(event.Binary))
	}, transport.WithPseudonym(ctrls[0].Pseudonym))
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

// BenchmarkE1_ShardedSaturation is E1_Saturation over a horizontally
// sharded controller: the binary-codec publish path swept over cluster
// width × connection count, persons spread across the keyspace so the
// consistent-hash ring distributes load. The shards=1 row is the
// sharding tax (one extra ownership check per publish) against
// E1_Saturation's codec=binary/conns=16 row; the shards=4 row is the
// scale-out claim — both gated by css-benchgate.
func BenchmarkE1_ShardedSaturation(b *testing.B) {
	for _, nShards := range []int{1, 2, 4} {
		for _, conns := range []int{4, 16} {
			b.Run(fmt.Sprintf("shards=%d/conns=%d", nShards, conns), func(b *testing.B) {
				sc := benchShardCluster(b, nShards)
				publish := func() (time.Duration, error) {
					i := satSeq.Add(1)
					t0 := time.Now()
					_, err := sc.Publish(context.Background(), &event.Notification{
						SourceID: event.SourceID(fmt.Sprintf("shs-%012d", i)), Class: schema.ClassBloodTest,
						PersonID: fmt.Sprintf("PRS-%03d", i%256), OccurredAt: time.Now(), Producer: "hospital",
					})
					return time.Since(t0), err
				}
				// Warm every shard's keep-alive pool before the timed region.
				for w := 0; w < nShards; w++ {
					if _, err := publish(); err != nil {
						b.Fatal(err)
					}
				}
				var (
					mu   sync.Mutex
					lats = make([]time.Duration, 0, b.N)
					next atomic.Int64
					wg   sync.WaitGroup
				)
				b.ResetTimer()
				start := time.Now()
				for w := 0; w < conns; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						local := make([]time.Duration, 0, b.N/conns+1)
						for next.Add(1) <= int64(b.N) {
							d, err := publish()
							if err != nil {
								b.Error(err)
								return
							}
							local = append(local, d)
						}
						mu.Lock()
						lats = append(lats, local...)
						mu.Unlock()
					}()
				}
				wg.Wait()
				elapsed := time.Since(start)
				b.StopTimer()
				if b.Failed() || len(lats) == 0 {
					return
				}
				sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
				idx := len(lats) * 99 / 100
				if idx >= len(lats) {
					idx = len(lats) - 1
				}
				b.ReportMetric(float64(len(lats))/elapsed.Seconds(), "pub/s")
				b.ReportMetric(float64(lats[idx].Nanoseconds()), "p99-ns")
			})
		}
	}
}

// benchPublishSetup provisions a minimal publish pipeline with the given
// number of subscribers, each counting deliveries on wg.
func benchPublishSetup(b *testing.B, subs int, wg *sync.WaitGroup) *core.Controller {
	b.Helper()
	c, err := core.New(core.Config{DefaultConsent: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	if err := c.RegisterProducer("hospital", "H"); err != nil {
		b.Fatal(err)
	}
	if err := c.DeclareClass("hospital", schema.BloodTest()); err != nil {
		b.Fatal(err)
	}
	if err := c.RegisterConsumer("org", "O"); err != nil {
		b.Fatal(err)
	}
	if _, err := c.DefinePolicy(&policy.Policy{
		Producer: "hospital", Actor: "org", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{"care"}, Fields: []event.FieldName{"patient-id"},
	}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < subs; i++ {
		if _, err := c.Subscribe(event.Actor(fmt.Sprintf("org/d%03d", i)), schema.ClassBloodTest,
			func(*event.Notification) { wg.Done() }); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkE1_PublishFanout measures the publish pipeline as the fan-out
// widens: with the shared-payload bus the routing cost per subscriber is
// one queue push, not one XML decode.
func BenchmarkE1_PublishFanout(b *testing.B) {
	for _, subs := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			var wg sync.WaitGroup
			c := benchPublishSetup(b, subs, &wg)
			b.ResetTimer()
			wg.Add(b.N * subs)
			for i := 0; i < b.N; i++ {
				if _, err := c.Publish(&event.Notification{
					SourceID: event.SourceID(fmt.Sprintf("s-%09d", i)), Class: schema.ClassBloodTest,
					PersonID: "PRS-1", OccurredAt: time.Now(), Producer: "hospital",
				}); err != nil {
					b.Fatal(err)
				}
			}
			wg.Wait()
		})
	}
}

// BenchmarkE1_PublishParallel drives the publish pipeline from 4
// concurrent producers against 16 subscribers — the bus-saturating shape
// that exercises the batched index write, the lock-lean audit append and
// the single-decode fan-out under contention.
func BenchmarkE1_PublishParallel(b *testing.B) {
	const subs = 16
	var wg sync.WaitGroup
	c := benchPublishSetup(b, subs, &wg)
	var seq atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			wg.Add(subs)
			if _, err := c.Publish(&event.Notification{
				SourceID: event.SourceID(fmt.Sprintf("s-%09d", i)), Class: schema.ClassBloodTest,
				PersonID: "PRS-1", OccurredAt: time.Now(), Producer: "hospital",
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	wg.Wait()
}

// replSeq keeps replicated-publish source ids unique across modes and
// across the framework's b.N growth reruns.
var replSeq atomic.Int64

// BenchmarkE1_ReplicatedPublish measures the publish pipeline cost of
// WAL-shipping replication to one follower over a real TCP link, in
// four modes: standalone (no replication attached, the floor), async
// (shipping overlaps the ack — gated within 5% of standalone by
// css-benchgate), async-heartbeat (async plus the failure detector's
// heartbeat loop on the link — gated within 5% of async, proving
// liveness beacons cost nothing on the write path), and quorum (each
// ack waits for the follower's fsync, buying durable failover for one
// overlapped round-trip).
func BenchmarkE1_ReplicatedPublish(b *testing.B) {
	for _, mode := range []string{"standalone", "async", "async-heartbeat", "quorum"} {
		b.Run("mode="+mode, func(b *testing.B) {
			pri, err := core.New(core.Config{DefaultConsent: true, DataDir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			defer pri.Close()
			if err := pri.RegisterProducer("hospital", "H"); err != nil {
				b.Fatal(err)
			}
			if err := pri.DeclareClass("hospital", schema.BloodTest()); err != nil {
				b.Fatal(err)
			}
			if mode != "standalone" {
				rep, err := core.New(core.Config{
					DefaultConsent: true, DataDir: b.TempDir(), Replica: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer rep.Close()
				rs, err := rep.ReplStores()
				if err != nil {
					b.Fatal(err)
				}
				fol, err := replication.NewFollower("127.0.0.1:0", replication.FollowerConfig{
					Stores: rs, Epoch: 1, OnApply: rep.OnReplicatedApply(),
				})
				if err != nil {
					b.Fatal(err)
				}
				defer fol.Close()
				ps, err := pri.ReplStores()
				if err != nil {
					b.Fatal(err)
				}
				var beat time.Duration
				if mode == "async-heartbeat" {
					beat = 100 * time.Millisecond
				}
				shipper, err := replication.NewPrimary(replication.PrimaryConfig{
					Stores: ps, Epoch: 1, Quorum: mode == "quorum",
					HeartbeatEvery: beat,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer shipper.Close()
				shipper.AddFollower(fol.Addr())
				pri.AttachReplication(shipper)
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := pri.Publish(&event.Notification{
					SourceID: event.SourceID(fmt.Sprintf("repl-%012d", replSeq.Add(1))),
					Class:    schema.ClassBloodTest, PersonID: "PRS-1",
					OccurredAt: time.Now(), Producer: "hospital",
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "pub/s")
		})
	}
}

// BenchmarkE2_DetailRequest measures one end-to-end request for details
// (consent check, Algorithm 1, audit) against the standard policy set.
func BenchmarkE2_DetailRequest(b *testing.B) {
	c, p := benchController(b)
	gen := workload.NewGenerator(workload.Config{Seed: 1, People: 100,
		Classes: []*schema.Schema{schema.HomeCare()}})
	n, d := gen.Next()
	gid, err := p.Produce(n, d)
	if err != nil {
		b.Fatal(err)
	}
	req := &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassHomeCare,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RequestDetails(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_PDPEvaluate measures one PDP evaluation in a repository of
// 10 000 policies over 10 classes.
func BenchmarkE3_PDPEvaluate(b *testing.B) {
	pdp, err := xacml.NewPDP(xacml.FirstApplicable)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		x, err := xacml.Compile(&policy.Policy{
			ID:       policy.ID(fmt.Sprintf("p-%06d", i)),
			Producer: "prod",
			Actor:    event.Actor(fmt.Sprintf("actor-%06d", i)),
			Class:    event.ClassID(fmt.Sprintf("class.c%d", i%10)),
			Purposes: []event.Purpose{"care"},
			Fields:   []event.FieldName{"f1"},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := pdp.Add(x); err != nil {
			b.Fatal(err)
		}
	}
	req := xacml.CompileRequest(&event.DetailRequest{
		Requester: "actor-009999", Class: "class.c9", EventID: "e", Purpose: "care",
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := pdp.Evaluate(req); r.Decision != xacml.Permit {
			b.Fatal(r.Decision)
		}
	}
}

// BenchmarkE4_TwoPhaseEmit measures the producer-side cost of the
// two-phase protocol: persist detail + publish notification.
func BenchmarkE4_TwoPhaseEmit(b *testing.B) {
	_, p := benchController(b)
	gen := workload.NewGenerator(workload.Config{Seed: 2, People: 1000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, d := gen.Next()
		if _, err := p.Produce(n, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_WarehouseLoad is the one-phase baseline of the same emit.
func BenchmarkE4_WarehouseLoad(b *testing.B) {
	wh := baseline.NewWarehouse()
	gen := workload.NewGenerator(workload.Config{Seed: 2, People: 1000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, d := gen.Next()
		wh.Load(d)
	}
}

// BenchmarkE5_IndexPut measures one encrypted index insert.
func BenchmarkE5_IndexPut(b *testing.B) {
	keys, err := crypto.NewKeyring(bytes.Repeat([]byte{7}, crypto.KeySize))
	if err != nil {
		b.Fatal(err)
	}
	benchIndexPut(b, index.New(store.OpenMemory(), keys))
}

// BenchmarkE5_IndexPutPlaintext is the plaintext baseline.
func BenchmarkE5_IndexPutPlaintext(b *testing.B) {
	benchIndexPut(b, index.New(store.OpenMemory(), nil))
}

func benchIndexPut(b *testing.B, ix *index.Index) {
	b.Helper()
	base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := ix.Put(&event.Notification{
			ID:         event.GlobalID(fmt.Sprintf("evt-%09d", i)),
			Class:      "class.c0",
			PersonID:   fmt.Sprintf("PRS-%05d", i%1000),
			OccurredAt: base.Add(time.Duration(i) * time.Second),
			Producer:   "hospital",
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_PersonInquiry measures a pseudonym-indexed person lookup in
// a 50k-notification encrypted index.
func BenchmarkE5_PersonInquiry(b *testing.B) {
	keys, _ := crypto.NewKeyring(bytes.Repeat([]byte{7}, crypto.KeySize))
	ix := index.New(store.OpenMemory(), keys)
	base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 50000; i++ {
		ix.Put(&event.Notification{
			ID: event.GlobalID(fmt.Sprintf("evt-%09d", i)), Class: "class.c0",
			PersonID:   fmt.Sprintf("PRS-%05d", i%2500),
			OccurredAt: base.Add(time.Duration(i) * time.Second), Producer: "h",
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Inquire(index.Inquiry{PersonID: fmt.Sprintf("PRS-%05d", i%2500)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6_AuditAppend measures one hash-chained audit append.
func BenchmarkE6_AuditAppend(b *testing.B) {
	l, err := audit.Open(store.OpenMemory())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(audit.Record{
			Kind: audit.KindDetailRequest, Actor: "doctor",
			EventID: "evt-1", Class: "c.x", Purpose: "care", Outcome: "permit",
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6_AuditVerify measures full-chain verification of a 10k log.
func BenchmarkE6_AuditVerify(b *testing.B) {
	l, _ := audit.Open(store.OpenMemory())
	for i := 0; i < 10000; i++ {
		l.Append(audit.Record{Kind: audit.KindPublish, Actor: "p", Outcome: "ok"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7_FilterEvent measures the Algorithm 2 field filtering that
// implements minimal usage, on a 9-field home-care event.
func BenchmarkE7_FilterEvent(b *testing.B) {
	gen := workload.NewGenerator(workload.Config{Seed: 3, People: 10,
		Classes: []*schema.Schema{schema.HomeCare()}})
	_, d := gen.Next()
	allowed := []event.FieldName{"patient-id", "name", "surname"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := d.Filter(allowed); len(f.Fields) == 0 {
			b.Fatal("empty filter result")
		}
	}
}

// BenchmarkE8_WindowInquiry measures a class+time-window inquiry in a
// 100k index.
func BenchmarkE8_WindowInquiry(b *testing.B) {
	keys, _ := crypto.NewKeyring(bytes.Repeat([]byte{7}, crypto.KeySize))
	ix := index.New(store.OpenMemory(), keys)
	base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100000; i++ {
		ix.Put(&event.Notification{
			ID: event.GlobalID(fmt.Sprintf("evt-%09d", i)), Class: event.ClassID(fmt.Sprintf("class.c%d", i%8)),
			PersonID:   fmt.Sprintf("PRS-%05d", i%5000),
			OccurredAt: base.Add(time.Duration(i) * time.Minute), Producer: "h",
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := base.Add(time.Duration(i%100000) * time.Minute)
		if _, err := ix.Inquire(index.Inquiry{Class: "class.c0", From: from, To: from.Add(24 * time.Hour), Limit: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9_OnboardProducer measures registering one more producer
// (with one class and one policy) on a provisioned platform — the O(1)
// hub onboarding step.
func BenchmarkE9_OnboardProducer(b *testing.B) {
	c, _ := benchController(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := event.ProducerID(fmt.Sprintf("clinic-%09d", i))
		class := event.ClassID(fmt.Sprintf("clinic%09d.visit", i))
		if err := c.RegisterProducer(id, "clinic"); err != nil {
			b.Fatal(err)
		}
		s := schema.MustNew(class, 1, "visit",
			schema.Field{Name: "patient-id", Type: schema.String, Required: true, Sensitivity: schema.Identifying})
		if err := c.DeclareClass(id, s); err != nil {
			b.Fatal(err)
		}
		if _, err := c.DefinePolicy(&policy.Policy{
			Producer: id, Actor: "family-doctor", Class: class,
			Purposes: []event.Purpose{"care"}, Fields: []event.FieldName{"patient-id"},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10_GatewayRetrieve measures one Algorithm 2 retrieval from a
// gateway holding 10k persisted details (the temporal-decoupling path).
func BenchmarkE10_GatewayRetrieve(b *testing.B) {
	gw, err := gateway.New("hospital", store.OpenMemory(), nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		d := event.NewDetail("c.x", event.SourceID(fmt.Sprintf("s-%06d", i)), "hospital").
			Set("patient-id", "PRS-1").Set("payload", "some sensitive content here")
		if err := gw.Persist(d); err != nil {
			b.Fatal(err)
		}
	}
	fields := []event.FieldName{"patient-id"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gw.GetResponse(event.SourceID(fmt.Sprintf("s-%06d", i%10000)), fields); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11_SubscribeAuthorized measures one authorized subscribe +
// cancel round.
func BenchmarkE11_SubscribeAuthorized(b *testing.B) {
	c, _ := benchController(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := c.Subscribe("family-doctor", schema.ClassHomeCare, func(*event.Notification) {})
		if err != nil {
			b.Fatal(err)
		}
		sub.Cancel()
	}
}

// BenchmarkE11_SubscribeDenied measures one deny-by-default rejection.
func BenchmarkE11_SubscribeDenied(b *testing.B) {
	c, _ := benchController(b)
	if err := c.RegisterConsumer("stranger", "S"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Subscribe("stranger", schema.ClassHomeCare, func(*event.Notification) {}); err == nil {
			b.Fatal("unexpected grant")
		}
	}
}

// BenchmarkE12_Compile measures one Definition-2 → XACML compilation.
func BenchmarkE12_Compile(b *testing.B) {
	p := &policy.Policy{
		ID: "p-1", Producer: "prod", Actor: "family-doctor",
		Class:    schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   schema.BloodTest().FieldNames(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xacml.Compile(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12_EncodeDecode measures the XACML XML round trip of one
// compiled policy.
func BenchmarkE12_EncodeDecode(b *testing.B) {
	p := &policy.Policy{
		ID: "p-1", Producer: "prod", Actor: "family-doctor",
		Class:    schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   schema.BloodTest().FieldNames(),
	}
	x, err := xacml.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := xacml.Encode(x)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := xacml.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE15_MonitorObserve measures one notification observation by
// the process monitor tracking two pathways.
func BenchmarkE15_MonitorObserve(b *testing.B) {
	m, err := process.NewMonitor(
		&process.Pathway{
			Name:    "post-discharge care",
			Trigger: schema.ClassDischarge,
			Stages: []process.Stage{
				{Name: "home care", Class: schema.ClassHomeCare, Within: 7 * 24 * time.Hour},
				{Name: "nursing", Class: schema.ClassNursingService, Within: 14 * 24 * time.Hour},
			},
		},
		&process.Pathway{
			Name:    "telecare activation",
			Trigger: schema.ClassAutonomyTest,
			Stages:  []process.Stage{{Name: "telecare", Class: schema.ClassTelecare, Within: 30 * 24 * time.Hour}},
		},
	)
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGenerator(workload.Config{Seed: 15, People: 2000})
	notifications := make([]*event.Notification, 4096)
	for i := range notifications {
		n, _ := gen.Next()
		n.ID = event.GlobalID(fmt.Sprintf("evt-%08d", i))
		notifications[i] = n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(notifications[i%len(notifications)])
	}
}

// BenchmarkE13_GatewayVsCache contrasts one D3-compliant gateway
// retrieval with the ablated controller-side cache lookup.
func BenchmarkE13_GatewayVsCache(b *testing.B) {
	gw, err := gateway.New("hospital", store.OpenMemory(), nil)
	if err != nil {
		b.Fatal(err)
	}
	wh := baseline.NewWarehouse()
	wh.Grant("consumer", "c.x")
	for i := 0; i < 1000; i++ {
		d := event.NewDetail("c.x", event.SourceID(fmt.Sprintf("s-%04d", i)), "hospital").
			Set("patient-id", "PRS-1").Set("diagnosis", "sensitive content")
		if err := gw.Persist(d); err != nil {
			b.Fatal(err)
		}
		wh.Load(d)
	}
	fields := []event.FieldName{"patient-id"}
	b.Run("gateway", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gw.GetResponse(event.SourceID(fmt.Sprintf("s-%04d", i%1000)), fields); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("controller-cache(ablation)", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wh.Query("consumer", "c.x", event.SourceID(fmt.Sprintf("s-%04d", i%1000))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE14_WALPut measures one durable put in each durability mode.
func BenchmarkE14_WALPut(b *testing.B) {
	for _, mode := range []struct {
		name string
		sync bool
	}{{"buffered", false}, {"fsync", true}} {
		b.Run(mode.name, func(b *testing.B) {
			st, err := store.Open(b.TempDir()+"/bench.wal", store.Options{SyncEvery: mode.sync})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Put(fmt.Sprintf("k-%09d", i), []byte("a wal record payload")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE14_WALPutConcurrent measures the fsync-mode put under 4
// concurrent writers: with group commit the writers share fsyncs, so the
// per-op cost drops well below the sequential fsync figure. Overlapping
// a blocking fsync with other writers needs OS threads, so the benchmark
// pins GOMAXPROCS to 4 regardless of the host's core count (on a 1-CPU
// box the scheduler rarely hands the processor off within one ~200µs
// fsync, which would serialize the writers and mask the group commit).
func BenchmarkE14_WALPutConcurrent(b *testing.B) {
	st, err := store.Open(b.TempDir()+"/bench.wal", store.Options{SyncEvery: true})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	var seq atomic.Int64
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			if err := st.Put(fmt.Sprintf("k-%09d", i), []byte("a wal record payload")); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE14_BatchedWrites contrasts 16 individual puts with one 16-op
// atomic batch: one lock acquisition and one WAL frame instead of 16.
func BenchmarkE14_BatchedWrites(b *testing.B) {
	const group = 16
	payload := []byte("a wal record payload")
	b.Run("individual", func(b *testing.B) {
		st, err := store.Open(b.TempDir()+"/bench.wal", store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < group; j++ {
				if err := st.Put(fmt.Sprintf("k-%09d-%02d", i, j), payload); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		st, err := store.Open(b.TempDir()+"/bench.wal", store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var batch store.Batch
			for j := 0; j < group; j++ {
				batch.Put(fmt.Sprintf("k-%09d-%02d", i, j), payload)
			}
			if err := st.Apply(&batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE6_AuditAppendParallel measures the hash-chained append from 4
// concurrent actors: body encoding and hashing run outside the chain
// mutex, so appends overlap.
func BenchmarkE6_AuditAppendParallel(b *testing.B) {
	l, err := audit.Open(store.OpenMemory())
	if err != nil {
		b.Fatal(err)
	}
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Append(audit.Record{
				Kind: audit.KindDetailRequest, Actor: "doctor",
				EventID: "evt-1", Class: "c.x", Purpose: "care", Outcome: "permit",
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE16_AggregatorObserve measures one accountability aggregation
// step.
func BenchmarkE16_AggregatorObserve(b *testing.B) {
	agg := reporting.NewAggregator(reporting.Monthly)
	gen := workload.NewGenerator(workload.Config{Seed: 16, People: 1000})
	notifications := make([]*event.Notification, 4096)
	for i := range notifications {
		n, _ := gen.Next()
		notifications[i] = n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Observe(notifications[i%len(notifications)])
	}
}

// --- ED: the detail-request read path -----------------------------------
//
// The ED_* benchmarks measure the phase-2 protocol (request-for-details,
// Algorithms 1 & 2) as consumers actually drive it: the same event asked
// for over and over, a working set of recent events rotated through, and
// the adversarial shape where the policy set churns between requests.
// `make bench` records them to BENCH_details.json.

// benchDetailsRig provisions a controller with one producer, an attached
// in-process gateway holding `events` persisted details, `pad` distractor
// policies plus one policy granting family-doctor three fields, and one
// permitted detail request per event.
func benchDetailsRig(b *testing.B, events, pad int) (*core.Controller, []*event.DetailRequest) {
	b.Helper()
	c, err := core.New(core.Config{DefaultConsent: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	if err := c.RegisterProducer("hospital", "H"); err != nil {
		b.Fatal(err)
	}
	if err := c.DeclareClass("hospital", schema.BloodTest()); err != nil {
		b.Fatal(err)
	}
	if err := c.RegisterConsumer("family-doctor", "D"); err != nil {
		b.Fatal(err)
	}
	gw, err := gateway.New("hospital", store.OpenMemory(), c.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	if err := c.AttachGateway("hospital", gw); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < pad; i++ {
		if _, err := c.DefinePolicy(&policy.Policy{
			Producer: "hospital",
			Actor:    event.Actor(fmt.Sprintf("other-consumer-%06d", i)),
			Class:    schema.ClassBloodTest,
			Purposes: []event.Purpose{event.PurposeAdministration},
			Fields:   []event.FieldName{"patient-id"},
		}); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := c.DefinePolicy(&policy.Policy{
		Producer: "hospital", Actor: "family-doctor", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "exam-date", "hemoglobin"},
	}); err != nil {
		b.Fatal(err)
	}
	reqs := make([]*event.DetailRequest, events)
	for i := range reqs {
		src := event.SourceID(fmt.Sprintf("src-%06d", i))
		d := event.NewDetail(schema.ClassBloodTest, src, "hospital").
			Set("patient-id", fmt.Sprintf("PRS-%04d", i%100)).
			Set("exam-date", "2010-05-30").
			Set("hemoglobin", "13.5").
			Set("aids-test", "negative").
			Set("lab-notes", "routine")
		if err := gw.Persist(d); err != nil {
			b.Fatal(err)
		}
		gid, err := c.Publish(&event.Notification{
			SourceID: src, Class: schema.ClassBloodTest,
			PersonID:   fmt.Sprintf("PRS-%04d", i%100),
			Summary:    "blood test",
			OccurredAt: time.Now(), Producer: "hospital",
		})
		if err != nil {
			b.Fatal(err)
		}
		reqs[i] = &event.DetailRequest{
			Requester: "family-doctor", Class: schema.ClassBloodTest,
			EventID: gid, Purpose: event.PurposeHealthcareTreatment,
		}
	}
	return c, reqs
}

// BenchmarkED_RepeatedDetail measures the same detail request resolved
// over and over against a 1000-policy repository — the hot read path of a
// consumer following up on a notification it keeps working with.
func BenchmarkED_RepeatedDetail(b *testing.B) {
	c, reqs := benchDetailsRig(b, 1, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RequestDetails(reqs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkED_RepeatedDetailParallel drives the same request from 4
// concurrent consumers — the shape where identical in-flight gateway
// fetches can be coalesced into one producer round trip.
func BenchmarkED_RepeatedDetailParallel(b *testing.B) {
	c, reqs := benchDetailsRig(b, 1, 1000)
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.RequestDetails(reqs[0]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkED_RotatingDetails rotates through a 512-event working set
// under one policy: the decision is identical across events, the fetched
// event changes every request.
func BenchmarkED_RotatingDetails(b *testing.B) {
	c, reqs := benchDetailsRig(b, 512, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RequestDetails(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkED_PolicyChurnDetail interleaves every request with a policy
// definition and a revocation — the adversarial shape for any decision
// memoization, where each request must re-resolve from scratch.
func BenchmarkED_PolicyChurnDetail(b *testing.B) {
	c, reqs := benchDetailsRig(b, 1, 100)
	churn := &policy.Policy{
		Producer: "hospital", Actor: "churn-consumer", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeAdministration},
		Fields:   []event.FieldName{"patient-id"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stored, err := c.DefinePolicy(churn)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.RequestDetails(reqs[0]); err != nil {
			b.Fatal(err)
		}
		if err := c.RevokePolicy(stored.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkED_PersonInquiryWarm measures a consumer's repeated person
// inquiries over a 512-event index (~5 events per person), the read shape
// of the events-index query service.
func BenchmarkED_PersonInquiryWarm(b *testing.B) {
	c, _ := benchDetailsRig(b, 512, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.InquireIndex("family-doctor", index.Inquiry{
			PersonID: fmt.Sprintf("PRS-%04d", i%100), Limit: 10,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
