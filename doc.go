// Package repro is the root of the CSS reproduction: a privacy-
// preserving, event-driven integration platform for interoperating
// social and health systems, after Armellin et al. (SDM @ VLDB 2010).
//
// Import the public API from repro/css; the substrates live under
// internal/. The root package exists to host the repository-level
// benchmark suite (bench_test.go), one benchmark per experiment of
// EXPERIMENTS.md.
package repro
